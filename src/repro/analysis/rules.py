"""The project-specific rule pack (``RPR001`` … ``RPR011``).

Each rule encodes one invariant the reproduction's results rest on but
no generic linter knows about — determinism of the simulation substrate,
the seconds-only unit convention, the small protocols
(``observables()``, ``run_tasks`` picklability) that PRs 2–4
introduced, and the crash-durability contract of the journaled run
store (PR 6).  Rationale and worked examples for every rule live in
``docs/static_analysis.md``; suppress a deliberate exception with
``# repro: noqa[RPRnnn]  -- reason`` on the flagged line.

Scoping: determinism rules apply to the packages whose code runs inside
a seeded simulation (``repro.sim``, ``repro.parallel``,
``repro.queueing``); protocol and unit rules apply everywhere the pass
is pointed (``src`` and ``tests`` in CI).
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.analysis.engine import FileContext, Finding, Rule, rule

__all__ = ["DETERMINISM_PACKAGES", "SIM_PACKAGES", "RULE_PACK_VERSION"]

#: Bumped whenever any rule's behaviour changes (new rule, changed
#: heuristic, reworded message).  The incremental cache keys cached
#: per-file results on this, so a pack change invalidates every entry
#: instead of replaying findings from an older pack.
RULE_PACK_VERSION = 2

#: Packages whose code executes inside a seeded simulation: any hidden
#: entropy here silently invalidates every figure.
DETERMINISM_PACKAGES = ("repro.sim", "repro.parallel", "repro.queueing")

#: The simulator's event hot paths (rule RPR007/RPR008 scope).
#: ``repro.core`` joined when the comparator grew engine selection —
#: its measure/sweep path now feeds seeded workloads to both engines,
#: so unstable iteration there would skew results just like in the
#: simulator proper.
SIM_PACKAGES = ("repro.sim", "repro.core")

#: Suffixes that mark a name as seconds-valued by project convention
#: (DESIGN.md §6: all times in SI seconds; ``*_ms`` names are the only
#: sanctioned millisecond carriers and must be converted at the edge).
_SECONDS_SUFFIXES = ("latency", "rtt", "deadline")

#: Magnitude above which a literal assigned to a seconds field is almost
#: certainly a millisecond value (no simulated latency is 1000+ s).
_MS_MAGNITUDE = 1e3


def _terminal_name(node: ast.AST) -> str | None:
    """``foo`` for ``foo``, ``bar`` for ``a.b.bar``; None otherwise."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


def _root_name(node: ast.AST) -> str | None:
    """``a`` for ``a.b.c`` / ``a``; None for non-name chains."""
    while isinstance(node, ast.Attribute):
        node = node.value
    if isinstance(node, ast.Name):
        return node.id
    return None


def _dotted(node: ast.AST) -> str | None:
    """Full dotted path of a Name/Attribute chain, or None."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


@rule
class WallClockRule(Rule):
    """RPR001: no wall-clock or global-RNG entropy in simulation code.

    ``time.time()``, ``datetime.now()``, the ``random`` module's global
    generator and numpy's legacy ``np.random.*`` functions all read
    process state outside the simulation's seeded streams; a single call
    inside :mod:`repro.sim` / :mod:`repro.parallel` /
    :mod:`repro.queueing` breaks bit-identical replay.  Unseeded
    ``np.random.default_rng()`` is flagged everywhere — fresh OS entropy
    is only legitimate through ``seed_sequence(None)``, which documents
    the irreproducibility at the call site.
    """

    code = "RPR001"
    summary = "wall-clock or global-RNG call in deterministic simulation code"

    _WALL_CLOCK = {
        "time.time", "time.time_ns", "time.monotonic", "time.monotonic_ns",
        "time.perf_counter", "time.perf_counter_ns",
    }
    _DATETIME = {"datetime.now", "datetime.utcnow", "datetime.today", "date.today"}
    _NP_RANDOM_OK = {
        "default_rng", "Generator", "SeedSequence", "BitGenerator",
        "PCG64", "PCG64DXSM", "Philox", "SFC64", "MT19937",
    }

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        scoped = ctx.in_package(*DETERMINISM_PACKAGES)
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ImportFrom) and scoped and node.module == "random":
                yield self.finding(
                    ctx, node,
                    "import from the global `random` module; use a seeded "
                    "numpy Generator (Simulation.spawn_rng or repro.parallel.seeding)",
                )
            if not isinstance(node, ast.Call):
                continue
            dotted = _dotted(node.func)
            if dotted is None:
                continue
            if scoped and dotted in self._WALL_CLOCK:
                yield self.finding(
                    ctx, node,
                    f"wall-clock call {dotted}() in simulation code; virtual "
                    "time comes from Simulation.now",
                )
            elif scoped and dotted in self._DATETIME:
                yield self.finding(
                    ctx, node,
                    f"wall-clock call {dotted}() in simulation code breaks "
                    "reproducibility",
                )
            elif scoped and _root_name(node.func) == "random" and "." not in dotted[7:]:
                # random.<anything>(...) — the stdlib global generator.
                yield self.finding(
                    ctx, node,
                    f"global-RNG call {dotted}(); all randomness must flow "
                    "through a seeded numpy Generator",
                )
            elif scoped and dotted.startswith(("np.random.", "numpy.random.")):
                leaf = dotted.rsplit(".", 1)[1]
                if leaf not in self._NP_RANDOM_OK:
                    yield self.finding(
                        ctx, node,
                        f"legacy global numpy RNG call {dotted}(); use a "
                        "seeded Generator stream",
                    )
            if (
                _terminal_name(node.func) == "default_rng"
                and not node.args
                and not node.keywords
            ):
                yield self.finding(
                    ctx, node,
                    "unseeded default_rng() draws OS entropy; derive the "
                    "stream via repro.parallel.seeding (or pass an explicit "
                    "seed_sequence(None) to document irreproducibility)",
                )


@rule
class SeedArithmeticRule(Rule):
    """RPR002: derive child seeds via ``repro.parallel.seeding``, never
    integer arithmetic.

    ``base + i`` / ``base + 1000 * i`` seed spacing collides across
    experiments that believe they are independent (see the
    ``repro.parallel.seeding`` module docstring for the failure mode PR 4
    fixed in the comparator).  Every derivation must go through
    ``derive_seed`` / ``derive_seedseq`` / ``spawn_child``, which hash a
    spawn key instead of offsetting entropy.
    """

    code = "RPR002"
    summary = "integer arithmetic on a seed (use repro.parallel.seeding)"

    _ARITH = (ast.Add, ast.Sub, ast.Mult, ast.FloorDiv, ast.Mod, ast.BitXor, ast.LShift)

    def _mentions_seed(self, node: ast.AST) -> bool:
        for sub in ast.walk(node):
            name = _terminal_name(sub)
            if name is not None and "seed" in name.lower():
                return True
        return False

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if ctx.module.startswith("repro.parallel.seeding"):
            return  # the derivation module itself hashes entropy legitimately
        inner: set[ast.AST] = set()
        for node in ast.walk(ctx.tree):
            if not (isinstance(node, ast.BinOp) and isinstance(node.op, self._ARITH)):
                continue
            if node in inner:
                continue  # already covered by an enclosing flagged expression
            if self._mentions_seed(node.left) or self._mentions_seed(node.right):
                inner.update(
                    sub for sub in ast.walk(node) if isinstance(sub, ast.BinOp)
                )
                yield self.finding(
                    ctx, node,
                    "integer arithmetic on a seed; derive child streams with "
                    "repro.parallel.seeding.derive_seed(base, *path) instead",
                )


@rule
class MillisecondSmellRule(Rule):
    """RPR003: suspected millisecond value flowing into a seconds field.

    The whole codebase is seconds-only (DESIGN.md §6); millisecond
    quantities live exclusively in ``*_ms``-suffixed names and are
    converted once at the boundary (``Scenario.delta_n``,
    ``ConstantLatency.from_ms``).  Two smells are flagged: a numeric
    literal ≥ 1e3 assigned to a ``*_latency`` / ``*_rtt`` /
    ``*_deadline`` name (no simulated latency is 1000+ seconds), and a
    ``*_ms`` name assigned to a seconds-suffixed name without visible
    conversion.
    """

    code = "RPR003"
    summary = "suspected millisecond value assigned to a seconds-only field"

    def _seconds_named(self, name: str | None) -> bool:
        if name is None or name.endswith("_ms"):
            return False
        return any(
            name == suffix or name.endswith("_" + suffix) for suffix in _SECONDS_SUFFIXES
        )

    def _suspect(self, value: ast.AST) -> str | None:
        """Reason the value looks millisecond-flavoured, or None."""
        if isinstance(value, ast.Constant) and isinstance(value.value, (int, float)):
            if not isinstance(value.value, bool) and abs(value.value) >= _MS_MAGNITUDE:
                return f"literal {value.value!r} >= 1e3"
        name = _terminal_name(value)
        if name is not None and name.endswith("_ms"):
            return f"millisecond-named value {name!r}"
        return None

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            pairs: list[tuple[str | None, ast.AST, ast.AST]] = []
            if isinstance(node, ast.Assign):
                pairs = [(_terminal_name(t), node.value, t) for t in node.targets]
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                pairs = [(_terminal_name(node.target), node.value, node.target)]
            elif isinstance(node, ast.Call):
                pairs = [
                    (kw.arg, kw.value, kw.value) for kw in node.keywords if kw.arg
                ]
            for name, value, anchor in pairs:
                if not self._seconds_named(name):
                    continue
                reason = self._suspect(value)
                if reason is not None:
                    yield self.finding(
                        ctx, anchor,
                        f"{reason} assigned to seconds-only field {name!r}; "
                        "convert at the boundary (x_ms / 1000.0) — the "
                        "codebase is seconds-only (DESIGN.md §6)",
                    )


@rule
class ObservablesProtocolRule(Rule):
    """RPR004: ``observables()`` must return ``{str: callable}``.

    The telemetry registry (``Telemetry.register_observables``) turns
    each entry into a pull-model gauge named ``<prefix>.<key>``, so keys
    must be string literals and values zero-argument callables.  A
    non-dict return or a non-callable value would surface only at
    snapshot time, deep inside an experiment run.
    """

    code = "RPR004"
    summary = "observables() must be a method returning {str: callable}"

    _CALLABLE_NODES = (ast.Lambda, ast.Name, ast.Attribute, ast.Call)

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            for item in node.body:
                if (
                    isinstance(item, (ast.Assign, ast.AnnAssign))
                    and any(
                        _terminal_name(t) == "observables"
                        for t in (
                            item.targets
                            if isinstance(item, ast.Assign)
                            else [item.target]
                        )
                    )
                ):
                    yield self.finding(
                        ctx, item,
                        f"class {node.name}: observables must be a method, "
                        "not an attribute (the registry calls it)",
                    )
                if not isinstance(item, ast.FunctionDef) or item.name != "observables":
                    continue
                args = item.args
                required = len(args.args) - len(args.defaults)
                if required != 1 or args.posonlyargs or args.kwonlyargs:
                    yield self.finding(
                        ctx, item,
                        f"class {node.name}: observables() is called with no "
                        "arguments by the telemetry registry; it must take "
                        "only self",
                    )
                yield from self._check_returns(ctx, node.name, item)

    def _check_returns(
        self, ctx: FileContext, cls: str, fn: ast.FunctionDef
    ) -> Iterator[Finding]:
        for node in ast.walk(fn):
            if not isinstance(node, ast.Return) or node.value is None:
                continue
            value = node.value
            if isinstance(value, ast.Dict):
                for key, val in zip(value.keys, value.values, strict=True):
                    if key is None or not (
                        isinstance(key, ast.Constant) and isinstance(key.value, str)
                    ):
                        yield self.finding(
                            ctx, key or value,
                            f"class {cls}: observables() keys must be string "
                            "literals (they become gauge names)",
                        )
                    if isinstance(val, ast.Constant):
                        yield self.finding(
                            ctx, val,
                            f"class {cls}: observables() values must be "
                            "zero-argument callables, not constants — wrap "
                            "in a lambda",
                        )
            elif isinstance(value, (ast.Constant, ast.List, ast.Tuple, ast.Set)):
                yield self.finding(
                    ctx, value,
                    f"class {cls}: observables() must return a dict of "
                    "gauge readers, got a non-dict expression",
                )


@rule
class RunTasksPicklableRule(Rule):
    """RPR005: callables handed to ``run_tasks`` must be module-level.

    Lambdas and nested functions don't pickle, so
    :func:`repro.parallel.run_tasks` silently falls back to serial
    execution (with a warning) — the parallel sweep the caller asked for
    never happens.  Catch it at lint time instead.
    """

    code = "RPR005"
    summary = "non-picklable callable passed to run_tasks (lambda/nested def)"

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        nested_defs = self._nested_function_names(ctx.tree)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            if _terminal_name(node.func) != "run_tasks" or not node.args:
                continue
            fn_arg = node.args[0]
            if isinstance(fn_arg, ast.Lambda):
                yield self.finding(
                    ctx, fn_arg,
                    "lambda passed to run_tasks cannot pickle; parallel "
                    "fan-out silently degrades to serial — use a "
                    "module-level function",
                )
            elif isinstance(fn_arg, ast.Name) and fn_arg.id in nested_defs:
                yield self.finding(
                    ctx, fn_arg,
                    f"nested function {fn_arg.id!r} passed to run_tasks "
                    "cannot pickle; hoist it to module level",
                )

    @staticmethod
    def _nested_function_names(tree: ast.Module) -> set[str]:
        """Names of functions defined inside another function."""
        nested: set[str] = set()

        def walk(node: ast.AST, inside_function: bool) -> None:
            for child in ast.iter_child_nodes(node):
                if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    if inside_function:
                        nested.add(child.name)
                    walk(child, True)
                elif isinstance(child, ast.ClassDef):
                    walk(child, False)  # methods are module-reachable
                else:
                    walk(child, inside_function)

        walk(tree, False)
        return nested


@rule
class MutableDefaultRule(Rule):
    """RPR006: no mutable default arguments in :mod:`repro`.

    The classic shared-state trap, but worse here: a mutable default on
    a simulation component is shared across *runs*, so the second
    replication of an experiment starts from the first one's state and
    determinism quietly dies.
    """

    code = "RPR006"
    summary = "mutable default argument"

    _MUTABLE_CALLS = {"list", "dict", "set", "defaultdict", "deque", "bytearray"}

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if not ctx.in_package("repro"):
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            defaults = list(node.args.defaults) + [
                d for d in node.args.kw_defaults if d is not None
            ]
            for default in defaults:
                if isinstance(default, (ast.List, ast.Dict, ast.Set, ast.ListComp,
                                        ast.DictComp, ast.SetComp)):
                    yield self.finding(
                        ctx, default,
                        f"mutable default in {node.name}(); default to None "
                        "and create the container in the body",
                    )
                elif (
                    isinstance(default, ast.Call)
                    and _terminal_name(default.func) in self._MUTABLE_CALLS
                ):
                    yield self.finding(
                        ctx, default,
                        f"mutable default {_terminal_name(default.func)}() in "
                        f"{node.name}(); default to None and create the "
                        "container in the body",
                    )


@rule
class SetIterationRule(Rule):
    """RPR007: no iteration over sets in simulator hot paths.

    Set iteration order depends on insertion history and string hash
    randomization (``PYTHONHASHSEED``), so a loop over a set inside
    :mod:`repro.sim` can reorder event scheduling between processes —
    the exact cross-process nondeterminism the parallel substrate
    promises away.  Iterate lists/tuples, or wrap in ``sorted(...)``.
    """

    code = "RPR007"
    summary = "iteration over a set in a simulation hot path (order is unstable)"

    def _is_set_expr(self, node: ast.AST) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        return (
            isinstance(node, ast.Call)
            and _terminal_name(node.func) in ("set", "frozenset")
        )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if not ctx.in_package(*SIM_PACKAGES):
            return
        for node in ast.walk(ctx.tree):
            iters: list[ast.AST] = []
            if isinstance(node, ast.For):
                iters = [node.iter]
            elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp,
                                   ast.GeneratorExp)):
                iters = [gen.iter for gen in node.generators]
            for it in iters:
                if self._is_set_expr(it):
                    yield self.finding(
                        ctx, it,
                        "iterating a set in simulation code: order varies "
                        "with hashing; use a list/tuple or sorted(...)",
                    )


@rule
class VirtualTimeMutationRule(Rule):
    """RPR008: only the engine advances ``Simulation.now``.

    An event handler that writes ``sim.now`` directly desynchronizes the
    clock from the event calendar — later events appear to run in the
    past and every time-integral (utilization, queue length) silently
    corrupts.  Schedule a callback instead; the runtime invariant
    checker (``REPRO_CHECK=1``) enforces the same contract dynamically.
    """

    code = "RPR008"
    summary = "direct assignment to Simulation.now outside the engine"

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if ctx.module == "repro.sim.engine":
            return  # the engine's dispatch loop is the one legitimate writer
        for node in ast.walk(ctx.tree):
            targets: list[ast.AST] = []
            if isinstance(node, ast.Assign):
                targets = node.targets
            elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
                targets = [node.target]
            for target in targets:
                if isinstance(target, ast.Attribute) and target.attr == "now":
                    yield self.finding(
                        ctx, target,
                        "direct write to .now: virtual time may only advance "
                        "through the event calendar (Simulation.schedule)",
                    )


@rule
class AtomicStoreWriteRule(Rule):
    """RPR009: journal files are written only through ``fsync_append``.

    The crash-safety proof of :mod:`repro.experiments.store` rests on a
    single property: every journal mutation is one ``\\n``-terminated
    line issued as a single ``os.write`` followed by ``os.fsync``, so a
    crash leaves at most one truncated *final* line.  A buffered
    ``open(path, "w")`` / ``Path.write_text`` sneaking into the store
    module silently voids that guarantee — the data may sit in a user-
    space buffer (or worse, truncate the file) when the process dies.
    Raw ``os.open``/``os.write`` are exempt: they are what
    ``fsync_append`` itself is built from.
    """

    code = "RPR009"
    summary = "buffered write path in the journaled run store (use fsync_append)"

    _WRITE_METHODS = {"write_text", "write_bytes"}
    _WRITE_MODE_CHARS = set("wax+")

    def _open_mode(self, node: ast.Call) -> str | None:
        """The literal mode string of an ``open`` call, if determinable."""
        for kw in node.keywords:
            if kw.arg == "mode":
                if isinstance(kw.value, ast.Constant) and isinstance(kw.value.value, str):
                    return kw.value.value
                return None  # dynamic mode: can't tell
        if len(node.args) >= 2:
            arg = node.args[1]
            if isinstance(arg, ast.Constant) and isinstance(arg.value, str):
                return arg.value
            return None
        return "r"  # open(path) defaults to read

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if not ctx.in_package("repro.experiments.store"):
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            dotted = _dotted(node.func)
            if dotted in ("open", "io.open", "builtins.open"):
                mode = self._open_mode(node)
                if mode is not None and not self._WRITE_MODE_CHARS.isdisjoint(mode):
                    yield self.finding(
                        ctx, node,
                        f"buffered open(..., {mode!r}) in the run store; "
                        "journal writes must go through fsync_append "
                        "(single os.write + os.fsync) to stay crash-safe",
                    )
            elif (
                isinstance(node.func, ast.Attribute)
                and node.func.attr in self._WRITE_METHODS
            ):
                yield self.finding(
                    ctx, node,
                    f".{node.func.attr}() in the run store rewrites the "
                    "whole file non-durably; append records through "
                    "fsync_append instead",
                )


@rule
class CampaignLoaderSafetyRule(Rule):
    """RPR010: campaign loading is safe and expansion order-stable.

    Campaign files are untrusted repo inputs that get cross-multiplied
    into hundreds of seeded scenarios, so the loading path carries two
    invariants at once.  *Safety*: YAML must go through the safe loader
    (``yaml.load``/``compose`` without an explicit ``SafeLoader`` — or
    via ``full_load``/``unsafe_load``/``FullLoader`` — can construct
    arbitrary Python objects from document tags), and ``eval``/``exec``/
    ``pickle.loads``/``marshal.loads`` have no business near scenario
    text.  *Determinism*: matrix expansion and scenario ordering must
    not iterate unordered collections — a set-driven expansion reorders
    scenarios (and their name-derived seeds' positions) with
    ``PYTHONHASHSEED``, breaking the order-stability the round-trip
    tests pin.
    """

    code = "RPR010"
    summary = "unsafe loader or unstable iteration in campaign scenario code"

    _YAML_NEEDS_LOADER = {"load", "load_all", "compose", "compose_all", "parse"}
    _YAML_ALWAYS_UNSAFE = {"full_load", "full_load_all", "unsafe_load", "unsafe_load_all"}
    _SAFE_LOADERS = {"SafeLoader", "CSafeLoader", "BaseLoader", "CBaseLoader"}
    _EVAL_LIKE = {"eval", "exec"}
    _UNPICKLERS = {"pickle", "cPickle", "marshal"}

    def _loader_arg(self, node: ast.Call) -> ast.AST | None:
        for kw in node.keywords:
            if kw.arg == "Loader":
                return kw.value
        if len(node.args) >= 2:
            return node.args[1]
        return None

    def _is_yaml_module(self, node: ast.AST) -> bool:
        root = _root_name(node)
        return root is not None and "yaml" in root.lower()

    def _is_set_expr(self, node: ast.AST) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        return (
            isinstance(node, ast.Call)
            and _terminal_name(node.func) in ("set", "frozenset")
        )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if not ctx.in_package("repro.campaign"):
            return
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Call):
                yield from self._check_call(ctx, node)
                continue
            iters: list[ast.AST] = []
            if isinstance(node, ast.For):
                iters = [node.iter]
            elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp,
                                   ast.GeneratorExp)):
                iters = [gen.iter for gen in node.generators]
            for it in iters:
                if self._is_set_expr(it):
                    yield self.finding(
                        ctx, it,
                        "iterating a set while loading/expanding scenarios: "
                        "order varies with hashing, so expansion (and seed "
                        "positions) would differ between runs; iterate a "
                        "list/tuple or sorted(...)",
                    )

    def _check_call(self, ctx: FileContext, node: ast.Call) -> Iterator[Finding]:
        terminal = _terminal_name(node.func)
        dotted = _dotted(node.func)
        if terminal in self._YAML_ALWAYS_UNSAFE and self._is_yaml_module(node.func):
            yield self.finding(
                ctx, node,
                f"yaml.{terminal} constructs arbitrary Python objects from "
                "document tags; campaign files must be read with the safe "
                "loader (yaml.safe_load or Loader=yaml.SafeLoader)",
            )
        elif terminal in self._YAML_NEEDS_LOADER and self._is_yaml_module(node.func):
            loader = self._loader_arg(node)
            loader_name = None if loader is None else _terminal_name(loader)
            if loader_name not in self._SAFE_LOADERS:
                yield self.finding(
                    ctx, node,
                    f"yaml.{terminal} without an explicit SafeLoader: pass "
                    "Loader=yaml.SafeLoader (or use yaml.safe_load) so "
                    "campaign files can never construct Python objects",
                )
        elif dotted in self._EVAL_LIKE:
            yield self.finding(
                ctx, node,
                f"{dotted}() in campaign-loading code executes scenario "
                "text; parse it declaratively instead",
            )
        elif (
            terminal == "loads"
            and (_root_name(node.func) or "") in self._UNPICKLERS
        ):
            yield self.finding(
                ctx, node,
                f"{_dotted(node.func)} deserializes arbitrary objects from "
                "campaign input; scenario files are JSON/YAML data only",
            )


@rule
class ResultSerializationRule(Rule):
    """RPR011: result objects reach JSON only through the wire schema.

    The unified envelope (:mod:`repro.experiments.schema`) is the single
    place that knows the public field names, ``schema_version`` stamping
    and the forward-compat policy.  A ``json.dumps(result.as_dict())``
    (or ``to_dict`` / ``salvage_report`` / ``golden_summary``) elsewhere
    in :mod:`repro` bypasses that contract: the document it writes
    drifts from the one the service, the golden differ and the CLI
    agree on the moment the schema evolves.  Serialize through
    ``repro.experiments.schema.dumps``/``dump`` instead.
    """

    code = "RPR011"
    summary = "raw json.dumps of a result object outside repro.experiments.schema"

    _RESULT_PRODUCERS = {"as_dict", "to_dict", "salvage_report", "golden_summary"}
    _JSON_WRITERS = {"json.dumps", "json.dump"}

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if not ctx.in_package("repro") or ctx.in_package("repro.experiments.schema"):
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            if _dotted(node.func) not in self._JSON_WRITERS or not node.args:
                continue
            payload = node.args[0]
            if not isinstance(payload, ast.Call):
                continue
            producer = _terminal_name(payload.func)
            if producer in self._RESULT_PRODUCERS:
                yield self.finding(
                    ctx, node,
                    f"json.{_terminal_name(node.func)} of {producer}() "
                    "bypasses the versioned wire schema; serialize result "
                    "objects through repro.experiments.schema.dumps/dump so "
                    "every consumer shares one envelope",
                )


@rule
class ExactTimeEqualityRule(Rule):
    """RPR012: exact float equality between time-valued quantities.

    Virtual time is accumulated floating-point arithmetic: two paths to
    "the same instant" (``arrival + service`` vs a calendar-bucket
    rounding) can differ in the last ulp, so ``==`` / ``!=`` between
    time-valued expressions encodes a comparison that is true on one
    platform and false on another.  Compare with a tolerance
    (``math.isclose``/``abs(a - b) < eps``) or, where the engine
    guarantees bit-identical replay *by construction*, suppress with a
    reason.  Sentinel comparisons (``0``, ``0.0``, ``inf``, ``None``)
    are exempt: they test "unset/empty", not simultaneity.
    """

    code = "RPR012"
    summary = "exact ==/!= between time-valued floats (use a tolerance)"

    #: Names that denote the simulation clock or a point on it.
    _TIME_NAMES = {"now", "t", "vtime", "sim_time", "timestamp", "clock"}

    #: A name with one of these suffixes is seconds-valued by the
    #: project convention (DESIGN.md §6) or names an instant.
    _TIME_SUFFIXES = (
        "latency", "rtt", "deadline", "time", "now", "_s", "_sec", "_seconds",
    )

    def _time_valued(self, node: ast.AST) -> bool:
        name = _terminal_name(node)
        if name is None:
            return False
        low = name.lower()
        return low in self._TIME_NAMES or low.endswith(self._TIME_SUFFIXES)

    def _sentinel(self, node: ast.AST) -> bool:
        if isinstance(node, ast.Constant):
            v = node.value
            if v is None or isinstance(v, bool):
                return True
            return isinstance(v, (int, float)) and (v == 0 or v != v or v in (
                float("inf"), float("-inf")))
        if isinstance(node, ast.UnaryOp) and isinstance(node.op, ast.USub):
            return self._sentinel(node.operand)
        if isinstance(node, ast.Call) and _terminal_name(node.func) == "float":
            return True  # float("inf") / float("nan") sentinels
        if _dotted(node) in ("math.inf", "math.nan", "np.inf", "numpy.inf"):
            return True
        return False

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if not ctx.in_package("repro"):
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Compare) or len(node.ops) != 1:
                continue
            if not isinstance(node.ops[0], (ast.Eq, ast.NotEq)):
                continue
            left, right = node.left, node.comparators[0]
            if self._sentinel(left) or self._sentinel(right):
                continue
            lt, rt = self._time_valued(left), self._time_valued(right)
            literal = isinstance(left, ast.Constant) or isinstance(right, ast.Constant)
            if (lt and rt) or ((lt or rt) and literal):
                op = "==" if isinstance(node.ops[0], ast.Eq) else "!="
                yield self.finding(
                    ctx, node,
                    f"exact {op} between time-valued floats: virtual time is "
                    "accumulated floating-point, so last-ulp differences make "
                    "this comparison platform-dependent; use math.isclose or "
                    "an explicit tolerance",
                )


@rule
class ExceptionSwallowRule(Rule):
    """RPR013: broad exception handlers that silently discard the error.

    In the supervision and service layers an ``except Exception: pass``
    (or ``continue`` / bare ``return``) erases the only evidence of a
    crashed worker or a failed request: the campaign "succeeds" with a
    hole in its results.  Handlers must record the failure (re-raise,
    return an error value, append to a report) — the supervised-pool
    contract is that *no worker death is silent*.  Deliberate drops
    (e.g. best-effort cleanup) carry a suppression with the reason.
    """

    code = "RPR013"
    summary = "broad except handler swallows the exception (pass/continue/bare return)"

    _BROAD = {"Exception", "BaseException"}

    def _is_broad(self, handler: ast.ExceptHandler) -> bool:
        t = handler.type
        if t is None:
            return True  # bare except
        if isinstance(t, ast.Tuple):
            return any(_terminal_name(e) in self._BROAD for e in t.elts)
        return _terminal_name(t) in self._BROAD

    def _swallows(self, handler: ast.ExceptHandler) -> bool:
        body = handler.body
        # A leading string literal (comment-by-docstring) doesn't count
        # as handling the error.
        if body and isinstance(body[0], ast.Expr) and isinstance(
            body[0].value, ast.Constant
        ):
            body = body[1:]
        if not body:
            return True
        for stmt in body:
            if isinstance(stmt, (ast.Pass, ast.Continue, ast.Break)):
                continue
            if isinstance(stmt, ast.Return) and (
                stmt.value is None
                or (isinstance(stmt.value, ast.Constant) and stmt.value.value is None)
            ):
                continue
            return False
        return True

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if not ctx.in_package("repro.parallel.supervise", "repro.service"):
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if self._is_broad(node) and self._swallows(node):
                shape = "bare except" if node.type is None else "except Exception"
                yield self.finding(
                    ctx, node,
                    f"{shape} handler discards the error without recording "
                    "it; a crashed worker or failed request becomes a silent "
                    "hole in the results — re-raise, return an error value, "
                    "or log to the run report",
                )
