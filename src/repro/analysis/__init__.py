"""repro.analysis — project-specific static analysis + runtime invariants.

The reproduction's headline claims (bit-identical parallel≡sequential
determinism, the seconds-only ``n + w + s`` decomposition, the
``observables()`` and refusal-taxonomy protocols) rest on conventions no
generic linter knows about.  This subsystem enforces them twice over:

* **statically** — ``python -m repro.analysis src tests`` runs both
  analysis tiers: the per-file rule pack (:mod:`repro.analysis.rules`,
  codes ``RPR001``…) and the whole-program call-graph analyses built on
  :mod:`repro.analysis.callgraph` — hot-path purity/taint (``RPR101``),
  task-callable picklability (``RPR102``) and seed-flow checking
  (``RPR103``).  Results are cached incrementally
  (:mod:`repro.analysis.cache`), gated against the checked-in
  ``analysis-baseline.json`` (:mod:`repro.analysis.baseline` — CI fails
  only on *new* findings) and exportable as SARIF 2.1.0
  (:mod:`repro.analysis.sarif`).  Suppress a deliberate exception with
  ``# repro: noqa[RPRnnn]  -- reason`` (stale suppressions are
  themselves findings, code ``RPR000``).
* **dynamically** — :mod:`repro.analysis.invariants` checks virtual-time
  monotonicity, per-station request conservation and non-negative
  occupancy while a simulation runs.  Opt in with ``REPRO_CHECK=1`` (or
  ``--check-invariants`` on any CLI experiment); off, the simulator's
  hot paths are untouched.

Rule catalog, rationale and how to add a rule: ``docs/static_analysis.md``.
"""

from repro.analysis.baseline import (
    Baseline,
    BaselineDiff,
    BaselineEntry,
    fingerprint,
    update_baseline,
)
from repro.analysis.cache import (
    ProjectReport,
    analyze_project,
    rule_pack_digest,
)
from repro.analysis.callgraph import (
    CallGraph,
    ModuleSummary,
    extract_module,
    link,
    render_chain,
    shortest_chains,
)
from repro.analysis.engine import (
    Finding,
    Rule,
    analyze_file,
    analyze_paths,
    apply_suppressions,
    collect_raw_findings,
    registered_rules,
    render_json,
    render_text,
    rule,
)
from repro.analysis.invariants import (
    InvariantChecker,
    InvariantViolation,
    checks_enabled,
)
from repro.analysis.purity import (
    DEFAULT_HOT_ROOTS,
    check_picklability,
    check_purity,
)
from repro.analysis.rules import (
    DETERMINISM_PACKAGES,
    RULE_PACK_VERSION,
    SIM_PACKAGES,
)
from repro.analysis.sarif import render_sarif, sarif_document
from repro.analysis.seedflow import check_seedflow

__all__ = [
    "Finding",
    "Rule",
    "rule",
    "registered_rules",
    "analyze_file",
    "analyze_paths",
    "collect_raw_findings",
    "apply_suppressions",
    "render_text",
    "render_json",
    "CallGraph",
    "ModuleSummary",
    "extract_module",
    "link",
    "shortest_chains",
    "render_chain",
    "check_purity",
    "check_picklability",
    "check_seedflow",
    "DEFAULT_HOT_ROOTS",
    "ProjectReport",
    "analyze_project",
    "rule_pack_digest",
    "Baseline",
    "BaselineDiff",
    "BaselineEntry",
    "fingerprint",
    "update_baseline",
    "render_sarif",
    "sarif_document",
    "InvariantChecker",
    "InvariantViolation",
    "checks_enabled",
    "DETERMINISM_PACKAGES",
    "SIM_PACKAGES",
    "RULE_PACK_VERSION",
]
