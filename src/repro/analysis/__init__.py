"""repro.analysis — project-specific static analysis + runtime invariants.

The reproduction's headline claims (bit-identical parallel≡sequential
determinism, the seconds-only ``n + w + s`` decomposition, the
``observables()`` and refusal-taxonomy protocols) rest on conventions no
generic linter knows about.  This subsystem enforces them twice over:

* **statically** — ``python -m repro.analysis src tests`` runs the
  :mod:`repro.analysis.rules` pack (codes ``RPR001``…) over the tree
  via the small engine in :mod:`repro.analysis.engine`; CI fails on any
  finding.  Suppress a deliberate exception with
  ``# repro: noqa[RPRnnn]  -- reason`` (stale suppressions are
  themselves findings, code ``RPR000``).
* **dynamically** — :mod:`repro.analysis.invariants` checks virtual-time
  monotonicity, per-station request conservation and non-negative
  occupancy while a simulation runs.  Opt in with ``REPRO_CHECK=1`` (or
  ``--check-invariants`` on any CLI experiment); off, the simulator's
  hot paths are untouched.

Rule catalog, rationale and how to add a rule: ``docs/static_analysis.md``.
"""

from repro.analysis.engine import (
    Finding,
    Rule,
    analyze_file,
    analyze_paths,
    registered_rules,
    render_json,
    render_text,
    rule,
)
from repro.analysis.invariants import (
    InvariantChecker,
    InvariantViolation,
    checks_enabled,
)
from repro.analysis.rules import DETERMINISM_PACKAGES, SIM_PACKAGES

__all__ = [
    "Finding",
    "Rule",
    "rule",
    "registered_rules",
    "analyze_file",
    "analyze_paths",
    "render_text",
    "render_json",
    "InvariantChecker",
    "InvariantViolation",
    "checks_enabled",
    "DETERMINISM_PACKAGES",
    "SIM_PACKAGES",
]
