"""SARIF 2.1.0 output for the analysis pass.

Emits the minimal document GitHub code scanning ingests: one run, the
full rule catalog (leaf rules + whole-program analyses + the engine's
RPR000/RPR999 synthetics) under ``tool.driver.rules``, and one result
per finding with a ``physicalLocation`` (1-based line/column), a
``partialFingerprints`` entry carrying the baseline fingerprint, and —
when a :class:`~repro.analysis.baseline.Baseline` is supplied — a
``baselineState`` of ``"unchanged"`` or ``"new"`` so the code-scanning
UI separates accepted findings from regressions.

The document is deliberately small; the vendored schema subset in
``tests/analysis/sarif-schema-min.json`` pins exactly the properties we
rely on, so a refactor that drops one fails the suite rather than
silently degrading the upload.
"""

from __future__ import annotations

import json
from collections.abc import Iterable, Sequence

from repro.analysis.baseline import Baseline, fingerprint
from repro.analysis.engine import UNUSED_SUPPRESSION, Finding, registered_rules
from repro.analysis.purity import PICKLE_INFO, PURITY_INFO, AnalysisInfo
from repro.analysis.seedflow import SEEDFLOW_INFO

__all__ = ["SARIF_VERSION", "sarif_document", "render_sarif", "rule_catalog"]

SARIF_VERSION = "2.1.0"

_SCHEMA_URI = "https://json.schemastore.org/sarif-2.1.0.json"

#: Synthetic codes the engine emits without a registered Rule class.
_ENGINE_CODES: tuple[tuple[str, str], ...] = (
    (UNUSED_SUPPRESSION, "unused suppression: the noqa matched no finding"),
    ("RPR999", "file does not parse"),
)

#: Codes that are hygiene warnings rather than determinism defects.
_WARNING_CODES = {UNUSED_SUPPRESSION}


def rule_catalog(
    analyses: Iterable[AnalysisInfo] = (PURITY_INFO, PICKLE_INFO, SEEDFLOW_INFO),
) -> list[tuple[str, str]]:
    """Ordered ``(code, summary)`` for every code the pass can emit."""
    catalog = [(cls.code, cls.summary) for cls in registered_rules()]
    catalog.extend((info.code, info.summary) for info in analyses)
    catalog.extend(_ENGINE_CODES)
    return sorted(catalog)


def sarif_document(
    findings: Sequence[Finding],
    *,
    baseline: Baseline | None = None,
    tool_version: str = "1.0.0",
) -> dict[str, object]:
    """Build the SARIF 2.1.0 document as a plain dict."""
    catalog = rule_catalog()
    rule_index = {code: i for i, (code, _) in enumerate(catalog)}
    rules: list[dict[str, object]] = [
        {
            "id": code,
            "shortDescription": {"text": summary},
        }
        for code, summary in catalog
    ]
    results: list[dict[str, object]] = []
    for f in findings:
        fp = fingerprint(f)
        result: dict[str, object] = {
            "ruleId": f.code,
            "level": "warning" if f.code in _WARNING_CODES else "error",
            "message": {"text": f.message},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {"uri": f.path.replace("\\", "/")},
                        "region": {
                            "startLine": max(f.line, 1),
                            "startColumn": f.col + 1,
                        },
                    }
                }
            ],
            "partialFingerprints": {"reproAnalysis/v1": fp},
        }
        if f.code in rule_index:
            result["ruleIndex"] = rule_index[f.code]
        if baseline is not None:
            result["baselineState"] = (
                "unchanged" if fp in baseline.entries else "new"
            )
        results.append(result)
    return {
        "$schema": _SCHEMA_URI,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro-analysis",
                        "version": tool_version,
                        "informationUri":
                            "https://example.invalid/repro/docs/static_analysis",
                        "rules": rules,
                    }
                },
                "results": results,
            }
        ],
    }


def render_sarif(
    findings: Sequence[Finding],
    *,
    baseline: Baseline | None = None,
    tool_version: str = "1.0.0",
) -> str:
    """Serialize :func:`sarif_document` deterministically."""
    doc = sarif_document(findings, baseline=baseline, tool_version=tool_version)
    return json.dumps(doc, indent=2, sort_keys=False) + "\n"
