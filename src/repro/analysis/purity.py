"""Interprocedural purity/taint and picklability analyses (RPR101/RPR102).

Built on the :mod:`repro.analysis.callgraph` project graph, these passes
answer the questions the per-file rules cannot:

* **RPR101 — hot-path purity.**  Compute every function transitively
  reachable from the simulation hot roots (:data:`DEFAULT_HOT_ROOTS`) and
  flag any reachable taint sink: wall-clock reads, global/unseeded RNG
  draws, ``os.environ`` reads, and unordered-set iteration.  The finding
  carries the *full call chain* (``Simulation.run → _dispatch → handler:
  time.time()``), anchored at the sink's file and line so a plain
  ``# repro: noqa[RPR101] -- reason`` on that line suppresses it.
* **RPR102 — task-callable picklability.**  Every callable handed to
  ``run_tasks`` / ``run_supervised`` must resolve to a module-level
  picklable target.  Lambdas, nested functions and ``functools.partial``
  wrappers around either are flagged at the call site; a callable that
  arrives through a *parameter* (the campaign runner's indirection) is
  chased through the call graph's reverse edges up to
  :data:`PARAM_CHASE_DEPTH` caller levels.

Both passes only see what the call graph indexes (``repro.*`` modules of
the analyzed paths); dynamic dispatch the linker could not resolve is
reported once per name through :class:`~repro.analysis.callgraph.
CallGraph.unknown` rather than silently dropped.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from dataclasses import dataclass

from repro.analysis.callgraph import (
    CallGraph,
    CallRecord,
    FunctionSummary,
    ModuleSummary,
    render_chain,
    shortest_chains,
)
from repro.analysis.engine import Finding

__all__ = [
    "PURITY_CODE",
    "PICKLE_CODE",
    "DEFAULT_HOT_ROOTS",
    "PARAM_CHASE_DEPTH",
    "AnalysisInfo",
    "PURITY_INFO",
    "PICKLE_INFO",
    "check_purity",
    "check_picklability",
]

PURITY_CODE = "RPR101"
PICKLE_CODE = "RPR102"

#: Levels of reverse-edge chasing when a task callable is a parameter.
PARAM_CHASE_DEPTH = 3

#: The seeded-simulation entry points every figure flows through.  A
#: sink reachable from any of these silently invalidates bit-identical
#: replay; fnmatch patterns are matched against function qualnames.
DEFAULT_HOT_ROOTS: tuple[str, ...] = (
    "repro.sim.engine.Simulation.run",
    "repro.sim.station.Station.*",
    "repro.sim.client.*",
    "repro.sim.fastsim.simulate_*",
    "repro.core.comparator.EdgeCloudComparator.measure_point",
)


@dataclass(frozen=True)
class AnalysisInfo:
    """Catalog entry for a whole-program analysis (mirrors Rule metadata)."""

    code: str
    summary: str
    explain: str


PURITY_INFO = AnalysisInfo(
    code=PURITY_CODE,
    summary="impure call (wall-clock/global-RNG/environ/set-iteration) "
            "reachable from a simulation hot root",
    explain=(
        "The whole-program pass walks the project call graph from the "
        "simulation hot roots (Simulation.run, Station and source event "
        "handlers, fastsim.simulate_*, EdgeCloudComparator.measure_point) "
        "and flags any transitively reachable wall-clock read, global or "
        "unseeded RNG draw, os.environ read, or unordered-set iteration. "
        "Unlike the per-file rule RPR001, the offending call may live in "
        "any module — the finding reports the full call chain "
        "(a → b → c: time.time()) and anchors at the sink line, where a "
        "`# repro: noqa[RPR101] -- reason` suppression applies."
    ),
)

PICKLE_INFO = AnalysisInfo(
    code=PICKLE_CODE,
    summary="task callable handed to run_tasks/run_supervised does not "
            "resolve to a module-level picklable target",
    explain=(
        "Process pools pickle the task callable, so it must resolve to a "
        "module-level function. This pass checks every run_tasks / "
        "run_supervised call site in the graph — including callables "
        "wrapped in functools.partial and callables that arrive through a "
        "caller's parameter (the campaign runner's indirection), chased "
        f"up to {PARAM_CHASE_DEPTH} caller levels through the call graph."
    ),
)


# --------------------------------------------------------------------------
# RPR101 — purity/taint reachability
# --------------------------------------------------------------------------

_SINK_LABEL = {
    "wall-clock": "wall-clock call",
    "global-rng": "global/unseeded RNG",
    "environ": "environment read",
    "set-iteration": "unordered-set iteration",
}


def check_purity(
    graph: CallGraph, roots: Iterable[str] = DEFAULT_HOT_ROOTS
) -> list[Finding]:
    """Flag every taint sink reachable from the hot roots, with its chain."""
    chains = shortest_chains(graph, roots)
    findings: list[Finding] = []
    for qualname in sorted(chains):
        entry = graph.functions.get(qualname)
        if entry is None:
            continue
        summary, fn = entry
        for sink in fn.sinks:
            chain = render_chain(chains[qualname])
            label = _SINK_LABEL.get(sink.kind, sink.kind)
            findings.append(Finding(
                path=summary.path,
                line=sink.line,
                col=sink.col,
                code=PURITY_CODE,
                message=(
                    f"{label} {sink.detail} is reachable from hot root "
                    f"{_root_of(chains[qualname])} via {chain}: "
                    f"{sink.detail} breaks bit-identical replay on the "
                    "simulation hot path"
                ),
            ))
    return findings


def _root_of(chain: Sequence[str]) -> str:
    head = chain[0]
    parts = head.split(".")
    return ".".join(parts[-2:]) if len(parts) >= 2 else head


# --------------------------------------------------------------------------
# RPR102 — picklability reachability
# --------------------------------------------------------------------------


def check_picklability(graph: CallGraph) -> list[Finding]:
    """Verify every ``run_tasks``/``run_supervised`` task callable pickles."""
    findings: list[Finding] = []
    for qualname in sorted(graph.functions):
        summary, fn = graph.functions[qualname]
        for call in fn.calls:
            if not call.fn_arg:
                continue
            if not _targets_runner(graph, qualname, call):
                continue
            problem = _diagnose(graph, summary, fn, call.fn_arg, depth=0)
            if problem is not None:
                findings.append(Finding(
                    path=summary.path,
                    line=call.line,
                    col=call.col,
                    code=PICKLE_CODE,
                    message=(
                        f"task callable handed to {call.target} in "
                        f"{_short_name(qualname)} {problem}; process pools "
                        "pickle the callable, so it must be a module-level "
                        "function (or a partial over one)"
                    ),
                ))
    return findings


def _short_name(qualname: str) -> str:
    parts = qualname.split(".")
    return ".".join(parts[-2:]) if len(parts) >= 2 else qualname


def _targets_runner(graph: CallGraph, caller_qual: str,
                    call: CallRecord) -> bool:
    """True when the call site really targets the parallel substrate."""
    leaf = call.target.rsplit(".", 1)[-1]
    if leaf not in ("run_tasks", "run_supervised"):
        return False
    # If the linker resolved the call, require the repro.parallel target;
    # an unresolvable bare name is assumed to be the real runner.
    resolved = [
        q for q in graph.edges.get(caller_qual, [])
        if q.rsplit(".", 1)[-1] == leaf
    ]
    if resolved:
        return any(q.startswith("repro.parallel.") for q in resolved)
    return True


def _diagnose(graph: CallGraph, summary: ModuleSummary, fn: FunctionSummary,
              descriptor: str, depth: int) -> str | None:
    """Return the problem with a task-callable descriptor, or None if OK."""
    if descriptor == "lambda":
        return "is a lambda, which cannot pickle"
    if descriptor.startswith("partial:"):
        inner = descriptor.split(":", 1)[1]
        if inner == "?":
            return None  # partial over something unresolvable: benefit of doubt
        problem = _diagnose(graph, summary, fn, inner, depth)
        if problem is not None:
            return f"wraps a partial whose target {problem}"
        return None
    if descriptor.startswith("call:"):
        return None  # a factory call: assumed to build a picklable callable
    if not descriptor.startswith("name:"):
        return None
    name = descriptor.split(":", 1)[1]
    head = name.split(".")[0]
    if name == head and head in fn.params:
        return _chase_parameter(graph, fn, head, depth)
    # A local variable? The extractor types `x = partial(f)` constructor
    # assignments into local_types, where the raw string is "partial".
    local = fn.local_types.get(head, "")
    if local.rsplit(".", 1)[-1] == "partial":
        return None  # partial over locals: the arg descriptor already checked
    # Nested function defined inside this (or an enclosing) function?
    nested_qual = f"{fn.qualname}.<locals>.{name}"
    if nested_qual in graph.functions:
        return f"is the nested function {name!r}, which cannot pickle"
    # Module-level resolution via the linker's tables.
    for qualname, (s, target_fn) in graph.functions.items():
        if s.module == summary.module and target_fn.name == name and (
            not target_fn.is_nested and not target_fn.class_name
        ):
            return None  # module-level function in the same module
    return None  # imported or attribute target: module-level by construction


def _chase_parameter(graph: CallGraph, fn: FunctionSummary, param: str,
                     depth: int) -> str | None:
    """The callable is ``fn``'s parameter: inspect what callers pass.

    Only the *leading* callable argument of each caller's call site is
    recorded in the summaries, so the chase covers the idiomatic wrapper
    shape (``sweep(measure, ...)`` → ``run_tasks(fn, ...)``) — a callable
    threaded through a later positional slot is conservatively trusted.
    """
    if depth >= PARAM_CHASE_DEPTH:
        return None
    leading = [p for p in fn.params if p != "self"]
    if not leading or leading[0] != param:
        return None
    for caller_qual in graph.callers_of(fn.qualname):
        caller_summary, caller_fn = graph.functions[caller_qual]
        for call in caller_fn.calls:
            if call.fn_arg and call.target.rsplit(".", 1)[-1] == fn.name:
                problem = _diagnose(graph, caller_summary, caller_fn,
                                    call.fn_arg, depth + 1)
                if problem is not None:
                    return (
                        f"arrives via parameter {param!r} from "
                        f"{_short_name(caller_qual)} and {problem}"
                    )
    return None
