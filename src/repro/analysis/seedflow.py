"""Seed-flow checking (RPR103): derived seeds must stay derived.

:mod:`repro.parallel.seeding` exists so that every child stream is
derived by hashing a spawn key — ``derive_seed(base, *path)`` — instead
of offsetting entropy.  The leaf rule RPR002 catches arithmetic *on a
seed-named value*; this pass instead traces what happens to the **result**
of a derivation, using the per-function records the call-graph extractor
collects:

* **combined** — a value produced by ``derive_seed``/``derive_seedseq``/
  ``derive_rng`` flows into integer arithmetic (``derive_seed(b, i) + k``
  or ``s = derive_seed(b, i); s * 2``): the derived stream's independence
  guarantee is destroyed the moment it is offset;
* **reused** — two textually identical derivations (same deriver, same
  argument expressions) at *different* call sites of one function hand
  the same stream to siblings that believe they are independent;
* **dropped** — a derivation in statement position whose result is
  discarded: the caller paid for a child stream and then used nothing,
  which almost always means the intended consumer reads some other
  (shared) stream.

All three are local to a function body but operate on the extracted
summaries, so cached files are never re-parsed to re-run this pass.
"""

from __future__ import annotations

from repro.analysis.callgraph import CallGraph
from repro.analysis.engine import Finding
from repro.analysis.purity import AnalysisInfo

__all__ = ["SEEDFLOW_CODE", "SEEDFLOW_INFO", "check_seedflow"]

SEEDFLOW_CODE = "RPR103"

SEEDFLOW_INFO = AnalysisInfo(
    code=SEEDFLOW_CODE,
    summary="derived seed misused: arithmetically combined, reused across "
            "siblings, or dropped",
    explain=(
        "Traces the results of derive_seed/derive_seedseq/derive_rng call "
        "sites through each function: a derived seed that is arithmetically "
        "combined loses its independence guarantee (derive a deeper path "
        "instead: derive_seed(base, i, j)); two identical derivations in "
        "one function hand the same stream to sibling tasks; a derivation "
        "whose result is discarded means the intended consumer is reading "
        "some other stream."
    ),
)


def check_seedflow(graph: CallGraph) -> list[Finding]:
    """Run the three seed-flow checks over every function in the graph."""
    findings: list[Finding] = []
    for qualname in sorted(graph.functions):
        summary, fn = graph.functions[qualname]
        where = _short(qualname)

        # -- combined: derivation directly inside arithmetic --------------
        for sc in fn.seed_calls:
            if sc.in_arith:
                findings.append(Finding(
                    path=summary.path, line=sc.line, col=sc.col,
                    code=SEEDFLOW_CODE,
                    message=(
                        f"{sc.fn}(...) result is arithmetically combined in "
                        f"{where}; offsetting a derived seed destroys its "
                        "independence — derive a deeper path instead "
                        f"({sc.fn}(base, *path, extra))"
                    ),
                ))

        # -- combined: derived variable later used in arithmetic -----------
        for var, line in zip(fn.seed_arith_vars, fn.seed_arith_lines):
            findings.append(Finding(
                path=summary.path, line=line, col=0,
                code=SEEDFLOW_CODE,
                message=(
                    f"derived seed {var!r} is arithmetically combined in "
                    f"{where}; derive a deeper path instead of offsetting "
                    "the derived value"
                ),
            ))

        # -- reused: identical derivations at distinct call sites ----------
        seen: dict[tuple[str, str], int] = {}
        for sc in fn.seed_calls:
            if not sc.args:
                continue
            key = (sc.fn, sc.args)
            if key in seen and seen[key] != sc.line:
                findings.append(Finding(
                    path=summary.path, line=sc.line, col=sc.col,
                    code=SEEDFLOW_CODE,
                    message=(
                        f"{sc.fn}(...) repeats the derivation from line "
                        f"{seen[key]} with identical arguments in {where}; "
                        "sibling tasks would share one stream — add a "
                        "distinguishing path component"
                    ),
                ))
            else:
                seen.setdefault(key, sc.line)

        # -- dropped: derivation in statement position ----------------------
        for sc in fn.seed_calls:
            if sc.discarded:
                findings.append(Finding(
                    path=summary.path, line=sc.line, col=sc.col,
                    code=SEEDFLOW_CODE,
                    message=(
                        f"{sc.fn}(...) result is discarded in {where}; the "
                        "derived stream is never handed to a consumer, so "
                        "whatever runs next reads a different (shared) stream"
                    ),
                ))
    return findings


def _short(qualname: str) -> str:
    parts = qualname.split(".")
    return ".".join(parts[-2:]) if len(parts) >= 2 else qualname
