"""CLI for the static-analysis pass.

Usage::

    python -m repro.analysis src tests                  # human output
    python -m repro.analysis src tests --format json    # CI / tooling
    python -m repro.analysis src tests \\
        --baseline analysis-baseline.json \\
        --sarif analysis.sarif                          # the CI gate
    python -m repro.analysis src tests --update-baseline
    python -m repro.analysis --list-rules               # rule catalog
    python -m repro.analysis --explain RPR101           # one rule, long form

Both tiers run by default: the per-file leaf rules (RPR001…) and the
whole-program call-graph analyses (RPR101 purity, RPR102 picklability,
RPR103 seed flow).  Results are cached in ``.repro-analysis-cache.json``
(``--cache`` to relocate, ``--no-cache`` to disable) so warm re-runs
only analyze changed files and their reverse dependencies.

Exit status: 0 when clean — with ``--baseline``, when no *new* finding
appears (baselined findings are reported but do not fail the gate);
1 when the gate fails; 2 on usage errors.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.analysis.baseline import Baseline, update_baseline
from repro.analysis.cache import DEFAULT_CACHE_NAME, analyze_project
from repro.analysis.engine import (
    Finding,
    registered_rules,
    render_json,
    render_text,
)
from repro.analysis.purity import PICKLE_INFO, PURITY_INFO
from repro.analysis.sarif import render_sarif
from repro.analysis.seedflow import SEEDFLOW_INFO

_ANALYSES = (PURITY_INFO, PICKLE_INFO, SEEDFLOW_INFO)


def _explain(code: str) -> int:
    """Print the long-form description of one code."""
    for info in _ANALYSES:
        if info.code == code:
            print(f"{info.code}  {info.summary}\n")
            print(info.explain)
            return 0
    for cls in registered_rules():
        if cls.code == code:
            print(f"{cls.code}  {cls.summary}\n")
            doc = (cls.__doc__ or "").strip()
            if doc:
                print(doc)
            return 0
    print(f"unknown code: {code}", file=sys.stderr)
    return 2


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.analysis",
        description="Project-specific static analysis (determinism, units, protocols).",
    )
    parser.add_argument(
        "paths", nargs="*", help="files or directories to analyze (e.g. src tests)"
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="print the rule catalog and exit"
    )
    parser.add_argument(
        "--explain", metavar="RPRnnn",
        help="print the long-form rationale for one code and exit",
    )
    parser.add_argument(
        "--baseline", metavar="PATH", type=Path,
        help="compare against this baseline; only NEW findings fail the gate",
    )
    parser.add_argument(
        "--update-baseline", action="store_true",
        help="rewrite the baseline from the current findings "
             "(preserves existing justifications) and exit 0",
    )
    parser.add_argument(
        "--sarif", metavar="PATH", type=Path,
        help="additionally write a SARIF 2.1.0 report to PATH",
    )
    parser.add_argument(
        "--cache", metavar="PATH", type=Path, default=Path(DEFAULT_CACHE_NAME),
        help=f"incremental cache location (default: {DEFAULT_CACHE_NAME})",
    )
    parser.add_argument(
        "--no-cache", action="store_true",
        help="disable the incremental cache (always a cold run)",
    )
    parser.add_argument(
        "--no-whole-program", action="store_true",
        help="run only the per-file leaf rules (skip call-graph analyses)",
    )
    args = parser.parse_args(argv)

    if args.list_rules:
        for cls in registered_rules():
            print(f"{cls.code}  {cls.summary}")
        for info in _ANALYSES:
            print(f"{info.code}  {info.summary}")
        return 0
    if args.explain:
        return _explain(args.explain)
    if not args.paths:
        parser.error("no paths given (try: python -m repro.analysis src tests)")
    if args.update_baseline and args.baseline is None:
        parser.error("--update-baseline requires --baseline PATH")

    try:
        report = analyze_project(
            args.paths,
            cache_path=None if args.no_cache else args.cache,
            whole_program=not args.no_whole_program,
        )
    except FileNotFoundError as exc:
        parser.error(str(exc))

    findings: list[Finding] = report.findings

    baseline: Baseline | None = None
    gate_failed = bool(findings)
    new_findings = findings
    if args.baseline is not None:
        baseline = Baseline.load(args.baseline)
        if args.update_baseline:
            update_baseline(baseline, findings).save(args.baseline)
            print(f"baseline updated: {len(findings)} finding(s) recorded "
                  f"in {args.baseline}")
            return 0
        diff = baseline.compare(findings)
        new_findings = diff.new
        gate_failed = bool(diff.new)
        for entry in diff.stale:
            print(f"stale baseline entry {entry.fingerprint} "
                  f"({entry.path}: {entry.code}) — run --update-baseline",
                  file=sys.stderr)

    if args.sarif is not None:
        args.sarif.write_text(render_sarif(findings, baseline=baseline))

    render = render_json if args.format == "json" else render_text
    print(render(findings, report.files_checked))
    for name, (caller, line) in sorted(report.unknown_dispatch.items()):
        print(f"note: dynamic dispatch on {name!r} not resolved "
              f"(first at {caller}:{line})", file=sys.stderr)
    if args.baseline is not None and gate_failed:
        print(f"{len(new_findings)} new finding(s) not in baseline "
              f"{args.baseline}", file=sys.stderr)
    return 1 if gate_failed else 0


if __name__ == "__main__":
    sys.exit(main())
