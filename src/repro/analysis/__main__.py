"""CLI for the static-analysis pass.

Usage::

    python -m repro.analysis src tests                 # human output
    python -m repro.analysis src tests --format json   # CI / tooling
    python -m repro.analysis --list-rules              # rule catalog

Exit status: 0 when clean, 1 when any finding survives suppressions,
2 on usage errors — so ``python -m repro.analysis src tests`` is the
whole CI gate.
"""

from __future__ import annotations

import argparse
import sys

from repro.analysis.engine import (
    analyze_paths,
    registered_rules,
    render_json,
    render_text,
)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.analysis",
        description="Project-specific static analysis (determinism, units, protocols).",
    )
    parser.add_argument(
        "paths", nargs="*", help="files or directories to analyze (e.g. src tests)"
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="print the rule catalog and exit"
    )
    args = parser.parse_args(argv)

    if args.list_rules:
        for cls in registered_rules():
            print(f"{cls.code}  {cls.summary}")
        return 0
    if not args.paths:
        parser.error("no paths given (try: python -m repro.analysis src tests)")

    try:
        findings, files_checked = analyze_paths(args.paths)
    except FileNotFoundError as exc:
        parser.error(str(exc))

    render = render_json if args.format == "json" else render_text
    print(render(findings, files_checked))
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main())
