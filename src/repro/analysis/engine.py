"""Rule engine for the project-specific static-analysis pass.

The engine is deliberately small: a :class:`Rule` is a class with a
``code`` (``RPR001``…), a one-line ``summary``, and a ``check`` method
that walks a parsed file and yields :class:`Finding` objects.  Rules
register themselves with the :func:`rule` decorator; the engine runs
every registered rule over every file, applies ``# repro: noqa[RPRnnn]``
suppressions, and reports suppression comments that suppressed nothing
(code ``RPR000`` — a stale noqa hides future regressions).

The engine knows nothing about the individual rules — the rule pack in
:mod:`repro.analysis.rules` is the extension surface.  Adding a rule is:
subclass :class:`Rule`, decorate with :func:`rule`, document it in
``docs/static_analysis.md``.

Design constraints:

* stdlib only (``ast`` + ``tokenize``) — the pass must run in CI and in
  the bare dev container without installing anything;
* one parse per file, shared by all rules through a
  :class:`FileContext`;
* deterministic output ordering (path, line, column, code) so diffs of
  the JSON report are stable.
"""

from __future__ import annotations

import ast
import io
import json
import re
import tokenize
from collections.abc import Iterable, Iterator, Mapping, Sequence
from dataclasses import dataclass
from pathlib import Path

__all__ = [
    "Finding",
    "FileContext",
    "Rule",
    "rule",
    "registered_rules",
    "parse_failure",
    "collect_raw_findings",
    "suppressions_for",
    "apply_suppressions",
    "analyze_file",
    "analyze_paths",
    "render_text",
    "render_json",
]

#: Code reported for a ``# repro: noqa[...]`` comment that suppressed nothing.
UNUSED_SUPPRESSION = "RPR000"

#: A hash, then ``repro: noqa[RPR001]`` (codes comma-separated); anything
#: after the closing bracket (``-- reason``) is free-form rationale.
_NOQA_RE = re.compile(r"#\s*repro:\s*noqa\[([A-Z0-9,\s]+)\]")

_CODE_RE = re.compile(r"^RPR\d{3}$")


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at a source location."""

    path: str
    line: int
    col: int
    code: str
    message: str

    def to_dict(self) -> dict:
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "code": self.code,
            "message": self.message,
        }

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.code} {self.message}"


class FileContext:
    """One parsed file, shared by every rule.

    Attributes
    ----------
    path:
        Path as given on the command line (relative paths stay relative,
        so reports are stable regardless of the checkout location).
    module:
        Best-effort dotted module name (``repro.sim.engine``), derived
        from the path: everything from the last ``repro``/``tests``
        path component on.  Rules use it for package scoping.
    tree:
        The parsed :mod:`ast` module.
    source:
        Raw file text.
    """

    def __init__(self, path: Path, source: str, tree: ast.Module):
        self.path = path
        self.source = source
        self.tree = tree
        self.module = _module_name(path)

    def in_package(self, *packages: str) -> bool:
        """True when this file's module lives under any of ``packages``."""
        return any(
            self.module == pkg or self.module.startswith(pkg + ".") for pkg in packages
        )


def _module_name(path: Path) -> str:
    parts = list(path.parts)
    parts[-1] = path.stem
    for anchor in ("repro", "tests"):
        if anchor in parts:
            parts = parts[parts.index(anchor):]
            break
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts)


class Rule:
    """Base class for one static-analysis rule.

    Subclasses set :attr:`code` and :attr:`summary` and implement
    :meth:`check` as a generator of findings.  Use :meth:`finding` to
    build findings so the path/code plumbing stays in one place.
    """

    code: str = ""
    summary: str = ""

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        raise NotImplementedError

    def finding(self, ctx: FileContext, node: ast.AST, message: str) -> Finding:
        return Finding(
            path=str(ctx.path),
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            code=self.code,
            message=message,
        )


_REGISTRY: dict[str, type[Rule]] = {}


def rule(cls: type[Rule]) -> type[Rule]:
    """Class decorator registering a :class:`Rule` by its code."""
    if not _CODE_RE.match(cls.code):
        raise ValueError(f"rule code must match RPRnnn, got {cls.code!r}")
    if cls.code == UNUSED_SUPPRESSION:
        raise ValueError(f"{UNUSED_SUPPRESSION} is reserved for unused suppressions")
    if cls.code in _REGISTRY:
        raise ValueError(f"duplicate rule code {cls.code}")
    _REGISTRY[cls.code] = cls
    return cls


def registered_rules() -> list[type[Rule]]:
    """All registered rule classes, ordered by code."""
    return [_REGISTRY[code] for code in sorted(_REGISTRY)]


def _suppressions(source: str) -> dict[int, set[str]]:
    """Map line number -> set of codes suppressed on that line.

    Comments are located with :mod:`tokenize` rather than a regex over
    raw lines, so the pattern inside a string literal (e.g. in this very
    module's tests) never registers as a suppression.
    """
    out: dict[int, set[str]] = {}
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for tok in tokens:
            if tok.type != tokenize.COMMENT:
                continue
            m = _NOQA_RE.search(tok.string)
            if m is None:
                continue
            codes = {c.strip() for c in m.group(1).split(",") if c.strip()}
            out.setdefault(tok.start[0], set()).update(codes)
    except tokenize.TokenizeError:  # pragma: no cover - parse already succeeded
        pass
    return out


def parse_failure(path: Path, exc: SyntaxError) -> Finding:
    """The RPR999 finding for a file the analyzer could not parse."""
    return Finding(
        path=str(path),
        line=exc.lineno or 1,
        col=(exc.offset or 1) - 1,
        code="RPR999",
        message=f"file does not parse: {exc.msg}",
    )


def collect_raw_findings(
    ctx: FileContext, rules: Sequence[type[Rule]] | None = None
) -> list[Finding]:
    """Run the leaf rule pack over one parsed file, pre-suppression."""
    raw: list[Finding] = []
    for rule_cls in rules if rules is not None else registered_rules():
        raw.extend(rule_cls().check(ctx))
    return raw


def suppressions_for(source: str) -> dict[int, list[str]]:
    """Public view of the per-line suppression map (sorted code lists)."""
    return {line: sorted(codes) for line, codes in _suppressions(source).items()}


def apply_suppressions(
    path: str,
    raw: Iterable[Finding],
    suppressions: Mapping[int, Iterable[str]],
) -> list[Finding]:
    """Drop suppressed findings; report stale suppressions (RPR000).

    One :data:`UNUSED_SUPPRESSION` finding is emitted *per line*, naming
    every unused code on it — a line carrying ``noqa[RPR001, RPR007]``
    with neither firing reports once, not twice, so the baseline and the
    human report stay deduplicated.
    """
    used: dict[int, set[str]] = {}
    kept: list[Finding] = []
    for f in raw:
        codes = set(suppressions.get(f.line, ()))
        if f.code in codes:
            used.setdefault(f.line, set()).add(f.code)
        else:
            kept.append(f)
    for line in sorted(suppressions):
        unused = sorted(set(suppressions[line]) - used.get(line, set()))
        if not unused:
            continue
        noun = ", ".join(unused)
        kept.append(
            Finding(
                path=path,
                line=line,
                col=0,
                code=UNUSED_SUPPRESSION,
                message=f"unused suppression: no {noun} finding on this line",
            )
        )
    return sorted(kept)


def analyze_file(path: Path, rules: Sequence[type[Rule]] | None = None) -> list[Finding]:
    """Run the rule pack over one file, honouring suppressions.

    Returns the surviving findings plus :data:`UNUSED_SUPPRESSION`
    findings for noqa codes that matched nothing (a stale suppression
    would silently swallow the next real violation on that line).
    """
    source = path.read_text()
    try:
        tree = ast.parse(source, filename=str(path))
    except SyntaxError as exc:
        return [parse_failure(path, exc)]
    ctx = FileContext(path, source, tree)
    raw = collect_raw_findings(ctx, rules)
    return apply_suppressions(str(path), raw, _suppressions(source))


def iter_python_files(paths: Iterable[str | Path]) -> Iterator[Path]:
    """Expand files/directories into a sorted stream of ``*.py`` paths."""
    for raw in paths:
        p = Path(raw)
        if p.is_dir():
            yield from sorted(q for q in p.rglob("*.py") if q.is_file())
        elif p.suffix == ".py":
            yield p
        else:
            raise FileNotFoundError(f"not a Python file or directory: {p}")


def analyze_paths(
    paths: Iterable[str | Path], rules: Sequence[type[Rule]] | None = None
) -> tuple[list[Finding], int]:
    """Analyze every ``*.py`` under ``paths``.

    Returns ``(findings, files_checked)``; findings are sorted by
    (path, line, column, code).
    """
    findings: list[Finding] = []
    n_files = 0
    for path in iter_python_files(paths):
        n_files += 1
        findings.extend(analyze_file(path, rules))
    return sorted(findings), n_files


def render_text(findings: Sequence[Finding], files_checked: int) -> str:
    """Human-readable report (one finding per line + a summary tail)."""
    lines = [f.render() for f in findings]
    noun = "file" if files_checked == 1 else "files"
    if findings:
        lines.append(f"{len(findings)} finding(s) in {files_checked} {noun}")
    else:
        lines.append(f"clean: 0 findings in {files_checked} {noun}")
    return "\n".join(lines)


def render_json(findings: Sequence[Finding], files_checked: int) -> str:
    """Machine-readable report: stable schema consumed by CI."""
    counts: dict[str, int] = {}
    for f in findings:
        counts[f.code] = counts.get(f.code, 0) + 1
    doc = {
        "version": 1,
        "files_checked": files_checked,
        "findings": [f.to_dict() for f in findings],
        "counts": dict(sorted(counts.items())),
        "rules": {
            cls.code: cls.summary for cls in registered_rules()
        },
    }
    return json.dumps(doc, indent=2, sort_keys=False)
