"""Project-wide call graph for the whole-program analyses.

The leaf rules in :mod:`repro.analysis.rules` see one file at a time, so
they can only flag a wall-clock read that is *lexically* inside a scoped
package.  The whole-program analyses (:mod:`repro.analysis.purity`,
:mod:`repro.analysis.seedflow`) instead ask reachability questions —
"can ``Simulation.run`` transitively reach ``time.time()``?" — and for
that they need a call graph over every module the pass indexes.

The graph is built in two phases so the expensive half caches per file:

* **extraction** (:func:`extract_module`) parses one file and produces a
  JSON-serializable :class:`ModuleSummary`: functions with their call
  sites, taint sinks, callable references and local type hints; classes
  with bases, methods and attribute types; the import alias table.
  Summaries are content-addressed by the incremental cache
  (:mod:`repro.analysis.cache`), so a warm run re-extracts only edited
  files.
* **linking** (:func:`link`) resolves every recorded call site against
  the global symbol tables into a :class:`CallGraph` of qualified-name
  edges.  Linking is pure dictionary work over summaries — cheap enough
  to re-run on every invocation.

Resolution strategy, in decreasing precision:

1. dotted chains rooted in an import alias (``mod.fn()``, aliased
   re-exports followed through package ``__init__`` chains);
2. ``self.method()`` / ``cls.method()`` through the class hierarchy
   (MRO walk), plus *virtual* edges to every subclass override — a call
   through ``DispatchPolicy.choose`` reaches each registered policy;
3. annotation- and constructor-driven typing of locals, parameters and
   ``self.attr`` instance attributes;
4. duck fallback: an untyped ``obj.method()`` resolves to every project
   method of that name, capped at :data:`DUCK_CAP` definitions (beyond
   the cap the dispatch is recorded as *unknown* and reported once per
   name — an over-approximation that wide would invent chains instead
   of finding them).

References to function objects (callbacks handed to
``Simulation.schedule``, ``observables()`` dict values, hook callables)
create *potential-call* edges from the referencing function, which is
what makes event-handler chains reachable from the hot roots without
simulating the scheduler.
"""

from __future__ import annotations

import ast
import fnmatch
from collections.abc import Iterable, Iterator, Mapping, Sequence
from dataclasses import dataclass, field

__all__ = [
    "ANALYSIS_VERSION",
    "DUCK_CAP",
    "SinkRecord",
    "CallRecord",
    "RefRecord",
    "SeedCallRecord",
    "FunctionSummary",
    "ClassSummary",
    "ModuleSummary",
    "CallGraph",
    "extract_module",
    "link",
    "shortest_chains",
    "render_chain",
]

#: Version of the extraction format; bumping invalidates cached summaries.
ANALYSIS_VERSION = 1

#: Maximum number of same-named project methods a duck-dispatched call
#: may fan out to; beyond this the call is recorded as unknown instead.
DUCK_CAP = 8

# --------------------------------------------------------------------------
# Sink tables (canonical external dotted names, post import-alias resolution)
# --------------------------------------------------------------------------

_WALL_CLOCK = {
    "time.time", "time.time_ns", "time.monotonic", "time.monotonic_ns",
    "time.perf_counter", "time.perf_counter_ns",
    "datetime.datetime.now", "datetime.datetime.utcnow",
    "datetime.datetime.today", "datetime.date.today",
    # Common spellings once `datetime`/`date` are imported directly.
    "datetime.now", "datetime.utcnow", "datetime.today", "date.today",
}

_NP_RANDOM_OK = {
    "default_rng", "Generator", "SeedSequence", "BitGenerator",
    "PCG64", "PCG64DXSM", "Philox", "SFC64", "MT19937",
}

_ENV_READS = {"os.getenv", "os.environ.get", "os.environ.items", "os.environ.keys"}

#: Names whose call records also capture the task-callable argument for
#: the picklability analysis (resolved properly at link time).
_TASK_RUNNERS = {"run_tasks", "run_supervised"}

#: Seed-derivation entry points traced by repro.analysis.seedflow.
_SEED_DERIVERS = {"derive_seed", "derive_seedseq", "derive_rng"}


# --------------------------------------------------------------------------
# Summary data model (everything round-trips through plain JSON dicts)
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class SinkRecord:
    """One impurity source inside a function body."""

    kind: str  # "wall-clock" | "global-rng" | "environ" | "set-iteration"
    line: int
    col: int
    detail: str  # e.g. "time.time()"

    def to_dict(self) -> dict[str, object]:
        return {"kind": self.kind, "line": self.line, "col": self.col,
                "detail": self.detail}

    @classmethod
    def from_dict(cls, d: Mapping[str, object]) -> "SinkRecord":
        return cls(str(d["kind"]), int(d["line"]), int(d["col"]), str(d["detail"]))


@dataclass(frozen=True)
class CallRecord:
    """One call site, unresolved (resolution happens at link time).

    ``kind`` is one of:

    * ``"name"`` — ``target`` is a bare identifier;
    * ``"dotted"`` — ``target`` is the full attribute chain (``a.b.c``);
    * ``"self"`` / ``"cls"`` — single-attribute call on the instance;
    * ``"recv"`` — single-attribute call on a named local (``recv``
      holds the receiver name for type lookup);
    * ``"duck"`` — anything else; only the terminal attribute survives.
    """

    kind: str
    target: str
    line: int
    col: int
    recv: str = ""
    fn_arg: str = ""  # task-callable descriptor for run_tasks-like calls

    def to_dict(self) -> dict[str, object]:
        d: dict[str, object] = {"kind": self.kind, "target": self.target,
                                "line": self.line, "col": self.col}
        if self.recv:
            d["recv"] = self.recv
        if self.fn_arg:
            d["fn_arg"] = self.fn_arg
        return d

    @classmethod
    def from_dict(cls, d: Mapping[str, object]) -> "CallRecord":
        return cls(str(d["kind"]), str(d["target"]), int(d["line"]), int(d["col"]),
                   str(d.get("recv", "")), str(d.get("fn_arg", "")))


@dataclass(frozen=True)
class RefRecord:
    """A function-object reference (callback, hook, observables value)."""

    kind: str  # "name" | "self" | "dotted"
    target: str
    line: int

    def to_dict(self) -> dict[str, object]:
        return {"kind": self.kind, "target": self.target, "line": self.line}

    @classmethod
    def from_dict(cls, d: Mapping[str, object]) -> "RefRecord":
        return cls(str(d["kind"]), str(d["target"]), int(d["line"]))


@dataclass(frozen=True)
class SeedCallRecord:
    """One ``derive_seed``/``derive_seedseq``/``derive_rng`` call site."""

    fn: str  # which deriver
    args: str  # normalized argument signature (ast.dump based)
    line: int
    col: int
    target_var: str = ""  # simple assignment target, if any
    discarded: bool = False  # statement-expression: result dropped
    in_arith: bool = False  # the call itself sits inside a BinOp

    def to_dict(self) -> dict[str, object]:
        return {"fn": self.fn, "args": self.args, "line": self.line,
                "col": self.col, "target_var": self.target_var,
                "discarded": self.discarded, "in_arith": self.in_arith}

    @classmethod
    def from_dict(cls, d: Mapping[str, object]) -> "SeedCallRecord":
        return cls(str(d["fn"]), str(d["args"]), int(d["line"]), int(d["col"]),
                   str(d.get("target_var", "")), bool(d.get("discarded", False)),
                   bool(d.get("in_arith", False)))


@dataclass
class FunctionSummary:
    """Everything the whole-program passes need to know about one function."""

    qualname: str
    name: str
    line: int
    class_name: str = ""  # enclosing class simple name, "" for free functions
    is_nested: bool = False
    decorators: list[str] = field(default_factory=list)
    params: list[str] = field(default_factory=list)
    param_types: dict[str, str] = field(default_factory=dict)
    local_types: dict[str, str] = field(default_factory=dict)
    calls: list[CallRecord] = field(default_factory=list)
    refs: list[RefRecord] = field(default_factory=list)
    sinks: list[SinkRecord] = field(default_factory=list)
    seed_calls: list[SeedCallRecord] = field(default_factory=list)
    seed_arith_vars: list[str] = field(default_factory=list)  # with lines below
    seed_arith_lines: list[int] = field(default_factory=list)

    def to_dict(self) -> dict[str, object]:
        return {
            "qualname": self.qualname,
            "name": self.name,
            "line": self.line,
            "class_name": self.class_name,
            "is_nested": self.is_nested,
            "decorators": self.decorators,
            "params": self.params,
            "param_types": self.param_types,
            "local_types": self.local_types,
            "calls": [c.to_dict() for c in self.calls],
            "refs": [r.to_dict() for r in self.refs],
            "sinks": [s.to_dict() for s in self.sinks],
            "seed_calls": [s.to_dict() for s in self.seed_calls],
            "seed_arith_vars": self.seed_arith_vars,
            "seed_arith_lines": self.seed_arith_lines,
        }

    @classmethod
    def from_dict(cls, d: Mapping[str, object]) -> "FunctionSummary":
        return cls(
            qualname=str(d["qualname"]),
            name=str(d["name"]),
            line=int(d["line"]),
            class_name=str(d.get("class_name", "")),
            is_nested=bool(d.get("is_nested", False)),
            decorators=[str(x) for x in _as_list(d.get("decorators"))],
            params=[str(x) for x in _as_list(d.get("params"))],
            param_types={str(k): str(v) for k, v in _as_map(d.get("param_types")).items()},
            local_types={str(k): str(v) for k, v in _as_map(d.get("local_types")).items()},
            calls=[CallRecord.from_dict(_as_map(x)) for x in _as_list(d.get("calls"))],
            refs=[RefRecord.from_dict(_as_map(x)) for x in _as_list(d.get("refs"))],
            sinks=[SinkRecord.from_dict(_as_map(x)) for x in _as_list(d.get("sinks"))],
            seed_calls=[SeedCallRecord.from_dict(_as_map(x))
                        for x in _as_list(d.get("seed_calls"))],
            seed_arith_vars=[str(x) for x in _as_list(d.get("seed_arith_vars"))],
            seed_arith_lines=[int(str(x)) for x in _as_list(d.get("seed_arith_lines"))],
        )


@dataclass
class ClassSummary:
    """One class: bases (raw dotted strings), methods, attribute types."""

    qualname: str
    name: str
    line: int
    bases: list[str] = field(default_factory=list)
    methods: dict[str, str] = field(default_factory=dict)  # name -> qualname
    attr_types: dict[str, str] = field(default_factory=dict)  # self.x -> raw type

    def to_dict(self) -> dict[str, object]:
        return {
            "qualname": self.qualname,
            "name": self.name,
            "line": self.line,
            "bases": self.bases,
            "methods": self.methods,
            "attr_types": self.attr_types,
        }

    @classmethod
    def from_dict(cls, d: Mapping[str, object]) -> "ClassSummary":
        return cls(
            qualname=str(d["qualname"]),
            name=str(d["name"]),
            line=int(d["line"]),
            bases=[str(x) for x in _as_list(d.get("bases"))],
            methods={str(k): str(v) for k, v in _as_map(d.get("methods")).items()},
            attr_types={str(k): str(v) for k, v in _as_map(d.get("attr_types")).items()},
        )


@dataclass
class ModuleSummary:
    """The extraction result for one file."""

    module: str
    path: str
    imports: dict[str, str] = field(default_factory=dict)  # alias -> dotted target
    project_imports: list[str] = field(default_factory=list)  # for reverse deps
    functions: dict[str, FunctionSummary] = field(default_factory=dict)
    classes: dict[str, ClassSummary] = field(default_factory=dict)  # simple name ->

    def to_dict(self) -> dict[str, object]:
        return {
            "version": ANALYSIS_VERSION,
            "module": self.module,
            "path": self.path,
            "imports": self.imports,
            "project_imports": self.project_imports,
            "functions": {k: v.to_dict() for k, v in self.functions.items()},
            "classes": {k: v.to_dict() for k, v in self.classes.items()},
        }

    @classmethod
    def from_dict(cls, d: Mapping[str, object]) -> "ModuleSummary":
        return cls(
            module=str(d["module"]),
            path=str(d["path"]),
            imports={str(k): str(v) for k, v in _as_map(d.get("imports")).items()},
            project_imports=[str(x) for x in _as_list(d.get("project_imports"))],
            functions={
                str(k): FunctionSummary.from_dict(_as_map(v))
                for k, v in _as_map(d.get("functions")).items()
            },
            classes={
                str(k): ClassSummary.from_dict(_as_map(v))
                for k, v in _as_map(d.get("classes")).items()
            },
        )


def _as_list(value: object) -> list[object]:
    return list(value) if isinstance(value, (list, tuple)) else []


def _as_map(value: object) -> dict[str, object]:
    return dict(value) if isinstance(value, Mapping) else {}


# --------------------------------------------------------------------------
# Extraction
# --------------------------------------------------------------------------


def _dotted(node: ast.AST) -> str | None:
    """Full dotted path of a Name/Attribute chain, or None."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _annotation_str(node: ast.AST | None) -> str:
    """A usable dotted string for a type annotation, or ""."""
    if node is None:
        return ""
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        # String annotation: "Station | None" — take the first dotted word.
        text = node.value.strip()
        for sep in ("|", "[", ","):
            text = text.split(sep)[0].strip()
        return text if all(p.isidentifier() for p in text.split(".")) and text else ""
    if isinstance(node, ast.Subscript):  # Optional[X], list[X]: use the head
        base = _dotted(node.value) or ""
        if base in ("Optional",):
            return _annotation_str(node.slice)
        return ""
    if isinstance(node, ast.BinOp) and isinstance(node.op, ast.BitOr):
        left = _annotation_str(node.left)
        return left or _annotation_str(node.right)
    dotted = _dotted(node)
    if dotted in ("None",):
        return ""
    return dotted or ""


class _ModuleExtractor(ast.NodeVisitor):
    """Single-pass extractor producing a :class:`ModuleSummary`."""

    def __init__(self, module: str, path: str):
        self.out = ModuleSummary(module=module, path=path)
        self._class_stack: list[ClassSummary] = []
        self._func_stack: list[FunctionSummary] = []

    # -- imports ----------------------------------------------------------

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            bound = alias.asname or alias.name.split(".")[0]
            target = alias.name if alias.asname else alias.name.split(".")[0]
            self.out.imports[bound] = target
            if alias.name.startswith("repro"):
                self.out.project_imports.append(alias.name)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        base = node.module or ""
        if node.level:  # relative import: anchor inside this package
            pkg_parts = self.out.module.split(".")
            anchor = pkg_parts[: len(pkg_parts) - node.level]
            base = ".".join(anchor + ([base] if base else []))
        for alias in node.names:
            if alias.name == "*":
                continue
            bound = alias.asname or alias.name
            self.out.imports[bound] = f"{base}.{alias.name}" if base else alias.name
        if base.startswith("repro"):
            self.out.project_imports.append(base)

    # -- classes and functions -------------------------------------------

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        prefix = self._qual_prefix()
        summary = ClassSummary(
            qualname=f"{self.out.module}.{prefix}{node.name}",
            name=node.name,
            line=node.lineno,
            bases=[b for b in (_dotted(base) for base in node.bases) if b],
        )
        # Nested classes resolve like top-level ones (rare here).
        self.out.classes[node.name] = summary
        self._class_stack.append(summary)
        for child in node.body:
            self.visit(child)
        self._class_stack.pop()

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._handle_function(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._handle_function(node)

    def _qual_prefix(self) -> str:
        parts = [c.name for c in self._class_stack]
        parts += [f.name + ".<locals>" for f in self._func_stack[len(parts):]]
        # Order is approximate for exotic nesting; names stay unique enough.
        return ("".join(p + "." for p in parts)) if parts else ""

    def _handle_function(self, node: ast.FunctionDef | ast.AsyncFunctionDef) -> None:
        in_class = bool(self._class_stack) and not self._func_stack
        nested = bool(self._func_stack)
        if in_class:
            cls = self._class_stack[-1]
            qualname = f"{cls.qualname}.{node.name}"
        elif nested:
            qualname = f"{self._func_stack[-1].qualname}.<locals>.{node.name}"
        else:
            qualname = f"{self.out.module}.{node.name}"
        summary = FunctionSummary(
            qualname=qualname,
            name=node.name,
            line=node.lineno,
            class_name=self._class_stack[-1].name if in_class else "",
            is_nested=nested,
            decorators=[d for d in (_dotted(dec) for dec in node.decorator_list) if d],
        )
        args = node.args
        for a in list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs):
            summary.params.append(a.arg)
            ann = _annotation_str(a.annotation)
            if ann:
                summary.param_types[a.arg] = ann
        if in_class:
            self._class_stack[-1].methods[node.name] = qualname
        self.out.functions[qualname] = summary
        if nested:
            # Defining a nested function implies it may run: potential call.
            self._func_stack[-1].refs.append(
                RefRecord(kind="qual", target=qualname, line=node.lineno)
            )
        self._func_stack.append(summary)
        _BodyWalker(self, summary).walk(node)
        self._func_stack.pop()


class _BodyWalker:
    """Walks one function body (descending into lambdas, recursing into
    nested defs via the extractor so they become their own nodes)."""

    def __init__(self, extractor: _ModuleExtractor, fn: FunctionSummary):
        self.ex = extractor
        self.fn = fn
        self._binop_names: list[tuple[str, int]] = []

    def walk(self, node: ast.FunctionDef | ast.AsyncFunctionDef) -> None:
        for stmt in node.body:
            self._stmt(stmt)
        seed_vars = {sc.target_var for sc in self.fn.seed_calls if sc.target_var}
        for name, line in self._binop_names:
            if name in seed_vars:
                self.fn.seed_arith_vars.append(name)
                self.fn.seed_arith_lines.append(line)

    # -- statement dispatch ----------------------------------------------

    def _stmt(self, node: ast.stmt) -> None:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            self.ex._handle_function(node)
            return
        if isinstance(node, ast.ClassDef):
            self.ex.visit_ClassDef(node)
            return
        if isinstance(node, (ast.Import, ast.ImportFrom)):
            # Function-local imports (deferred to break cycles) bind names
            # the function then calls; fold them into the module alias
            # table so those calls resolve like top-level imports.
            self.ex.visit(node)
            return
        if isinstance(node, ast.Assign):
            self._record_assignment(node.targets, node.value)
        elif isinstance(node, ast.AnnAssign):
            ann = _annotation_str(node.annotation)
            if ann and isinstance(node.target, ast.Name):
                self.fn.local_types[node.target.id] = ann
            if isinstance(node.target, ast.Attribute) and ann:
                self._record_self_attr_type(node.target, ann)
            if node.value is not None:
                self._record_assignment([node.target], node.value)
        elif isinstance(node, ast.Expr) and isinstance(node.value, ast.Call):
            deriver = self._seed_deriver_name(node.value)
            if deriver:
                self._record_seed_call(node.value, deriver, target_var="",
                                       discarded=True)
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.expr):
                self._expr(child)
            elif isinstance(child, ast.stmt):
                self._stmt(child)
            elif isinstance(child, (ast.excepthandler, ast.withitem,
                                    ast.match_case)):
                for sub in ast.iter_child_nodes(child):
                    if isinstance(sub, ast.expr):
                        self._expr(sub)
                    elif isinstance(sub, ast.stmt):
                        self._stmt(sub)
        self._check_set_iteration(node)

    # -- assignments (type tracking + seed flow) -------------------------

    def _record_assignment(self, targets: Sequence[ast.expr], value: ast.expr) -> None:
        target_var = ""
        if len(targets) == 1 and isinstance(targets[0], ast.Name):
            target_var = targets[0].id
        if isinstance(value, ast.Call):
            ctor = _dotted(value.func)
            if target_var and ctor:
                # `x = Station(...)` types x as Station (resolved at link).
                self.fn.local_types.setdefault(target_var, ctor)
            deriver = self._seed_deriver_name(value)
            if deriver:
                self._record_seed_call(value, deriver, target_var=target_var)
        for t in targets:
            if isinstance(t, ast.Attribute):
                ann = ""
                if isinstance(value, ast.Name):
                    ann = self.fn.param_types.get(value.id, "")
                elif isinstance(value, ast.Call):
                    ann = _dotted(value.func) or ""
                if ann:
                    self._record_self_attr_type(t, ann)

    def _record_self_attr_type(self, target: ast.Attribute, ann: str) -> None:
        if (
            isinstance(target.value, ast.Name)
            and target.value.id == "self"
            and self.fn.class_name
        ):
            cls = self.ex.out.classes.get(self.fn.class_name)
            if cls is not None:
                cls.attr_types.setdefault(target.attr, ann)

    # -- expressions ------------------------------------------------------

    def _expr(self, node: ast.expr) -> None:
        if isinstance(node, ast.Lambda):
            self._expr(node.body)
            return
        if isinstance(node, ast.Call):
            self._call(node)
        if isinstance(node, ast.BinOp):
            self._check_seed_arith(node)
        if isinstance(node, ast.Dict):
            for value in node.values:
                if value is not None:
                    self._ref(value)
        if isinstance(node, (ast.List, ast.Tuple)):
            for elt in node.elts:
                self._ref(elt)
        self._check_set_iteration(node)
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.expr):
                self._expr(child)
            elif isinstance(child, ast.keyword):
                self._expr(child.value)
            elif isinstance(child, ast.comprehension):
                self._expr(child.iter)
                for if_ in child.ifs:
                    self._expr(if_)

    def _check_seed_arith(self, node: ast.BinOp) -> None:
        """Track seed misuse material: operand names and in-BinOp derivations."""
        for side in (node.left, node.right):
            if isinstance(side, ast.Name):
                self._binop_names.append((side.id, node.lineno))
            elif isinstance(side, ast.Call):
                deriver = self._seed_deriver_name(side)
                if deriver:
                    self._record_seed_call(side, deriver, in_arith=True)

    # -- calls ------------------------------------------------------------

    def _canonical(self, dotted: str) -> str:
        """Resolve the chain's root through the import alias table."""
        head, _, rest = dotted.partition(".")
        target = self.ex.out.imports.get(head)
        if target is None:
            return dotted
        return f"{target}.{rest}" if rest else target

    def _seed_deriver_name(self, node: ast.Call) -> str:
        dotted = _dotted(node.func)
        if dotted is None:
            return ""
        leaf = dotted.rsplit(".", 1)[-1]
        return leaf if leaf in _SEED_DERIVERS else ""

    def _record_seed_call(self, node: ast.Call, deriver: str, *,
                          target_var: str = "", discarded: bool = False,
                          in_arith: bool = False) -> None:
        args = ",".join(
            ast.dump(a, annotate_fields=False) for a in node.args
        )
        self.fn.seed_calls.append(SeedCallRecord(
            fn=deriver, args=args, line=node.lineno, col=node.col_offset,
            target_var=target_var, discarded=discarded, in_arith=in_arith,
        ))

    def _call(self, node: ast.Call) -> None:
        func = node.func
        dotted = _dotted(func)
        # Taint sinks (canonical names through import aliases).
        if dotted is not None:
            self._check_sink(node, dotted)
        # functools.partial(f, ...): potential call of f.
        if dotted is not None and dotted.rsplit(".", 1)[-1] == "partial" and node.args:
            self._ref(node.args[0])
        # Seed calls in expression position (BinOp handled by caller).
        # Callable arguments become potential-call references.
        for arg in list(node.args) + [kw.value for kw in node.keywords]:
            self._ref(arg)
        # The call record itself.  The leading-argument descriptor is
        # captured for every call (not just the runners) so the
        # picklability pass can chase callables through wrapper
        # parameters: `sweep(measure)` → `run_tasks(fn, ...)`.
        leaf = dotted.rsplit(".", 1)[-1] if dotted else ""
        fn_arg = self._fn_arg_descriptor(node, strict=leaf in _TASK_RUNNERS)
        if isinstance(func, ast.Name):
            self.fn.calls.append(CallRecord(
                kind="name", target=func.id, line=node.lineno,
                col=node.col_offset, fn_arg=fn_arg,
            ))
        elif isinstance(func, ast.Attribute):
            chain = _dotted(func)
            if chain is not None:
                root = chain.split(".")[0]
                n_attrs = chain.count(".")
                if root in ("self", "cls") and n_attrs == 1:
                    kind = "self" if root == "self" else "cls"
                    rec = CallRecord(kind=kind, target=func.attr,
                                     line=node.lineno, col=node.col_offset,
                                     fn_arg=fn_arg)
                elif n_attrs == 1:
                    rec = CallRecord(kind="recv", target=func.attr, recv=root,
                                     line=node.lineno, col=node.col_offset,
                                     fn_arg=fn_arg)
                else:
                    rec = CallRecord(kind="dotted", target=chain,
                                     line=node.lineno, col=node.col_offset,
                                     fn_arg=fn_arg)
                self.fn.calls.append(rec)
            else:
                # Chained/dynamic receiver expression: duck on the attr.
                self.fn.calls.append(CallRecord(
                    kind="duck", target=func.attr, line=node.lineno,
                    col=node.col_offset, fn_arg=fn_arg,
                ))

    def _fn_arg_descriptor(self, node: ast.Call, *, strict: bool) -> str:
        """Compact descriptor of a call's leading callable argument.

        ``strict`` (run_tasks/run_supervised sites) also honours the
        ``fn=`` keyword and records *any* argument shape; non-strict
        sites only record callable-looking args (lambda / partial /
        name) so wrapper calls stay chaseable without bloating the
        summaries.
        """
        arg: ast.expr | None = node.args[0] if node.args else None
        if strict:
            for kw in node.keywords:
                if kw.arg == "fn":
                    arg = kw.value
        if arg is None:
            return ""
        if not strict and not isinstance(arg, (ast.Lambda, ast.Call, ast.Name,
                                               ast.Attribute)):
            return ""
        return self._callable_descriptor(arg)

    def _callable_descriptor(self, arg: ast.expr) -> str:
        if isinstance(arg, ast.Lambda):
            return "lambda"
        if isinstance(arg, ast.Call):
            callee = _dotted(arg.func) or ""
            if callee.rsplit(".", 1)[-1] == "partial" and arg.args:
                inner = self._callable_descriptor(arg.args[0])
                return f"partial:{inner}" if inner else "partial:?"
            return f"call:{callee}"
        dotted = _dotted(arg)
        if dotted is not None:
            return f"name:{dotted}"
        return "?"

    # -- references -------------------------------------------------------

    def _ref(self, node: ast.expr) -> None:
        """Record ``node`` as a potential function-object reference."""
        if isinstance(node, ast.Lambda):
            return  # body is walked by the generic expression recursion
        if isinstance(node, ast.Name):
            self.fn.refs.append(RefRecord(kind="name", target=node.id,
                                          line=node.lineno))
            return
        chain = _dotted(node)
        if chain is None:
            return
        root, _, rest = chain.partition(".")
        if root == "self" and rest and "." not in rest:
            self.fn.refs.append(RefRecord(kind="self", target=rest,
                                          line=node.lineno))
        elif rest:
            self.fn.refs.append(RefRecord(kind="dotted", target=chain,
                                          line=node.lineno))

    # -- sinks -------------------------------------------------------------

    def _check_sink(self, node: ast.Call, dotted: str) -> None:
        canonical = self._canonical(dotted)
        leaf = canonical.rsplit(".", 1)[-1]
        if canonical in _WALL_CLOCK:
            self._sink("wall-clock", node, f"{canonical}()")
        elif canonical in _ENV_READS or canonical == "os.environ.__getitem__":
            self._sink("environ", node, f"{canonical}()")
        elif canonical.startswith("random.") and canonical.count(".") == 1:
            self._sink("global-rng", node, f"{canonical}()")
        elif canonical.startswith("numpy.random.") and leaf not in _NP_RANDOM_OK:
            self._sink("global-rng", node, f"{canonical}()")
        elif leaf == "default_rng" and not node.args and not node.keywords:
            self._sink("global-rng", node, "unseeded default_rng()")

    def _sink(self, kind: str, node: ast.AST, detail: str) -> None:
        self.fn.sinks.append(SinkRecord(
            kind=kind, line=getattr(node, "lineno", self.fn.line),
            col=getattr(node, "col_offset", 0), detail=detail,
        ))

    def _check_set_iteration(self, node: ast.AST) -> None:
        iters: list[ast.expr] = []
        if isinstance(node, ast.For):
            iters = [node.iter]
        elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp,
                               ast.GeneratorExp)):
            iters = [gen.iter for gen in node.generators]
        for it in iters:
            if isinstance(it, (ast.Set, ast.SetComp)) or (
                isinstance(it, ast.Call)
                and (_dotted(it.func) or "").rsplit(".", 1)[-1]
                in ("set", "frozenset")
            ):
                self._sink("set-iteration", it, "iteration over a set")

    # Environ subscript reads (os.environ[...]) are expressions, not calls.


def _find_environ_subscripts(tree: ast.AST, imports: Mapping[str, str]) -> list[SinkRecord]:
    out: list[SinkRecord] = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.Subscript):
            continue
        chain = _dotted(node.value)
        if chain is None:
            continue
        head, _, rest = chain.partition(".")
        resolved = imports.get(head, head)
        canonical = f"{resolved}.{rest}" if rest else resolved
        if canonical == "os.environ":
            out.append(SinkRecord(kind="environ", line=node.lineno,
                                  col=node.col_offset, detail="os.environ[...]"))
    return out


def extract_module(module: str, path: str, tree: ast.Module) -> ModuleSummary:
    """Extract the whole-program summary for one parsed file."""
    ex = _ModuleExtractor(module, path)
    ex.visit(tree)
    # Attach environ-subscript sinks to the enclosing function by line span.
    subs = _find_environ_subscripts(tree, ex.out.imports)
    if subs:
        spans: list[tuple[int, int, FunctionSummary]] = []
        for fn in ex.out.functions.values():
            spans.append((fn.line, _end_line(tree, fn), fn))
        for sink in subs:
            best: FunctionSummary | None = None
            best_start = -1
            for start, end, fn in spans:
                if start <= sink.line <= end and start > best_start:
                    best, best_start = fn, start
            if best is not None and sink not in best.sinks:
                best.sinks.append(sink)
    ex.out.project_imports = sorted(set(ex.out.project_imports))
    return ex.out


def _end_line(tree: ast.Module, fn: FunctionSummary) -> int:
    # end_lineno is always present on 3.8+; fall back to start line.
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)) and (
            node.lineno == fn.line and node.name == fn.name
        ):
            return node.end_lineno or node.lineno
    return fn.line


# --------------------------------------------------------------------------
# Linking
# --------------------------------------------------------------------------


@dataclass
class CallGraph:
    """Resolved whole-program call graph.

    Attributes
    ----------
    functions:
        qualname -> (module summary, function summary).
    edges:
        qualname -> sorted callee qualnames (direct + virtual + potential).
    unknown:
        method name -> first (caller qualname, line) that failed to
        resolve — reported once per name ("unknown — warn once").
    """

    functions: dict[str, tuple[ModuleSummary, FunctionSummary]] = field(
        default_factory=dict)
    classes: dict[str, ClassSummary] = field(default_factory=dict)
    edges: dict[str, list[str]] = field(default_factory=dict)
    unknown: dict[str, tuple[str, int]] = field(default_factory=dict)

    def callers_of(self, qualname: str) -> list[str]:
        return sorted(
            src for src, dsts in self.edges.items() if qualname in dsts
        )


class _Linker:
    def __init__(self, summaries: Sequence[ModuleSummary]):
        self.summaries = {s.module: s for s in summaries}
        self.graph = CallGraph()
        # Global tables.
        self.modules: set[str] = set(self.summaries)
        self.func_table: dict[str, tuple[ModuleSummary, FunctionSummary]] = {}
        self.class_table: dict[str, ClassSummary] = {}
        self.class_by_module: dict[str, dict[str, ClassSummary]] = {}
        self.methods_by_name: dict[str, list[str]] = {}
        self.subclasses: dict[str, list[str]] = {}
        for s in summaries:
            self.class_by_module[s.module] = dict(s.classes)
            for fn in s.functions.values():
                self.func_table[fn.qualname] = (s, fn)
            for cls in s.classes.values():
                self.class_table[cls.qualname] = cls
                for name, q in cls.methods.items():
                    self.methods_by_name.setdefault(name, []).append(q)
        for lst in self.methods_by_name.values():
            lst.sort()
        self._build_hierarchy()

    # -- symbol resolution -------------------------------------------------

    def _resolve_symbol(self, module: str, dotted: str,
                        _seen: frozenset[tuple[str, str]] = frozenset()) -> str | None:
        """Resolve ``dotted`` as seen from ``module`` to a project qualname.

        Returns a function qualname, class qualname, or module name; None
        when the symbol is external or unknown.
        """
        if (module, dotted) in _seen or module not in self.summaries:
            return None
        seen = _seen | {(module, dotted)}
        summary = self.summaries[module]
        head, _, rest = dotted.partition(".")
        target = summary.imports.get(head)
        if target is None:
            # A module-level symbol of this module?
            qual = f"{module}.{head}"
            if qual in self.func_table:
                return qual if not rest else None
            if head in summary.classes:
                cls = summary.classes[head]
                if not rest:
                    return cls.qualname
                return self._resolve_in_class(cls, rest)
            # An absolute module path used directly (rare without import).
            return self._resolve_module_path(dotted)
        # Imported: target is a dotted module or module.symbol string.
        if target in self.modules:
            return self._resolve_symbol(target, rest, seen) if rest else target
        # `from pkg import name` → target = "pkg.name".
        t_mod, _, t_sym = target.rpartition(".")
        if t_mod in self.modules and t_sym:
            inner = t_sym + ("." + rest if rest else "")
            return self._resolve_symbol(t_mod, inner, seen)
        # Submodule import spelled as a symbol: `from repro import sim`.
        if target in self.modules:
            return target
        full = target + ("." + rest if rest else "")
        return self._resolve_module_path(full)

    def _resolve_module_path(self, dotted: str) -> str | None:
        """Resolve ``repro.sim.engine.Simulation.run``-style absolute paths."""
        parts = dotted.split(".")
        for i in range(len(parts), 0, -1):
            mod = ".".join(parts[:i])
            if mod in self.modules:
                rest = parts[i:]
                if not rest:
                    return mod
                summary = self.summaries[mod]
                head = rest[0]
                qual = f"{mod}.{head}"
                if qual in self.func_table and len(rest) == 1:
                    return qual
                if head in summary.classes:
                    cls = summary.classes[head]
                    if len(rest) == 1:
                        return cls.qualname
                    return self._resolve_in_class(cls, ".".join(rest[1:]))
                return None
        return None

    def _resolve_in_class(self, cls: ClassSummary, rest: str) -> str | None:
        if "." in rest:
            return None
        return self._mro_lookup(cls.qualname, rest)

    # -- class hierarchy ---------------------------------------------------

    def _build_hierarchy(self) -> None:
        self.base_map: dict[str, list[str]] = {}
        for module, classes in self.class_by_module.items():
            for cls in classes.values():
                resolved: list[str] = []
                for raw in cls.bases:
                    base_qual = self._resolve_symbol(module, raw)
                    if base_qual is not None and base_qual in self.class_table:
                        resolved.append(base_qual)
                        self.subclasses.setdefault(base_qual, []).append(
                            cls.qualname)
                self.base_map[cls.qualname] = resolved
        for lst in self.subclasses.values():
            lst.sort()

    def _mro_lookup(self, class_qual: str, method: str,
                    _seen: frozenset[str] = frozenset()) -> str | None:
        if class_qual in _seen:
            return None
        cls = self.class_table.get(class_qual)
        if cls is None:
            return None
        if method in cls.methods:
            return cls.methods[method]
        for base in self.base_map.get(class_qual, []):
            found = self._mro_lookup(base, method, _seen | {class_qual})
            if found is not None:
                return found
        return None

    def _virtual_targets(self, class_qual: str, method: str) -> list[str]:
        """Static target plus every subclass override (virtual dispatch)."""
        out: list[str] = []
        static = self._mro_lookup(class_qual, method)
        if static is not None:
            out.append(static)
        stack = list(self.subclasses.get(class_qual, []))
        seen: set[str] = set()
        while stack:
            sub = stack.pop()
            if sub in seen:
                continue
            seen.add(sub)
            sub_cls = self.class_table.get(sub)
            if sub_cls is not None and method in sub_cls.methods:
                out.append(sub_cls.methods[method])
            stack.extend(self.subclasses.get(sub, []))
        return sorted(set(out))

    # -- type resolution ---------------------------------------------------

    def _resolve_type(self, module: str, raw: str) -> str | None:
        """Resolve a raw annotation / constructor string to a class qualname."""
        if not raw:
            return None
        qual = self._resolve_symbol(module, raw)
        if qual is not None and qual in self.class_table:
            return qual
        return None

    # -- linking one function ---------------------------------------------

    def link(self) -> CallGraph:
        g = self.graph
        g.functions = dict(self.func_table)
        g.classes = dict(self.class_table)
        for qualname in sorted(self.func_table):
            summary, fn = self.func_table[qualname]
            targets: set[str] = set()
            for call in fn.calls:
                targets.update(self._resolve_call(summary, fn, call))
            for ref in fn.refs:
                targets.update(self._resolve_ref(summary, fn, ref))
            targets.discard(qualname)
            g.edges[qualname] = sorted(targets)
        return g

    def _receiver_class(self, summary: ModuleSummary,
                        fn: FunctionSummary) -> str | None:
        if not fn.class_name:
            return None
        cls = summary.classes.get(fn.class_name)
        return cls.qualname if cls is not None else None

    def _duck(self, summary: ModuleSummary, fn: FunctionSummary,
              name: str, line: int) -> list[str]:
        if name.startswith("__") and name.endswith("__"):
            # Dunder dispatch (super().__init__, __repr__, ...): constructor
            # edges already cover instantiation; the rest is protocol noise.
            return []
        candidates = self.methods_by_name.get(name, [])
        if not candidates:
            # No project method carries this name at all — the receiver is
            # external (stdlib/numpy), so nothing reachable is missed.
            return []
        if len(candidates) <= DUCK_CAP:
            return candidates
        if name not in self.graph.unknown:
            self.graph.unknown[name] = (fn.qualname, line)
        return []

    def _resolve_call(self, summary: ModuleSummary, fn: FunctionSummary,
                      call: CallRecord) -> list[str]:
        if call.kind == "name":
            name = call.target
            if name in fn.params or name in fn.local_types:
                # A local callable: typed constructor or higher-order param.
                cls_qual = self._resolve_type(summary.module,
                                              fn.local_types.get(name, ""))
                if cls_qual is not None:
                    return self._ctor_edges(cls_qual)
                return []  # param call: covered by caller-side refs
            qual = self._resolve_symbol(summary.module, name)
            return self._symbol_edges(qual)
        if call.kind in ("self", "cls"):
            cls_qual = self._receiver_class(summary, fn)
            if cls_qual is None:
                return self._duck(summary, fn, call.target, call.line)
            found = self._virtual_targets(cls_qual, call.target)
            if found:
                return found
            return self._duck(summary, fn, call.target, call.line)
        if call.kind == "recv":
            recv_type = fn.local_types.get(call.recv) or fn.param_types.get(call.recv)
            if recv_type:
                cls_qual = self._resolve_type(summary.module, recv_type)
                if cls_qual is not None:
                    found = self._virtual_targets(cls_qual, call.target)
                    if found:
                        return found
            # Receiver may be an imported module: `pool.run_tasks(...)`.
            qual = self._resolve_symbol(summary.module,
                                        f"{call.recv}.{call.target}")
            if qual is not None:
                return self._symbol_edges(qual)
            imported = summary.imports.get(call.recv)
            if imported is not None and not imported.startswith("repro"):
                return []  # external receiver (argparse, threading, np, ...)
            return self._duck(summary, fn, call.target, call.line)
        if call.kind == "dotted":
            chain = call.target
            root = chain.split(".")[0]
            # `self.policy.choose()`: type self.policy via attr_types.
            if root == "self" and chain.count(".") == 2 and fn.class_name:
                cls = summary.classes.get(fn.class_name)
                attr = chain.split(".")[1]
                if cls is not None and attr in cls.attr_types:
                    cls_qual = self._resolve_type(summary.module,
                                                  cls.attr_types[attr])
                    if cls_qual is not None:
                        found = self._virtual_targets(
                            cls_qual, chain.rsplit(".", 1)[-1])
                        if found:
                            return found
            qual = self._resolve_symbol(summary.module, chain)
            if qual is not None:
                return self._symbol_edges(qual)
            imported = summary.imports.get(root)
            if imported is not None and not imported.startswith("repro"):
                return []  # chain rooted at an external import
            return self._duck(summary, fn, chain.rsplit(".", 1)[-1], call.line)
        # kind == "duck"
        return self._duck(summary, fn, call.target, call.line)

    def _symbol_edges(self, qual: str | None) -> list[str]:
        if qual is None:
            return []
        if qual in self.func_table:
            return [qual]
        if qual in self.class_table:
            return self._ctor_edges(qual)
        return []

    def _ctor_edges(self, class_qual: str) -> list[str]:
        init = self._mro_lookup(class_qual, "__init__")
        return [init] if init is not None else []

    def _resolve_ref(self, summary: ModuleSummary, fn: FunctionSummary,
                     ref: RefRecord) -> list[str]:
        if ref.kind == "qual":
            return [ref.target] if ref.target in self.func_table else []
        if ref.kind == "name":
            if ref.target in fn.params or ref.target in fn.local_types:
                return []
            qual = self._resolve_symbol(summary.module, ref.target)
            if qual is not None and qual in self.func_table:
                return [qual]
            return []
        if ref.kind == "self":
            cls_qual = self._receiver_class(summary, fn)
            if cls_qual is not None:
                found = self._mro_lookup(cls_qual, ref.target)
                if found is not None:
                    return [found]
            return []
        # dotted reference: only follow exact symbols (no duck for refs —
        # a stray attribute chain should not wire the graph together).
        qual = self._resolve_symbol(summary.module, ref.target)
        if qual is not None and qual in self.func_table:
            return [qual]
        return []


def link(summaries: Sequence[ModuleSummary]) -> CallGraph:
    """Link extracted module summaries into a resolved :class:`CallGraph`."""
    return _Linker(summaries).link()


# --------------------------------------------------------------------------
# Reachability
# --------------------------------------------------------------------------


def shortest_chains(graph: CallGraph, roots: Iterable[str]) -> dict[str, list[str]]:
    """BFS from ``roots``: qualname -> shortest call chain from a root.

    Roots may be exact qualnames or :mod:`fnmatch` patterns matched
    against every function in the graph.  The returned chain includes
    both endpoints (``[root, ..., target]``).
    """
    all_fns = sorted(graph.functions)
    seeds: list[str] = []
    for pattern in roots:
        if pattern in graph.functions:
            seeds.append(pattern)
        elif any(ch in pattern for ch in "*?["):
            seeds.extend(fn for fn in all_fns if fnmatch.fnmatchcase(fn, pattern))
    chains: dict[str, list[str]] = {}
    frontier: list[str] = []
    for seed in sorted(set(seeds)):
        chains[seed] = [seed]
        frontier.append(seed)
    while frontier:
        next_frontier: list[str] = []
        for src in frontier:
            base = chains[src]
            for dst in graph.edges.get(src, []):
                if dst not in chains:
                    chains[dst] = base + [dst]
                    next_frontier.append(dst)
        frontier = next_frontier
    return chains


def render_chain(chain: Sequence[str]) -> str:
    """``Simulation.run → _dispatch → handler`` — trimmed for humans."""
    return " → ".join(_short(q) for q in chain)


def _short(qualname: str) -> str:
    """Drop the module path, keep ``Class.method`` / function name."""
    parts = qualname.split(".")
    # Find the last segment starting with an uppercase letter (class name);
    # include it so methods read as Class.method.
    for i in range(len(parts) - 2, -1, -1):
        if parts[i][:1].isupper():
            return ".".join(parts[i:])
    return parts[-1]


def iter_project_summaries(
    summaries: Iterable[ModuleSummary],
) -> Iterator[ModuleSummary]:
    """Only summaries for project (``repro.*``) modules — the graph scope."""
    for s in summaries:
        if s.module == "repro" or s.module.startswith("repro."):
            yield s
