"""Incremental analysis driver with an on-disk cache.

Cold runs parse every file; warm runs re-analyze **only changed files
and their reverse dependencies** and replay everything else from
``.repro-analysis-cache.json``:

* per file, the cache stores the content hash, the *raw* (pre-
  suppression) leaf-rule findings, the suppression map, and the
  call-graph :class:`~repro.analysis.callgraph.ModuleSummary` — the
  expensive per-file work (one ``ast.parse`` + every rule + extraction)
  is skipped when the hash matches;
* the whole-program passes (purity RPR101, picklability RPR102,
  seed-flow RPR103) run over the summaries, so they never require
  re-parsing; their results are additionally cached against a digest of
  every project file's content hash, making a no-change warm run skip
  linking entirely;
* the cache is keyed by :func:`rule_pack_digest` — any rule-pack or
  extractor change (new rule, bumped ``RULE_PACK_VERSION`` /
  ``ANALYSIS_VERSION``) invalidates every entry at once, so results
  from an older pack are never replayed.

Suppressions are applied *here*, after leaf and whole-program findings
are merged per file, so a ``# repro: noqa[RPR101]`` on a sink line works
exactly like a leaf-rule suppression and stale-noqa reporting (RPR000)
sees both tiers.

The cache file is plain JSON, written atomically (temp file +
``os.replace``); deleting it is always safe and merely makes the next
run cold.
"""

from __future__ import annotations

import ast
import hashlib
import json
import os
from collections.abc import Iterable, Mapping, Sequence
from dataclasses import dataclass, field
from pathlib import Path

from repro.analysis.callgraph import (
    ANALYSIS_VERSION,
    ModuleSummary,
    extract_module,
    iter_project_summaries,
    link,
)
from repro.analysis.engine import (
    FileContext,
    Finding,
    Rule,
    _module_name,
    apply_suppressions,
    collect_raw_findings,
    iter_python_files,
    parse_failure,
    registered_rules,
    suppressions_for,
)
from repro.analysis.purity import (
    DEFAULT_HOT_ROOTS,
    check_picklability,
    check_purity,
)
from repro.analysis.rules import RULE_PACK_VERSION
from repro.analysis.seedflow import check_seedflow

__all__ = [
    "CACHE_VERSION",
    "DEFAULT_CACHE_NAME",
    "ProjectReport",
    "rule_pack_digest",
    "analyze_project",
]

#: Version of the cache file layout itself (not of the rules).
CACHE_VERSION = 1

#: Default cache location, relative to the invocation directory.
DEFAULT_CACHE_NAME = ".repro-analysis-cache.json"


def rule_pack_digest(rules: Sequence[type[Rule]] | None = None) -> str:
    """Digest identifying the exact analysis behaviour.

    Covers the leaf-rule codes and summaries, the declared
    ``RULE_PACK_VERSION``, the extractor's ``ANALYSIS_VERSION`` and the
    cache layout version: if any of them moves, every cached per-file
    result is stale by definition.
    """
    pack = rules if rules is not None else registered_rules()
    h = hashlib.sha256()
    h.update(f"cache={CACHE_VERSION};pack={RULE_PACK_VERSION};"
             f"graph={ANALYSIS_VERSION};".encode())
    for cls in sorted(pack, key=lambda c: c.code):
        h.update(f"{cls.code}:{cls.summary};".encode())
    return h.hexdigest()


@dataclass
class ProjectReport:
    """Everything one driver run produced, plus cache telemetry."""

    findings: list[Finding] = field(default_factory=list)
    files_checked: int = 0
    #: Files parsed and analyzed this run (cache misses + invalidated).
    files_parsed: int = 0
    #: Files replayed from the cache without re-parsing.
    files_cached: int = 0
    #: True when the whole-program result itself was replayed unchanged.
    whole_program_cached: bool = False
    #: Dynamic-dispatch names the linker could not resolve: name ->
    #: first (caller qualname, line); reported once per name.
    unknown_dispatch: dict[str, tuple[str, int]] = field(default_factory=dict)


# --------------------------------------------------------------------------
# Cache file I/O
# --------------------------------------------------------------------------


def _as_map(value: object) -> dict[str, object]:
    return dict(value) if isinstance(value, Mapping) else {}


def _as_list(value: object) -> list[object]:
    return list(value) if isinstance(value, (list, tuple)) else []


def _load_cache(cache_path: Path | None, pack: str) -> dict[str, object]:
    """Load the cache file; an unreadable/mismatched cache is just empty."""
    if cache_path is None or not cache_path.exists():
        return {}
    try:
        doc = json.loads(cache_path.read_text())
    except (OSError, ValueError):
        return {}
    if not isinstance(doc, dict):
        return {}
    if doc.get("cache_version") != CACHE_VERSION or doc.get("pack") != pack:
        return {}
    return dict(doc)


def _save_cache(
    cache_path: Path,
    pack: str,
    records: Mapping[str, Mapping[str, object]],
    wp: Mapping[str, object] | None,
) -> None:
    doc: dict[str, object] = {
        "cache_version": CACHE_VERSION,
        "pack": pack,
        "files": {k: dict(v) for k, v in sorted(records.items())},
    }
    if wp is not None:
        doc["wp"] = dict(wp)
    tmp = cache_path.with_name(cache_path.name + ".tmp")
    tmp.write_text(json.dumps(doc, sort_keys=True))
    os.replace(tmp, cache_path)


def _finding_from_dict(d: Mapping[str, object]) -> Finding:
    return Finding(
        path=str(d["path"]),
        line=int(d["line"]),  # type: ignore[call-overload]
        col=int(d["col"]),  # type: ignore[call-overload]
        code=str(d["code"]),
        message=str(d["message"]),
    )


# --------------------------------------------------------------------------
# The driver
# --------------------------------------------------------------------------


def _ancestors(module: str) -> list[str]:
    """``repro.sim.engine`` -> itself plus every package prefix."""
    parts = module.split(".")
    return [".".join(parts[: i + 1]) for i in range(len(parts))]


def _wp_state(
    pack: str,
    roots: Sequence[str],
    records: Mapping[str, Mapping[str, object]],
) -> str:
    """Digest of everything the whole-program result depends on."""
    h = hashlib.sha256()
    h.update(pack.encode())
    for root in sorted(roots):
        h.update(f";root={root}".encode())
    for key in sorted(records):
        rec = records[key]
        module = str(rec.get("module", ""))
        if module == "repro" or module.startswith("repro."):
            h.update(f";{key}={rec.get('digest', '')}".encode())
    return h.hexdigest()


def _analyze_one(
    key: str,
    source: str,
    rules: Sequence[type[Rule]],
    digest: str,
) -> dict[str, object]:
    """Full per-file analysis: leaf rules + suppressions + extraction."""
    path = Path(key)
    module = _module_name(path)
    try:
        tree = ast.parse(source, filename=key)
    except SyntaxError as exc:
        raw: list[Finding] = [parse_failure(path, exc)]
        suppressions: dict[int, list[str]] = {}
        summary = ModuleSummary(module=module, path=key)
    else:
        ctx = FileContext(path, source, tree)
        raw = collect_raw_findings(ctx, rules)
        suppressions = suppressions_for(source)
        summary = extract_module(module, key, tree)
    return {
        "digest": digest,
        "module": module,
        "project_imports": summary.project_imports,
        "raw": [f.to_dict() for f in raw],
        "suppressions": {str(k): v for k, v in suppressions.items()},
        "summary": summary.to_dict(),
    }


def analyze_project(
    paths: Iterable[str | Path],
    *,
    rules: Sequence[type[Rule]] | None = None,
    cache_path: Path | None = None,
    whole_program: bool = True,
    roots: Sequence[str] = DEFAULT_HOT_ROOTS,
) -> ProjectReport:
    """Analyze every ``*.py`` under ``paths``, incrementally when cached.

    With ``cache_path=None`` the run is always cold and nothing is
    written.  Otherwise the cache at that path is consulted and updated
    in place.  ``whole_program=False`` restricts the run to the leaf
    rules (the pre-PR behaviour), e.g. for analyzing a single file.
    """
    rule_pack = list(rules) if rules is not None else registered_rules()
    pack = rule_pack_digest(rule_pack)
    files = [Path(p) for p in iter_python_files(paths)]
    old = _load_cache(cache_path, pack)
    old_files = {
        k: _as_map(v) for k, v in _as_map(old.get("files")).items()
    }

    records: dict[str, dict[str, object]] = {}
    digests: dict[str, str] = {}
    sources: dict[str, str] = {}
    to_analyze: set[str] = set()
    for path in files:
        key = str(path)
        data = path.read_bytes()
        digests[key] = hashlib.sha256(data).hexdigest()
        cached = old_files.get(key)
        if cached is not None and cached.get("digest") == digests[key]:
            records[key] = dict(cached)
        else:
            to_analyze.add(key)
            sources[key] = data.decode("utf-8", errors="replace")

    # Reverse dependencies: a changed module's importers are re-analyzed
    # too (transitively).  Extraction is per-file, but this keeps cached
    # state honest against cross-file coupling and matches what a
    # reviewer expects "incremental" to mean.
    importers: dict[str, set[str]] = {}
    for key, rec in records.items():
        for mod in _as_list(rec.get("project_imports")):
            importers.setdefault(str(mod), set()).add(key)
    changed_modules: set[str] = set()
    queue: list[str] = []
    for key in to_analyze:
        cached = old_files.get(key)
        module = str(cached["module"]) if cached and "module" in cached \
            else _module_name(Path(key))
        for mod in _ancestors(module):
            if mod not in changed_modules:
                changed_modules.add(mod)
                queue.append(mod)
    while queue:
        mod = queue.pop()
        for key in sorted(importers.get(mod, ())):
            if key in to_analyze:
                continue
            to_analyze.add(key)
            records.pop(key, None)
            sources[key] = Path(key).read_text()
            dep_module = _module_name(Path(key))
            for anc in _ancestors(dep_module):
                if anc not in changed_modules:
                    changed_modules.add(anc)
                    queue.append(anc)

    for key in sorted(to_analyze):
        records[key] = _analyze_one(key, sources[key], rule_pack, digests[key])

    # ---- whole-program passes over the summaries -------------------------
    wp_raw: list[Finding] = []
    unknown: dict[str, tuple[str, int]] = {}
    wp_cached = False
    wp_entry: dict[str, object] | None = None
    if whole_program:
        state = _wp_state(pack, roots, records)
        old_wp = _as_map(old.get("wp"))
        if old_wp.get("state") == state:
            wp_raw = [
                _finding_from_dict(_as_map(d))
                for d in _as_list(old_wp.get("raw"))
            ]
            unknown = {
                str(k): (str(_as_list(v)[0]), int(str(_as_list(v)[1])))
                for k, v in _as_map(old_wp.get("unknown")).items()
                if len(_as_list(v)) == 2
            }
            wp_cached = True
        else:
            summaries = [
                ModuleSummary.from_dict(_as_map(records[k].get("summary")))
                for k in sorted(records)
            ]
            graph = link(list(iter_project_summaries(summaries)))
            wp_raw = check_purity(graph, roots)
            wp_raw.extend(check_picklability(graph))
            wp_raw.extend(check_seedflow(graph))
            unknown = dict(graph.unknown)
        wp_entry = {
            "state": state,
            "raw": [f.to_dict() for f in wp_raw],
            "unknown": {k: list(v) for k, v in sorted(unknown.items())},
        }

    # ---- merge tiers per file, then apply suppressions -------------------
    by_path: dict[str, list[Finding]] = {key: [] for key in records}
    for key, rec in records.items():
        by_path[key] = [
            _finding_from_dict(_as_map(d)) for d in _as_list(rec.get("raw"))
        ]
    for f in wp_raw:
        by_path.setdefault(f.path, []).append(f)

    findings: list[Finding] = []
    for key in sorted(by_path):
        rec = records.get(key)
        suppressions: dict[int, list[str]] = {}
        if rec is not None:
            suppressions = {
                int(line): [str(c) for c in _as_list(codes)]
                for line, codes in _as_map(rec.get("suppressions")).items()
            }
        findings.extend(apply_suppressions(key, by_path[key], suppressions))

    if cache_path is not None:
        _save_cache(cache_path, pack, records, wp_entry)

    return ProjectReport(
        findings=sorted(findings),
        files_checked=len(files),
        files_parsed=len(to_analyze),
        files_cached=len(files) - len(to_analyze),
        whole_program_cached=wp_cached,
        unknown_dispatch=unknown,
    )
