"""Runtime invariant checker: the dynamic half of ``repro.analysis``.

The static rules catch what is visible in source; this module checks the
properties only a running simulation can witness:

* **virtual-time monotonicity** — the clock never rewinds, and no event
  handler moves it (the runtime analogue of rule RPR008);
* **request conservation** — per station, at every event boundary,
  ``arrivals == completions + rejected + dropped + shed + in_system +
  cancelled_waiting`` (a lost completion or double-counted refusal is a
  bookkeeping bug that skews every throughput and goodput figure);
* **non-negative occupancy** — busy servers, queue length and the
  busy/queue time-integrals can never go negative.

Checks are **opt-in** and zero-cost when off: :class:`~repro.sim.engine.
Simulation` consults :func:`checker_for_new_simulation` once at
construction (``REPRO_CHECK=1`` in the environment, which the CLI's
``--check-invariants`` flag sets), and every hook site guards on the
resulting attribute being ``None`` — the disabled hot paths are
byte-for-byte the pre-existing ones.  The checker never draws
randomness and never schedules events, so results are bit-identical
with checks on or off; violations raise :class:`InvariantViolation`
rather than accumulate, because a run that broke conservation has
nothing trustworthy left to report.

Checkpoints: simulation end (every ``run()`` return — conservation
holds at any event boundary, not only at drain) and, when telemetry is
installed, every window flush of the
:class:`~repro.obs.windows.WindowedCollector`.
"""

from __future__ import annotations

import os

__all__ = [
    "ENV_FLAG",
    "InvariantViolation",
    "InvariantChecker",
    "checks_enabled",
    "checker_for_new_simulation",
]

#: Environment variable enabling runtime invariant checks ("1"/"true"…).
ENV_FLAG = "REPRO_CHECK"


class InvariantViolation(AssertionError):
    """A runtime invariant of the simulation substrate was broken.

    Derives from :class:`AssertionError`: a violation is a defect in the
    simulator or a component, never a recoverable runtime condition.
    """


def checks_enabled() -> bool:
    """True when ``REPRO_CHECK`` requests runtime invariant checking."""
    return os.environ.get(ENV_FLAG, "").strip().lower() not in ("", "0", "false", "no")


def checker_for_new_simulation() -> InvariantChecker | None:
    """The checker a new :class:`~repro.sim.engine.Simulation` should carry.

    ``None`` when checking is off — the value of the one-per-run
    environment read every hook site then guards on.
    """
    return InvariantChecker() if checks_enabled() else None


class InvariantChecker:
    """Per-simulation invariant state and checkpoints.

    One instance per :class:`~repro.sim.engine.Simulation`; stations
    register themselves at construction (mirroring telemetry
    registration), and the engine / windowed collector call
    :meth:`check_event_time`, :meth:`check_handler_left_clock` and
    :meth:`check_stations` at their checkpoints.

    Attributes
    ----------
    checks:
        Number of station checkpoints performed (test observability).
    """

    __slots__ = ("_stations", "checks")

    def __init__(self) -> None:
        self._stations: list = []
        self.checks = 0

    def register_station(self, station) -> None:
        """Track ``station`` for conservation/occupancy checkpoints."""
        self._stations.append(station)

    # -- engine hooks ----------------------------------------------------
    def check_event_time(self, event_time: float, now: float) -> None:
        """The next event must not lie in the clock's past."""
        if event_time < now:
            raise InvariantViolation(
                f"virtual time would rewind: event at t={event_time} behind "
                f"clock t={now} (calendar corruption or a handler moved the "
                "clock)"
            )

    def check_handler_left_clock(self, expected_now: float, now: float) -> None:
        """An event handler must not move ``Simulation.now`` itself."""
        if now != expected_now:  # repro: noqa[RPR012] -- exact identity IS the invariant: a handler may not move the clock at all, not even by one ulp
            raise InvariantViolation(
                f"an event handler moved the clock from t={expected_now} to "
                f"t={now}: virtual time may only advance through the event "
                "calendar (rule RPR008)"
            )

    # -- station checkpoints ---------------------------------------------
    def check_stations(self, where: str = "run end") -> None:
        """Conservation + occupancy for every registered station."""
        self.checks += 1
        for station in self._stations:
            self._check_station(station, where)

    def _check_station(self, st, where: str) -> None:
        busy = st.busy
        queued = st.queue_length
        if busy < 0 or queued < 0:
            raise InvariantViolation(
                f"[{where}] station {st.name!r} occupancy went negative: "
                f"busy={busy}, queue={queued}"
            )
        if st.busy_time() < 0 or st.queue_time() < 0:
            raise InvariantViolation(
                f"[{where}] station {st.name!r} has a negative time-integral: "
                f"busy_time={st.busy_time()}, queue_time={st.queue_time()}"
            )
        accounted = (
            st.completions + st.rejected + st.drops + st.shed
            + busy + queued + st.cancelled_waiting
        )
        if st.arrivals != accounted:
            raise InvariantViolation(
                f"[{where}] station {st.name!r} violates request "
                f"conservation: arrivals={st.arrivals} but completions="
                f"{st.completions} + rejected={st.rejected} + dropped="
                f"{st.drops} + shed={st.shed} + in_system={busy + queued} + "
                f"cancelled_waiting={st.cancelled_waiting} = {accounted}"
            )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"InvariantChecker(stations={len(self._stations)}, checks={self.checks})"
