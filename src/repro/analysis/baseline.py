"""Checked-in findings baseline: the CI gate fails only on *new* findings.

A whole-program analysis over-approximates: some findings are real but
deliberate (an environment-variable kill switch read once in a
constructor), and blocking every PR on them would train people to
sprinkle suppressions.  The baseline records each accepted finding with
a **justification**; CI compares the current run against it and fails
only when a finding appears that is not in the baseline.

Findings are matched by :func:`fingerprint` — a hash of
``path | code | message`` with **no line numbers**, so reflowing a file
does not churn the baseline (whole-program messages are written to be
line-free for exactly this reason; the one exception, RPR103's
"repeats line N" cross-reference, is accepted churn).

Lifecycle:

* a finding disappears from the run → its entry is *stale*; the runner
  reports it so the baseline can be pruned (``--update-baseline``);
* ``--update-baseline`` rewrites the file from the current findings,
  **preserving the justifications** of entries that survive and
  stamping ``TODO: justify`` on new ones — an unjustified entry is
  visible in review, which is the point.
"""

from __future__ import annotations

import hashlib
import json
from collections.abc import Iterable, Sequence
from dataclasses import dataclass, field
from pathlib import Path

from repro.analysis.engine import Finding

__all__ = [
    "BASELINE_VERSION",
    "DEFAULT_BASELINE_NAME",
    "fingerprint",
    "BaselineEntry",
    "BaselineDiff",
    "Baseline",
    "update_baseline",
]

BASELINE_VERSION = 1

#: Conventional location at the repository root.
DEFAULT_BASELINE_NAME = "analysis-baseline.json"

#: Justification stamped on entries added by ``--update-baseline``.
TODO_JUSTIFICATION = "TODO: justify"


def fingerprint(f: Finding) -> str:
    """Stable identity of a finding: hash of path, code and message."""
    digest = hashlib.sha256(f"{f.path}|{f.code}|{f.message}".encode())
    return digest.hexdigest()[:16]


@dataclass(frozen=True)
class BaselineEntry:
    """One accepted finding with its reviewer-facing justification."""

    fingerprint: str
    path: str
    code: str
    message: str
    justification: str = ""

    def to_dict(self) -> dict[str, str]:
        return {
            "fingerprint": self.fingerprint,
            "path": self.path,
            "code": self.code,
            "message": self.message,
            "justification": self.justification,
        }


@dataclass
class BaselineDiff:
    """Result of comparing a run against the baseline."""

    #: Findings not in the baseline — these fail the gate.
    new: list[Finding] = field(default_factory=list)
    #: Findings matched by a baseline entry — reported, not fatal.
    baselined: list[Finding] = field(default_factory=list)
    #: Baseline entries no finding matched — the baseline needs pruning.
    stale: list[BaselineEntry] = field(default_factory=list)


@dataclass
class Baseline:
    """The checked-in set of accepted findings."""

    entries: dict[str, BaselineEntry] = field(default_factory=dict)

    @classmethod
    def load(cls, path: Path) -> "Baseline":
        """Load a baseline file; a missing file is an empty baseline."""
        if not path.exists():
            return cls()
        doc = json.loads(path.read_text())
        entries: dict[str, BaselineEntry] = {}
        for raw in doc.get("findings", []):
            entry = BaselineEntry(
                fingerprint=str(raw["fingerprint"]),
                path=str(raw.get("path", "")),
                code=str(raw.get("code", "")),
                message=str(raw.get("message", "")),
                justification=str(raw.get("justification", "")),
            )
            entries[entry.fingerprint] = entry
        return cls(entries=entries)

    def save(self, path: Path) -> None:
        doc = {
            "version": BASELINE_VERSION,
            "findings": [
                self.entries[k].to_dict() for k in sorted(self.entries)
            ],
        }
        path.write_text(json.dumps(doc, indent=2) + "\n")

    def compare(self, findings: Iterable[Finding]) -> BaselineDiff:
        """Split ``findings`` into new/baselined; list stale entries."""
        diff = BaselineDiff()
        matched: set[str] = set()
        for f in findings:
            fp = fingerprint(f)
            if fp in self.entries:
                matched.add(fp)
                diff.baselined.append(f)
            else:
                diff.new.append(f)
        diff.stale = [
            self.entries[k] for k in sorted(self.entries) if k not in matched
        ]
        return diff


def update_baseline(old: Baseline, findings: Sequence[Finding]) -> Baseline:
    """Rebuild the baseline from the current findings.

    Entries whose fingerprint survives keep their justification; brand
    new entries get :data:`TODO_JUSTIFICATION` so review sees them.
    Stale entries are dropped.
    """
    entries: dict[str, BaselineEntry] = {}
    for f in findings:
        fp = fingerprint(f)
        kept = old.entries.get(fp)
        entries[fp] = BaselineEntry(
            fingerprint=fp,
            path=f.path,
            code=f.code,
            message=f.message,
            justification=kept.justification if kept is not None
            else TODO_JUSTIFICATION,
        )
    return Baseline(entries=entries)
