"""Random-variable objects with explicit first and second moments.

The inversion analysis in the paper depends on two moments of the
inter-arrival and service-time distributions: the mean and the squared
coefficient of variation (CoV², written :math:`c^2`).  Every distribution
here exposes both analytically and supports reproducible sampling through
a caller-supplied :class:`numpy.random.Generator` (no hidden global RNG —
a hard requirement for reproducible simulation sweeps).

:func:`fit_two_moments` performs the standard two-moment fit used in
queueing network analysis: Deterministic for :math:`c^2 = 0`, Erlang for
:math:`0 < c^2 < 1`, Exponential for :math:`c^2 = 1`, and balanced-means
two-phase hyperexponential for :math:`c^2 > 1`.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from collections.abc import Sequence

import numpy as np

__all__ = [
    "Distribution",
    "Deterministic",
    "Exponential",
    "Erlang",
    "HyperExponential",
    "LogNormal",
    "Pareto",
    "Uniform",
    "Empirical",
    "fit_two_moments",
]


class Distribution(ABC):
    """A non-negative random variable with known first two moments."""

    @property
    @abstractmethod
    def mean(self) -> float:
        """Expected value :math:`E[X]`."""

    @property
    @abstractmethod
    def variance(self) -> float:
        """Variance :math:`\\operatorname{Var}[X]`."""

    @property
    def cv2(self) -> float:
        """Squared coefficient of variation :math:`c^2 = Var[X]/E[X]^2`."""
        if self.mean == 0:
            return 0.0
        return self.variance / self.mean**2

    @property
    def std(self) -> float:
        """Standard deviation :math:`\\sqrt{\\operatorname{Var}[X]}`."""
        return math.sqrt(self.variance)

    @abstractmethod
    def sample(
        self, rng: np.random.Generator, size: int | None = None
    ) -> float | np.ndarray:
        """Draw samples.

        Parameters
        ----------
        rng:
            NumPy random generator; all randomness flows through it.
        size:
            Number of samples; ``None`` returns a scalar float.
        """

    def scaled(self, factor: float) -> "Distribution":
        """Return this distribution scaled by a positive constant.

        Scaling preserves :math:`c^2` and multiplies the mean by
        ``factor``; the default implementation refits via two moments.
        """
        if factor <= 0:
            raise ValueError(f"scale factor must be > 0, got {factor}")
        return fit_two_moments(self.mean * factor, self.cv2)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(mean={self.mean:.6g}, cv2={self.cv2:.6g})"


class Deterministic(Distribution):
    """Point mass at ``value`` (:math:`c^2 = 0`)."""

    def __init__(self, value: float) -> None:
        if value < 0:
            raise ValueError(f"value must be >= 0, got {value}")
        self.value = float(value)

    @property
    def mean(self) -> float:
        return self.value

    @property
    def variance(self) -> float:
        return 0.0

    def sample(
        self, rng: np.random.Generator, size: int | None = None
    ) -> float | np.ndarray:
        if size is None:
            return self.value
        return np.full(size, self.value)

    def scaled(self, factor: float) -> "Deterministic":
        return Deterministic(self.value * factor)


class Exponential(Distribution):
    """Exponential distribution with the given ``mean`` (:math:`c^2 = 1`)."""

    def __init__(self, mean: float) -> None:
        if mean <= 0:
            raise ValueError(f"mean must be > 0, got {mean}")
        self._mean = float(mean)

    @classmethod
    def from_rate(cls, rate: float) -> "Exponential":
        """Construct from rate :math:`\\lambda` (mean :math:`1/\\lambda`)."""
        if rate <= 0:
            raise ValueError(f"rate must be > 0, got {rate}")
        return cls(1.0 / rate)

    @property
    def rate(self) -> float:
        """Rate parameter :math:`\\lambda = 1/E[X]`."""
        return 1.0 / self._mean

    @property
    def mean(self) -> float:
        return self._mean

    @property
    def variance(self) -> float:
        return self._mean**2

    def sample(
        self, rng: np.random.Generator, size: int | None = None
    ) -> float | np.ndarray:
        return rng.exponential(self._mean, size)

    def scaled(self, factor: float) -> "Exponential":
        return Exponential(self._mean * factor)


class Erlang(Distribution):
    """Erlang-:math:`k` distribution (sum of ``k`` exponential phases).

    Has :math:`c^2 = 1/k`, interpolating between exponential (``k=1``)
    and deterministic (``k → ∞``).  A good model for pipelined,
    low-variability compute such as DNN inference.
    """

    def __init__(self, shape: int, mean: float) -> None:
        if shape < 1:
            raise ValueError(f"shape must be >= 1, got {shape}")
        if mean <= 0:
            raise ValueError(f"mean must be > 0, got {mean}")
        self.shape = int(shape)
        self._mean = float(mean)

    @property
    def mean(self) -> float:
        return self._mean

    @property
    def variance(self) -> float:
        return self._mean**2 / self.shape

    def sample(
        self, rng: np.random.Generator, size: int | None = None
    ) -> float | np.ndarray:
        scale = self._mean / self.shape
        return rng.gamma(self.shape, scale, size)

    def scaled(self, factor: float) -> "Erlang":
        return Erlang(self.shape, self._mean * factor)


class HyperExponential(Distribution):
    """Mixture of exponentials: phase ``i`` with prob ``probs[i]``, mean ``means[i]``.

    The workhorse high-variability distribution (:math:`c^2 > 1`), used to
    model bursty arrivals and heavy-ish tailed service.
    """

    def __init__(self, probs: Sequence[float], means: Sequence[float]) -> None:
        p = np.asarray(probs, dtype=float)
        m = np.asarray(means, dtype=float)
        if p.ndim != 1 or p.shape != m.shape or p.size == 0:
            raise ValueError("probs and means must be equal-length 1-D sequences")
        if np.any(p < 0) or not math.isclose(p.sum(), 1.0, rel_tol=1e-9):
            raise ValueError(f"probs must be non-negative and sum to 1, got {p}")
        if np.any(m <= 0):
            raise ValueError(f"means must be > 0, got {m}")
        self.probs = p
        self.means = m

    @classmethod
    def balanced(cls, mean: float, cv2: float) -> "HyperExponential":
        """Two-phase balanced-means H2 fit for a target mean and :math:`c^2 > 1`.

        Uses the standard construction with
        :math:`p = \\tfrac12(1 + \\sqrt{(c^2-1)/(c^2+1)})` and phase means
        :math:`m/(2p)` and :math:`m/(2(1-p))`.
        """
        if cv2 <= 1.0:
            raise ValueError(f"H2 requires cv2 > 1, got {cv2}")
        if mean <= 0:
            raise ValueError(f"mean must be > 0, got {mean}")
        p = 0.5 * (1.0 + math.sqrt((cv2 - 1.0) / (cv2 + 1.0)))
        return cls([p, 1.0 - p], [mean / (2.0 * p), mean / (2.0 * (1.0 - p))])

    @property
    def mean(self) -> float:
        return float(np.dot(self.probs, self.means))

    @property
    def variance(self) -> float:
        second_moment = float(np.dot(self.probs, 2.0 * self.means**2))
        return second_moment - self.mean**2

    def sample(
        self, rng: np.random.Generator, size: int | None = None
    ) -> float | np.ndarray:
        n = 1 if size is None else int(size)
        phases = rng.choice(self.means.size, size=n, p=self.probs)
        out = rng.exponential(self.means[phases])
        if size is None:
            return float(out[0])
        return out

    def scaled(self, factor: float) -> "HyperExponential":
        return HyperExponential(self.probs, self.means * factor)


class LogNormal(Distribution):
    """Log-normal distribution parameterized by its mean and :math:`c^2`.

    Matches the coarse execution-time distributions in the Azure
    serverless dataset, which are well described by log-normals.
    """

    def __init__(self, mean: float, cv2: float) -> None:
        if mean <= 0:
            raise ValueError(f"mean must be > 0, got {mean}")
        if cv2 <= 0:
            raise ValueError(f"cv2 must be > 0, got {cv2}")
        self._mean = float(mean)
        self._cv2 = float(cv2)
        self.sigma2 = math.log(1.0 + cv2)
        self.mu = math.log(mean) - self.sigma2 / 2.0

    @property
    def mean(self) -> float:
        return self._mean

    @property
    def variance(self) -> float:
        return self._cv2 * self._mean**2

    def sample(
        self, rng: np.random.Generator, size: int | None = None
    ) -> float | np.ndarray:
        return rng.lognormal(self.mu, math.sqrt(self.sigma2), size)

    def scaled(self, factor: float) -> "LogNormal":
        return LogNormal(self._mean * factor, self._cv2)


class Pareto(Distribution):
    """Shifted Pareto (Lomax) distribution with tail index ``alpha`` > 2.

    Heavy-tailed service model; ``alpha`` must exceed 2 so the first two
    moments exist (required by the two-moment analysis).
    """

    def __init__(self, alpha: float, mean: float) -> None:
        if alpha <= 2.0:
            raise ValueError(f"alpha must be > 2 for finite variance, got {alpha}")
        if mean <= 0:
            raise ValueError(f"mean must be > 0, got {mean}")
        self.alpha = float(alpha)
        self._mean = float(mean)
        # Lomax: mean = scale / (alpha - 1)
        self.scale = mean * (alpha - 1.0)

    @property
    def mean(self) -> float:
        return self._mean

    @property
    def variance(self) -> float:
        a, s = self.alpha, self.scale
        return s**2 * a / ((a - 1.0) ** 2 * (a - 2.0))

    def sample(
        self, rng: np.random.Generator, size: int | None = None
    ) -> float | np.ndarray:
        # Lomax = Pareto II with location 0: scale * (U^{-1/alpha} - 1)
        u = rng.random(size)
        return self.scale * (u ** (-1.0 / self.alpha) - 1.0)

    def scaled(self, factor: float) -> "Pareto":
        return Pareto(self.alpha, self._mean * factor)


class Uniform(Distribution):
    """Uniform distribution on ``[low, high]``."""

    def __init__(self, low: float, high: float) -> None:
        if not 0 <= low < high:
            raise ValueError(f"need 0 <= low < high, got [{low}, {high}]")
        self.low = float(low)
        self.high = float(high)

    @property
    def mean(self) -> float:
        return (self.low + self.high) / 2.0

    @property
    def variance(self) -> float:
        return (self.high - self.low) ** 2 / 12.0

    def sample(
        self, rng: np.random.Generator, size: int | None = None
    ) -> float | np.ndarray:
        return rng.uniform(self.low, self.high, size)


class Empirical(Distribution):
    """Resampling distribution over observed values (e.g. trace samples)."""

    def __init__(self, values: Sequence[float]) -> None:
        v = np.asarray(values, dtype=float)
        if v.ndim != 1 or v.size == 0:
            raise ValueError("values must be a non-empty 1-D sequence")
        if np.any(v < 0):
            raise ValueError("values must be non-negative")
        self.values = v

    @property
    def mean(self) -> float:
        return float(self.values.mean())

    @property
    def variance(self) -> float:
        return float(self.values.var())

    def sample(
        self, rng: np.random.Generator, size: int | None = None
    ) -> float | np.ndarray:
        n = 1 if size is None else int(size)
        out = rng.choice(self.values, size=n, replace=True)
        if size is None:
            return float(out[0])
        return out


def fit_two_moments(mean: float, cv2: float) -> Distribution:
    """Fit a distribution to a target mean and squared CoV.

    Standard two-moment fit used in queueing-network tooling:

    * ``cv2 == 0`` → :class:`Deterministic`
    * ``0 < cv2 < 1`` → :class:`Erlang` with ``shape = round(1/cv2)``
    * ``cv2 == 1`` → :class:`Exponential`
    * ``cv2 > 1`` → balanced-means :class:`HyperExponential`

    The Erlang fit matches :math:`c^2` exactly only when :math:`1/c^2`
    is an integer; otherwise the closest integer shape is used (the usual
    engineering compromise).
    """
    if mean <= 0:
        raise ValueError(f"mean must be > 0, got {mean}")
    if cv2 < 0:
        raise ValueError(f"cv2 must be >= 0, got {cv2}")
    # Below ~1e-6 an Erlang fit would need millions of phases; a point mass
    # is indistinguishable at that point and avoids integer overflow.
    if cv2 < 1e-6:
        return Deterministic(mean)
    if math.isclose(cv2, 1.0, rel_tol=1e-9):
        return Exponential(mean)
    if cv2 < 1.0:
        shape = max(1, round(1.0 / cv2))
        return Erlang(shape, mean)
    return HyperExponential.balanced(mean, cv2)
