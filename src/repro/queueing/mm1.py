"""Exact steady-state results for the M/M/1 queue.

Each edge site in the paper's balanced model is an M/M/1 system seeing
:math:`\\lambda/k` req/s (Section 3.1.1).  All classical results are
closed form; response time is exponential with rate :math:`\\mu - \\lambda`.
"""

from __future__ import annotations

import math

import numpy as np

from repro.queueing.base import ensure_stable

__all__ = ["MM1"]


class MM1:
    """M/M/1 FCFS queue with arrival rate ``arrival_rate`` and service rate ``service_rate``.

    Parameters
    ----------
    arrival_rate:
        Poisson arrival rate :math:`\\lambda` (req/s).
    service_rate:
        Exponential service rate :math:`\\mu` (req/s).

    Raises
    ------
    StabilityError
        If :math:`\\lambda \\ge \\mu`.
    """

    servers = 1

    def __init__(self, arrival_rate: float, service_rate: float) -> None:
        self._rho = ensure_stable(arrival_rate, service_rate, 1)
        self.arrival_rate = float(arrival_rate)
        self.service_rate = float(service_rate)

    @property
    def utilization(self) -> float:
        """:math:`\\rho = \\lambda/\\mu`."""
        return self._rho

    def prob_wait(self) -> float:
        """Probability an arrival must wait, :math:`P(W_q > 0) = \\rho` (PASTA)."""
        return self._rho

    def mean_wait(self) -> float:
        """:math:`E[W_q] = \\rho / (\\mu - \\lambda)`."""
        return self._rho / (self.service_rate - self.arrival_rate)

    def mean_conditional_wait(self) -> float:
        """:math:`E[W_q \\mid W_q > 0] = 1/(\\mu - \\lambda)`."""
        return 1.0 / (self.service_rate - self.arrival_rate)

    def mean_response(self) -> float:
        """:math:`E[T] = 1/(\\mu - \\lambda)`."""
        return 1.0 / (self.service_rate - self.arrival_rate)

    def mean_queue_length(self) -> float:
        """:math:`E[L_q] = \\rho^2/(1-\\rho)`."""
        return self._rho**2 / (1.0 - self._rho)

    def mean_number_in_system(self) -> float:
        """:math:`E[L] = \\rho/(1-\\rho)`."""
        return self._rho / (1.0 - self._rho)

    def response_time_cdf(self, t: float | np.ndarray) -> np.ndarray:
        """CDF of the response time: :math:`1 - e^{-(\\mu-\\lambda)t}` for t ≥ 0."""
        t = np.asarray(t, dtype=float)
        out = 1.0 - np.exp(-(self.service_rate - self.arrival_rate) * np.maximum(t, 0.0))
        return np.where(t < 0, 0.0, out)

    def response_time_percentile(self, q: float) -> float:
        """Quantile of the response time for ``q`` in (0, 1)."""
        if not 0.0 < q < 1.0:
            raise ValueError(f"q must be in (0, 1), got {q}")
        return -math.log(1.0 - q) / (self.service_rate - self.arrival_rate)

    def waiting_time_cdf(self, t: float | np.ndarray) -> np.ndarray:
        """CDF of the queueing delay: :math:`1 - \\rho e^{-(\\mu-\\lambda)t}` for t ≥ 0.

        Has an atom of size :math:`1 - \\rho` at zero.
        """
        t = np.asarray(t, dtype=float)
        out = 1.0 - self._rho * np.exp(
            -(self.service_rate - self.arrival_rate) * np.maximum(t, 0.0)
        )
        return np.where(t < 0, 0.0, out)

    def waiting_time_percentile(self, q: float) -> float:
        """Quantile of the queueing delay for ``q`` in (0, 1).

        Returns 0 for any quantile inside the atom at zero
        (:math:`q \\le 1 - \\rho`).
        """
        if not 0.0 < q < 1.0:
            raise ValueError(f"q must be in (0, 1), got {q}")
        if q <= 1.0 - self._rho:
            return 0.0
        return -math.log((1.0 - q) / self._rho) / (self.service_rate - self.arrival_rate)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"MM1(arrival_rate={self.arrival_rate}, "
            f"service_rate={self.service_rate}, rho={self._rho:.4f})"
        )
