"""Exact M/M/c/K: the finite-capacity (loss) queue.

The bounded stations used for overload experiments
(:class:`repro.sim.station.Station` with ``queue_capacity``) are
M/M/c/K systems under Poisson/exponential traffic.  This module gives
their exact steady state — blocking probability, throughput, and the
mean wait of *accepted* requests — so the simulator's loss behaviour
can be validated against theory and overload scenarios can be sized
analytically.

``K`` counts every request in the system (in service + waiting), so
``K = c`` is the pure-loss Erlang-B system and ``K → ∞`` recovers
M/M/c.
"""

from __future__ import annotations

import math

import numpy as np

__all__ = ["MMcK"]


class MMcK:
    """M/M/c/K queue (c servers, at most K in system).

    Parameters
    ----------
    arrival_rate:
        Offered Poisson rate :math:`\\lambda` (req/s) — may exceed
        capacity; the queue is always stable thanks to blocking.
    service_rate:
        Per-server exponential rate :math:`\\mu` (req/s).
    servers:
        Number of servers ``c``.
    capacity:
        System capacity ``K`` ≥ ``c``.
    """

    def __init__(self, arrival_rate: float, service_rate: float, servers: int, capacity: int) -> None:
        if arrival_rate < 0 or service_rate <= 0:
            raise ValueError("need arrival_rate >= 0 and service_rate > 0")
        if servers < 1:
            raise ValueError(f"servers must be >= 1, got {servers}")
        if capacity < servers:
            raise ValueError(f"capacity ({capacity}) must be >= servers ({servers})")
        self.arrival_rate = float(arrival_rate)
        self.service_rate = float(service_rate)
        self.servers = int(servers)
        self.capacity = int(capacity)
        self._probs = self._steady_state()

    def _steady_state(self) -> np.ndarray:
        """State probabilities p_0..p_K via the birth–death balance."""
        c, K = self.servers, self.capacity
        a = self.arrival_rate / self.service_rate
        # Unnormalized terms, built multiplicatively for stability.
        terms = np.empty(K + 1)
        terms[0] = 1.0
        for n in range(1, K + 1):
            rate_ratio = a / min(n, c)
            terms[n] = terms[n - 1] * rate_ratio
        return terms / terms.sum()

    def state_probabilities(self) -> np.ndarray:
        """:math:`P(N = n)` for n = 0..K."""
        return self._probs.copy()

    def blocking_probability(self) -> float:
        """:math:`P(N = K)` — the fraction of arrivals dropped (PASTA)."""
        return float(self._probs[-1])

    def throughput(self) -> float:
        """Accepted-request rate :math:`\\lambda (1 - P_K)` (req/s)."""
        return self.arrival_rate * (1.0 - self.blocking_probability())

    def mean_number_in_system(self) -> float:
        """:math:`E[N]`."""
        return float(np.dot(np.arange(self.capacity + 1), self._probs))

    def mean_queue_length(self) -> float:
        """:math:`E[\\max(N - c, 0)]`."""
        n = np.arange(self.capacity + 1)
        return float(np.dot(np.maximum(n - self.servers, 0), self._probs))

    def mean_response(self) -> float:
        """Mean time in system of an *accepted* request (Little's law)."""
        thr = self.throughput()
        if thr == 0.0:
            return 0.0
        return self.mean_number_in_system() / thr

    def mean_wait(self) -> float:
        """Mean queueing delay of an accepted request."""
        thr = self.throughput()
        if thr == 0.0:
            return 0.0
        return self.mean_queue_length() / thr

    def utilization(self) -> float:
        """Fraction of server capacity busy: throughput / (c μ)."""
        return self.throughput() / (self.servers * self.service_rate)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"MMcK(lambda={self.arrival_rate}, mu={self.service_rate}, "
            f"c={self.servers}, K={self.capacity}, "
            f"P_block={self.blocking_probability():.4f})"
        )
