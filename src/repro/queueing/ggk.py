"""Approximate waiting times for G/G/1 and G/G/k queues.

The paper's generalized bounds (Lemma 3.2) rest on the Allen–Cunneen
approximation with the Bolch et al. closed form for the probability of
waiting (its Equations 14–16).  This module implements:

* :func:`kingman_wait` — Kingman's classic G/G/1 heavy-traffic formula
  (an upper bound for GI/G/1).
* :func:`bolch_prob_wait` — Bolch's two-branch approximation of
  :math:`P_s`, the steady-state probability that an arrival waits.
* :func:`allen_cunneen_wait` — Allen–Cunneen expected wait for G/G/k.
* :class:`GG1` / :class:`GGk` — model objects conforming to
  :class:`repro.queueing.base.QueueModel`.

All functions take the squared coefficients of variation of the
inter-arrival times (``ca2``) and service times (``cs2``); with
``ca2 = cs2 = 1`` they collapse to the M/M/k family, which the test
suite verifies against the exact results of :mod:`repro.queueing.mmk`.
"""

from __future__ import annotations

from repro.queueing.base import ensure_stable
from repro.queueing.mmk import erlang_c

__all__ = ["kingman_wait", "bolch_prob_wait", "allen_cunneen_wait", "GG1", "GGk"]


def kingman_wait(arrival_rate: float, service_rate: float, ca2: float, cs2: float) -> float:
    """Kingman's G/G/1 mean-wait approximation, in seconds.

    .. math::
       E[W_q] \\approx \\frac{\\rho}{1-\\rho}\\,\\frac{c_A^2 + c_B^2}{2}\\,\\frac{1}{\\mu}

    Exact for M/M/1; an asymptotic upper bound in heavy traffic otherwise.
    """
    rho = ensure_stable(arrival_rate, service_rate, 1)
    _validate_cv2(ca2, cs2)
    return (rho / (1.0 - rho)) * ((ca2 + cs2) / 2.0) / service_rate


def bolch_prob_wait(servers: int, rho: float) -> float:
    """Bolch et al. approximation of :math:`P_s`, the probability of waiting.

    The paper's Equation 16:

    .. math::
       P_s \\approx \\begin{cases}
          \\dfrac{\\rho^k + \\rho}{2} & \\rho > 0.7\\\\[4pt]
          \\rho^{(k+1)/2}            & \\rho \\le 0.7
       \\end{cases}

    (the paper prints the exponent as :math:`(s+1)/2` where ``s`` is the
    server count, denoted ``k`` here).
    """
    if servers < 1:
        raise ValueError(f"servers must be >= 1, got {servers}")
    if not 0.0 <= rho < 1.0:
        raise ValueError(f"rho must be in [0, 1), got {rho}")
    if rho > 0.7:
        return (rho**servers + rho) / 2.0
    return rho ** ((servers + 1) / 2.0)


def allen_cunneen_wait(
    arrival_rate: float,
    service_rate: float,
    servers: int,
    ca2: float,
    cs2: float,
    *,
    prob_wait: str = "bolch",
) -> float:
    """Allen–Cunneen expected wait for a G/G/k queue, in seconds.

    The paper's Equation 15:

    .. math::
       E[W_q] \\approx \\frac{P_s}{\\mu(1-\\rho)}\\,\\frac{c_A^2+c_B^2}{2k}

    Parameters
    ----------
    prob_wait:
        ``"bolch"`` uses the paper's closed form (Equation 16);
        ``"erlang"`` uses the exact Erlang-C probability, which makes the
        approximation exact for M/M/k (``ca2 = cs2 = 1``).
    """
    rho = ensure_stable(arrival_rate, service_rate, servers)
    _validate_cv2(ca2, cs2)
    if prob_wait == "bolch":
        ps = bolch_prob_wait(servers, rho)
    elif prob_wait == "erlang":
        ps = erlang_c(servers, arrival_rate / service_rate)
    else:
        raise ValueError(f"prob_wait must be 'bolch' or 'erlang', got {prob_wait!r}")
    return ps / (service_rate * servers * (1.0 - rho)) * ((ca2 + cs2) / 2.0)


def _validate_cv2(ca2: float, cs2: float) -> None:
    if ca2 < 0 or cs2 < 0:
        raise ValueError(f"squared CoVs must be >= 0, got ca2={ca2}, cs2={cs2}")


class GG1:
    """G/G/1 queue with Kingman's mean-wait approximation."""

    servers = 1

    def __init__(self, arrival_rate: float, service_rate: float, ca2: float, cs2: float) -> None:
        self._rho = ensure_stable(arrival_rate, service_rate, 1)
        _validate_cv2(ca2, cs2)
        self.arrival_rate = float(arrival_rate)
        self.service_rate = float(service_rate)
        self.ca2 = float(ca2)
        self.cs2 = float(cs2)

    @property
    def utilization(self) -> float:
        return self._rho

    def mean_wait(self) -> float:
        """Kingman's approximation of :math:`E[W_q]`."""
        return kingman_wait(self.arrival_rate, self.service_rate, self.ca2, self.cs2)

    def mean_response(self) -> float:
        return self.mean_wait() + 1.0 / self.service_rate

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"GG1(arrival_rate={self.arrival_rate}, service_rate={self.service_rate}, "
            f"ca2={self.ca2}, cs2={self.cs2})"
        )


class GGk:
    """G/G/k queue with the Allen–Cunneen mean-wait approximation."""

    def __init__(
        self,
        arrival_rate: float,
        service_rate: float,
        servers: int,
        ca2: float,
        cs2: float,
        *,
        prob_wait: str = "bolch",
    ) -> None:
        self._rho = ensure_stable(arrival_rate, service_rate, servers)
        _validate_cv2(ca2, cs2)
        self.arrival_rate = float(arrival_rate)
        self.service_rate = float(service_rate)
        self.servers = int(servers)
        self.ca2 = float(ca2)
        self.cs2 = float(cs2)
        self.prob_wait_method = prob_wait

    @property
    def utilization(self) -> float:
        return self._rho

    def prob_wait(self) -> float:
        """Probability of waiting under the configured approximation."""
        if self.prob_wait_method == "bolch":
            return bolch_prob_wait(self.servers, self._rho)
        return erlang_c(self.servers, self.arrival_rate / self.service_rate)

    def mean_wait(self) -> float:
        """Allen–Cunneen approximation of :math:`E[W_q]`."""
        return allen_cunneen_wait(
            self.arrival_rate,
            self.service_rate,
            self.servers,
            self.ca2,
            self.cs2,
            prob_wait=self.prob_wait_method,
        )

    def mean_response(self) -> float:
        return self.mean_wait() + 1.0 / self.service_rate

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"GGk(arrival_rate={self.arrival_rate}, service_rate={self.service_rate}, "
            f"servers={self.servers}, ca2={self.ca2}, cs2={self.cs2})"
        )
