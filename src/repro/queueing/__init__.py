"""Queueing-theory substrate: exact and approximate queueing models.

This subpackage provides the analytical machinery used throughout the
reproduction of *The Hidden Cost of the Edge* (SC 2021):

* :mod:`repro.queueing.distributions` — random-variable objects with
  first/second moments (mean, squared coefficient of variation) and
  reproducible sampling, plus two-moment fitting.
* :mod:`repro.queueing.mm1` — exact M/M/1 results.
* :mod:`repro.queueing.mmk` — exact M/M/k results (Erlang B/C, waiting and
  response-time distributions) and Whitt's conditional-wait approximation
  used in the paper's Lemma 3.1.
* :mod:`repro.queueing.ggk` — G/G/1 and G/G/k approximations: Kingman's
  bound and the Allen–Cunneen approximation with the Bolch et al.
  :math:`P_s` form used in the paper's Lemma 3.2.

All models use SI units: rates in requests/second, times in seconds.
"""

from repro.queueing.base import (
    QueueModel,
    ensure_stable,
    utilization,
)
from repro.queueing.distributions import (
    Deterministic,
    Distribution,
    Empirical,
    Erlang,
    Exponential,
    HyperExponential,
    LogNormal,
    Pareto,
    Uniform,
    fit_two_moments,
)
from repro.queueing.ggk import (
    GG1,
    GGk,
    allen_cunneen_wait,
    bolch_prob_wait,
    kingman_wait,
)
from repro.queueing.mg1 import MG1, mdk_wait
from repro.queueing.mm1 import MM1
from repro.queueing.mmck import MMcK
from repro.queueing.mmk import (
    MMk,
    erlang_b,
    erlang_c,
    whitt_conditional_wait,
)
from repro.queueing.tails import (
    gg_response_percentile,
    gg_wait_percentile,
    gg_wait_tail,
)

__all__ = [
    "QueueModel",
    "ensure_stable",
    "utilization",
    "Distribution",
    "Deterministic",
    "Empirical",
    "Erlang",
    "Exponential",
    "HyperExponential",
    "LogNormal",
    "Pareto",
    "Uniform",
    "fit_two_moments",
    "MM1",
    "MG1",
    "mdk_wait",
    "MMk",
    "MMcK",
    "erlang_b",
    "erlang_c",
    "whitt_conditional_wait",
    "GG1",
    "GGk",
    "allen_cunneen_wait",
    "bolch_prob_wait",
    "kingman_wait",
    "gg_wait_tail",
    "gg_wait_percentile",
    "gg_response_percentile",
]
