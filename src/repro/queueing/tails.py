"""Heavy-traffic tail approximations for GI/G/1 and GI/G/k waits.

The exact waiting-time distributions used by :mod:`repro.core.tail` are
M/M-only.  For general arrival/service processes the standard tool is
the heavy-traffic (Kingman) exponential approximation:

.. math::
   P(W_q > t) \\approx P(W_q > 0)\\,e^{-t / E[W_q \\mid W_q > 0]}

with the mean wait from Allen–Cunneen and the probability of delay from
Erlang-C (or Bolch's closed form).  The approximation is asymptotically
exact as ρ → 1 and is the workhorse behind tail-SLO sizing rules in
practice; the tests bound its error against simulation in the regimes
the paper's experiments occupy.
"""

from __future__ import annotations

import math

import numpy as np

from repro.queueing.base import ensure_stable
from repro.queueing.ggk import allen_cunneen_wait, bolch_prob_wait
from repro.queueing.mmk import erlang_c

__all__ = ["gg_wait_tail", "gg_wait_percentile", "gg_response_percentile"]


def _delay_parameters(
    arrival_rate: float,
    service_rate: float,
    servers: int,
    ca2: float,
    cs2: float,
    prob_wait: str,
) -> tuple[float, float]:
    """Return ``(P(Wq > 0), E[Wq | Wq > 0])`` under the approximation."""
    rho = ensure_stable(arrival_rate, service_rate, servers)
    if prob_wait == "erlang":
        ps = erlang_c(servers, arrival_rate / service_rate)
    elif prob_wait == "bolch":
        ps = bolch_prob_wait(servers, rho)
    else:
        raise ValueError(f"prob_wait must be 'erlang' or 'bolch', got {prob_wait!r}")
    mean_wait = allen_cunneen_wait(
        arrival_rate, service_rate, servers, ca2, cs2, prob_wait="erlang"
    )
    if ps <= 0.0:
        return 0.0, 0.0
    return ps, mean_wait / ps


def gg_wait_tail(
    t: float | np.ndarray,
    arrival_rate: float,
    service_rate: float,
    servers: int,
    ca2: float = 1.0,
    cs2: float = 1.0,
    *,
    prob_wait: str = "erlang",
) -> np.ndarray:
    """Approximate :math:`P(W_q > t)` for a GI/G/k queue.

    Exact for M/M/k (``ca2 = cs2 = 1`` with ``prob_wait='erlang'``);
    heavy-traffic approximation otherwise.
    """
    t = np.asarray(t, dtype=float)
    ps, cond = _delay_parameters(
        arrival_rate, service_rate, servers, ca2, cs2, prob_wait
    )
    if ps == 0.0:
        return np.where(t >= 0, 0.0, 1.0)
    out = ps * np.exp(-np.maximum(t, 0.0) / cond)
    return np.where(t < 0, 1.0, out)


def gg_wait_percentile(
    q: float,
    arrival_rate: float,
    service_rate: float,
    servers: int,
    ca2: float = 1.0,
    cs2: float = 1.0,
    *,
    prob_wait: str = "erlang",
) -> float:
    """Approximate q-quantile of the GI/G/k waiting time, in seconds.

    Returns 0 inside the atom at zero (``q ≤ 1 − P(Wq>0)``).
    """
    if not 0.0 < q < 1.0:
        raise ValueError(f"q must be in (0, 1), got {q}")
    ps, cond = _delay_parameters(
        arrival_rate, service_rate, servers, ca2, cs2, prob_wait
    )
    if ps == 0.0 or q <= 1.0 - ps:
        return 0.0
    return -cond * math.log((1.0 - q) / ps)


def gg_response_percentile(
    q: float,
    arrival_rate: float,
    service_rate: float,
    servers: int,
    ca2: float = 1.0,
    cs2: float = 1.0,
    *,
    prob_wait: str = "erlang",
    service_quantile: float | None = None,
) -> float:
    """Approximate q-quantile of the response time ``T = Wq + S``.

    Uses the common engineering decomposition
    ``t_q(T) ≈ t_q(Wq) + E[S]`` (wait quantile plus mean service) unless
    ``service_quantile`` supplies the service distribution's own
    q-quantile, in which case the sharper ``max``-style combination
    ``t_q(Wq) + E[S]`` vs ``service_quantile`` floor is applied.
    """
    wait_q = gg_wait_percentile(
        q, arrival_rate, service_rate, servers, ca2, cs2, prob_wait=prob_wait
    )
    base = wait_q + 1.0 / service_rate
    if service_quantile is not None:
        if service_quantile < 0:
            raise ValueError(f"service_quantile must be >= 0, got {service_quantile}")
        return max(base, service_quantile)
    return base
