"""Exact steady-state results for the M/M/k queue, plus Whitt's approximation.

The paper's cloud deployment is a single FCFS queue feeding :math:`k`
servers (Figure 1b), i.e. an M/M/k system under Poisson arrivals.  This
module provides Erlang B/C, exact mean waits, the full waiting- and
response-time distributions, and the conditional-wait approximation from
Whitt (1992) that the paper's Lemma 3.1 builds on (its Equation 6).
"""

from __future__ import annotations

import math

import numpy as np
from scipy.optimize import brentq

from repro.queueing.base import ensure_stable

__all__ = ["erlang_b", "erlang_c", "whitt_conditional_wait", "MMk"]


def erlang_b(servers: int, offered_load: float) -> float:
    """Erlang B blocking probability for ``servers`` lines and ``offered_load`` Erlangs.

    Computed with the numerically stable recurrence
    :math:`B_0 = 1`, :math:`B_j = a B_{j-1} / (j + a B_{j-1})`.
    """
    if servers < 1:
        raise ValueError(f"servers must be >= 1, got {servers}")
    if offered_load < 0:
        raise ValueError(f"offered_load must be >= 0, got {offered_load}")
    b = 1.0
    for j in range(1, servers + 1):
        b = offered_load * b / (j + offered_load * b)
    return b


def erlang_c(servers: int, offered_load: float) -> float:
    """Erlang C probability of waiting, :math:`P(W_q > 0)`, for an M/M/k queue.

    ``offered_load`` is :math:`a = \\lambda/\\mu`; requires :math:`a < k`
    for a proper steady state.
    """
    if offered_load >= servers:
        raise ValueError(
            f"offered_load ({offered_load}) must be < servers ({servers}) for stability"
        )
    rho = offered_load / servers
    b = erlang_b(servers, offered_load)
    return b / (1.0 - rho * (1.0 - b))


def whitt_conditional_wait(servers: int, rho: float) -> float:
    """Whitt's conditional-wait approximation, the paper's Equation 6.

    .. math:: E[W_q \\mid W_q > 0] \\approx \\frac{\\sqrt{2}}{(1-\\rho)\\sqrt{k}}

    This is the dimensionless form printed in the paper (time measured in
    units of the mean service time; see DESIGN.md §6 on units).  Multiply
    by the mean service time :math:`1/\\mu` for seconds.
    """
    if servers < 1:
        raise ValueError(f"servers must be >= 1, got {servers}")
    if not 0.0 <= rho < 1.0:
        raise ValueError(f"rho must be in [0, 1), got {rho}")
    return math.sqrt(2.0) / ((1.0 - rho) * math.sqrt(servers))


class MMk:
    """M/M/k FCFS queue: Poisson arrivals at rate ``arrival_rate``, ``servers`` servers each at rate ``service_rate``.

    Raises
    ------
    StabilityError
        If :math:`\\lambda \\ge k\\mu`.
    """

    def __init__(self, arrival_rate: float, service_rate: float, servers: int) -> None:
        self._rho = ensure_stable(arrival_rate, service_rate, servers)
        self.arrival_rate = float(arrival_rate)
        self.service_rate = float(service_rate)
        self.servers = int(servers)
        self.offered_load = arrival_rate / service_rate
        self._prob_wait = erlang_c(self.servers, self.offered_load)

    @property
    def utilization(self) -> float:
        """:math:`\\rho = \\lambda/(k\\mu)`."""
        return self._rho

    def prob_wait(self) -> float:
        """Erlang C probability that an arrival waits."""
        return self._prob_wait

    @property
    def _drain_rate(self) -> float:
        """Rate :math:`\\theta = k\\mu - \\lambda` of the conditional wait."""
        return self.servers * self.service_rate - self.arrival_rate

    def mean_wait(self) -> float:
        """:math:`E[W_q] = C(k, a) / (k\\mu - \\lambda)`."""
        return self._prob_wait / self._drain_rate

    def mean_conditional_wait(self) -> float:
        """Exact :math:`E[W_q \\mid W_q>0] = 1/(k\\mu - \\lambda)`."""
        return 1.0 / self._drain_rate

    def whitt_conditional_wait(self) -> float:
        """Whitt's approximation of the conditional wait, in seconds.

        The paper's Equation 6 expressed in time units:
        :math:`\\sqrt{2}/(\\mu (1-\\rho) \\sqrt{k})` — note it differs from
        the exact value :math:`1/(k\\mu(1-\\rho))` by a factor
        :math:`\\sqrt{2k}` (the paper uses it as a comparative bound).
        """
        return whitt_conditional_wait(self.servers, self._rho) / self.service_rate

    def mean_response(self) -> float:
        """:math:`E[T] = E[W_q] + 1/\\mu`."""
        return self.mean_wait() + 1.0 / self.service_rate

    def mean_queue_length(self) -> float:
        """:math:`E[L_q] = \\lambda E[W_q]` (Little's law)."""
        return self.arrival_rate * self.mean_wait()

    def mean_number_in_system(self) -> float:
        """:math:`E[L] = \\lambda E[T]` (Little's law)."""
        return self.arrival_rate * self.mean_response()

    def waiting_time_cdf(self, t: float | np.ndarray) -> np.ndarray:
        """CDF of the queueing delay, :math:`1 - C e^{-(k\\mu-\\lambda)t}` for t ≥ 0."""
        t = np.asarray(t, dtype=float)
        out = 1.0 - self._prob_wait * np.exp(-self._drain_rate * np.maximum(t, 0.0))
        return np.where(t < 0, 0.0, out)

    def waiting_time_percentile(self, q: float) -> float:
        """Quantile of the queueing delay; 0 inside the atom at zero."""
        if not 0.0 < q < 1.0:
            raise ValueError(f"q must be in (0, 1), got {q}")
        if q <= 1.0 - self._prob_wait:
            return 0.0
        return -math.log((1.0 - q) / self._prob_wait) / self._drain_rate

    def response_time_cdf(self, t: float | np.ndarray) -> np.ndarray:
        """Exact CDF of the response time :math:`T = W_q + S`.

        With :math:`\\theta = k\\mu - \\lambda` and Erlang-C probability
        :math:`C`:

        .. math::
           F_T(t) = (1-C)(1 - e^{-\\mu t})
                    + C\\Big[1 - e^{-\\theta t}
                    - \\frac{\\theta (e^{-\\mu t} - e^{-\\theta t})}{\\theta - \\mu}\\Big]

        with the :math:`\\theta \\to \\mu` limit handled explicitly.
        """
        t = np.asarray(t, dtype=float)
        tt = np.maximum(t, 0.0)
        mu, theta, c = self.service_rate, self._drain_rate, self._prob_wait
        no_wait = (1.0 - c) * (1.0 - np.exp(-mu * tt))
        if math.isclose(theta, mu, rel_tol=1e-9):
            waited = c * (1.0 - np.exp(-theta * tt) - theta * tt * np.exp(-mu * tt))
        else:
            cross = theta * (np.exp(-mu * tt) - np.exp(-theta * tt)) / (theta - mu)
            waited = c * (1.0 - np.exp(-theta * tt) - cross)
        return np.where(t < 0, 0.0, no_wait + waited)

    def response_time_percentile(self, q: float) -> float:
        """Quantile of the response time via numeric inversion of the CDF."""
        if not 0.0 < q < 1.0:
            raise ValueError(f"q must be in (0, 1), got {q}")
        # Bracket: response is at least as large as an Exp(mu) and at most
        # (in quantile) an Exp(min(mu, theta)) plus constants; expand upper
        # bound geometrically until the CDF passes q.
        lo = 0.0
        hi = 10.0 / min(self.service_rate, self._drain_rate)
        while float(self.response_time_cdf(hi)) < q:
            hi *= 2.0
        return float(brentq(lambda t: float(self.response_time_cdf(t)) - q, lo, hi))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"MMk(arrival_rate={self.arrival_rate}, service_rate={self.service_rate}, "
            f"servers={self.servers}, rho={self._rho:.4f})"
        )
