"""Common protocol and helpers for queueing models.

Every queueing model in :mod:`repro.queueing` exposes the same small
surface (arrival rate, service rate, server count, utilization, mean
waiting time and mean response time) so the inversion analysis in
:mod:`repro.core.inversion` can treat exact and approximate models
uniformly.
"""

from __future__ import annotations

from typing import Protocol, runtime_checkable

__all__ = ["QueueModel", "utilization", "ensure_stable", "StabilityError"]


class StabilityError(ValueError):
    """Raised when a queueing system is unstable (:math:`\\rho \\ge 1`)."""


def utilization(arrival_rate: float, service_rate: float, servers: int = 1) -> float:
    """Return the offered utilization :math:`\\rho = \\lambda / (k \\mu)`.

    Parameters
    ----------
    arrival_rate:
        Mean arrival rate :math:`\\lambda` in requests/second.
    service_rate:
        Per-server mean service rate :math:`\\mu` in requests/second.
    servers:
        Number of homogeneous servers :math:`k`.

    Raises
    ------
    ValueError
        If any argument is non-positive.
    """
    if arrival_rate < 0:
        raise ValueError(f"arrival_rate must be >= 0, got {arrival_rate}")
    if service_rate <= 0:
        raise ValueError(f"service_rate must be > 0, got {service_rate}")
    if servers < 1:
        raise ValueError(f"servers must be >= 1, got {servers}")
    return arrival_rate / (servers * service_rate)


def ensure_stable(arrival_rate: float, service_rate: float, servers: int = 1) -> float:
    """Validate stability and return the utilization.

    Raises
    ------
    StabilityError
        If :math:`\\rho \\ge 1`, i.e. the queue grows without bound.
    """
    rho = utilization(arrival_rate, service_rate, servers)
    if rho >= 1.0:
        raise StabilityError(
            f"unstable queue: rho = {rho:.4f} >= 1 "
            f"(lambda={arrival_rate}, mu={service_rate}, k={servers})"
        )
    return rho


@runtime_checkable
class QueueModel(Protocol):
    """Protocol shared by all steady-state queueing models.

    Attributes
    ----------
    arrival_rate:
        Mean arrival rate :math:`\\lambda` (req/s).
    service_rate:
        Per-server service rate :math:`\\mu` (req/s).
    servers:
        Number of servers :math:`k`.
    """

    arrival_rate: float
    service_rate: float
    servers: int

    @property
    def utilization(self) -> float:
        """Server utilization :math:`\\rho = \\lambda/(k\\mu) \\in [0, 1)`."""
        ...

    def mean_wait(self) -> float:
        """Mean time spent waiting in queue, :math:`E[W_q]`, in seconds."""
        ...

    def mean_response(self) -> float:
        """Mean response time :math:`E[T] = E[W_q] + 1/\\mu`, in seconds."""
        ...
