"""Exact M/G/1 results (Pollaczek–Khinchine) and the M/D/k approximation.

The paper's application has low-variability (far from exponential)
service times, so the M/G/1 family is the right exact model for a
single edge server under Poisson arrivals:

* :class:`MG1` — Pollaczek–Khinchine mean wait
  :math:`E[W_q] = \\lambda E[S^2] / (2(1-\\rho))`, plus queue lengths.
* :func:`mdk_wait` — the classical Cosmetatos-style approximation for
  M/D/k as half the M/M/k wait with a small correction, widely used and
  asymptotically exact in heavy traffic.
"""

from __future__ import annotations

import math

from repro.queueing.base import ensure_stable
from repro.queueing.distributions import Distribution
from repro.queueing.mmk import MMk

__all__ = ["MG1", "mdk_wait"]


class MG1:
    """M/G/1 FCFS queue with an arbitrary service-time distribution.

    Parameters
    ----------
    arrival_rate:
        Poisson arrival rate :math:`\\lambda` (req/s).
    service:
        Service-time distribution (uses its first two moments).
    """

    servers = 1

    def __init__(self, arrival_rate: float, service: Distribution) -> None:
        if service.mean <= 0:
            raise ValueError("service distribution must have positive mean")
        self._rho = ensure_stable(arrival_rate, 1.0 / service.mean, 1)
        self.arrival_rate = float(arrival_rate)
        self.service = service
        self.service_rate = 1.0 / service.mean

    @property
    def utilization(self) -> float:
        """:math:`\\rho = \\lambda E[S]`."""
        return self._rho

    def second_moment(self) -> float:
        """:math:`E[S^2] = Var[S] + E[S]^2`."""
        return self.service.variance + self.service.mean**2

    def mean_wait(self) -> float:
        """Pollaczek–Khinchine: :math:`E[W_q] = \\lambda E[S^2]/(2(1-\\rho))`."""
        return self.arrival_rate * self.second_moment() / (2.0 * (1.0 - self._rho))

    def mean_response(self) -> float:
        """:math:`E[T] = E[W_q] + E[S]`."""
        return self.mean_wait() + self.service.mean

    def mean_queue_length(self) -> float:
        """:math:`E[L_q] = \\lambda E[W_q]` (Little)."""
        return self.arrival_rate * self.mean_wait()

    def mean_number_in_system(self) -> float:
        """:math:`E[L] = \\lambda E[T]` (Little)."""
        return self.arrival_rate * self.mean_response()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"MG1(arrival_rate={self.arrival_rate}, service_mean={self.service.mean:.6g}, "
            f"rho={self._rho:.4f})"
        )


def mdk_wait(arrival_rate: float, service_rate: float, servers: int) -> float:
    """Approximate mean wait of an M/D/k queue, in seconds.

    Uses the standard Cosmetatos refinement of the "half the M/M/k
    wait" rule:

    .. math::
       E[W_q^{M/D/k}] \\approx \\tfrac12\\,E[W_q^{M/M/k}]
           \\Big[1 + (1-\\rho)(k-1)\\frac{\\sqrt{4+5k}-2}{16\\,\\rho k}\\Big]

    Exact for k = 1; within a few percent for moderate-to-high
    utilization.  In light traffic (ρ ≲ 0.2 with many servers) the raw
    correction overshoots, so the result is capped at the M/M/k wait —
    deterministic service can never wait longer than exponential.
    """
    rho = ensure_stable(arrival_rate, service_rate, servers)
    if rho == 0.0:
        return 0.0
    mmk = MMk(arrival_rate, service_rate, servers).mean_wait()
    base = mmk / 2.0
    if servers == 1:
        return base
    correction = 1.0 + (1.0 - rho) * (servers - 1) * (
        math.sqrt(4.0 + 5.0 * servers) - 2.0
    ) / (16.0 * rho * servers)
    return min(base * correction, mmk)
