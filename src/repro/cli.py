"""Command-line interface: regenerate any paper experiment from a shell.

Usage::

    python -m repro list                   # what can I run?
    python -m repro fig3                   # regenerate Figure 3
    python -m repro fig7 --full            # publication-sized run
    python -m repro validation             # the §4.2 table
    python -m repro cutoff --cloud-rtt 24  # quick analytic cutoff query
    python -m repro sensitivity            # cutoff sensitivity sweeps
    python -m repro dump --out results     # persist all figures as JSON
    python -m repro campaign camp.yaml     # declarative scenario campaign
    python -m repro serve --port 8000      # HTTP/SSE campaign service

Every experiment command (and ``report`` / ``dump``) accepts
``--telemetry PATH``: a :mod:`repro.obs` factory is installed for the
run, so each simulation the experiment builds streams windowed records
and a run summary to ``PATH`` as JSON lines (validated by
``python -m repro.obs.schema PATH``).

They also accept ``--workers N`` (default ``$REPRO_WORKERS`` or 1):
independent simulation runs inside the experiment fan out across N
processes via :mod:`repro.parallel`, with results bit-identical to the
sequential run.  ``--telemetry`` and ``--workers > 1`` are mutually
exclusive — see ``docs/performance.md``.

``--checkpoint PATH`` journals the sweep-shaped experiments to a
crash-safe run store (:mod:`repro.experiments.store`): a run killed at
any point — worker crash, Ctrl-C, OOM — rerun with the same flags
replays completed tasks from disk and finishes bit-identically to an
uninterrupted run.  ``--resume`` additionally requires the journal to
already exist (a guard against typos).  See ``docs/robustness.md``.

``--check-invariants`` (or ``REPRO_CHECK=1`` in the environment) turns
on the runtime invariant checker (:mod:`repro.analysis.invariants`):
virtual-time monotonicity, request conservation and non-negative
occupancy are asserted during the run.  Checks are for debugging and
CI — results are unchanged, only failures become loud.
"""

from __future__ import annotations

import argparse
import os
import sys
import warnings
from dataclasses import replace
from itertools import count

from repro.experiments.config import FAST, FULL, ExperimentConfig
from repro.experiments.result import available, get_spec, run_experiment
from repro.parallel import resolve_workers

__all__ = ["main", "EXPERIMENTS"]


def _experiment_text(name: str):
    """Legacy runner shape: ``runner(cfg) -> str`` (deprecation shim)."""

    def runner(cfg: ExperimentConfig) -> str:
        return run_experiment(name, cfg).text

    return runner


def __getattr__(name: str):
    # Deprecated pre-registry API: name -> (runner(cfg) -> str,
    # description).  The source of truth is
    # repro.experiments.result.available(); the supported import surface
    # is the repro.api facade.
    if name == "EXPERIMENTS":
        warnings.warn(
            "repro.cli.EXPERIMENTS is deprecated; use "
            "repro.experiments.result.available()/run_experiment "
            "(re-exported by repro.api)",
            DeprecationWarning,
            stacklevel=2,
        )
        return {
            spec.name: (_experiment_text(spec.name), spec.description)
            for spec in available()
        }
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def _cmd_list() -> int:
    print("available experiments:")
    specs = available()
    width = max(len(s.name) for s in specs)
    for spec in specs:
        print(f"  {spec.name:<{width}}  {spec.description}")
    print("\nother commands: cutoff (analytic query), sensitivity, dump, list")
    return 0


def _cmd_sensitivity() -> int:
    from repro.core.scenarios import TYPICAL_CLOUD
    from repro.experiments.sensitivity import (
        cutoff_vs_cores,
        cutoff_vs_delta_n,
        cutoff_vs_service_cv2,
        cutoff_vs_sites,
    )

    sweeps = {
        "cores": cutoff_vs_cores(TYPICAL_CLOUD),
        "service cv^2": cutoff_vs_service_cv2(TYPICAL_CLOUD),
        "sites (k)": cutoff_vs_sites(TYPICAL_CLOUD),
        "cloud RTT (ms)": cutoff_vs_delta_n(TYPICAL_CLOUD),
    }
    print("analytic inversion-cutoff sensitivity (typical-cloud scenario)")
    for label, rows in sweeps.items():
        print(f"\n{label}:")
        print(f"  {'value':>8} {'mean cutoff':>12} {'p95 cutoff':>11}")
        for r in rows:
            print(f"  {r.value:>8g} {r.mean_cutoff:>12.2f} {r.tail_cutoff:>11.2f}")
    return 0


def _cmd_dump(args: argparse.Namespace, cfg: ExperimentConfig) -> int:
    from repro.experiments.persist import dump_all_figures

    outdir = args.out
    if args.outdir is not None:
        print(
            "note: --outdir is deprecated; use --out DIR (same meaning)",
            file=sys.stderr,
        )
        if outdir is None:
            outdir = args.outdir
    only = args.figures.split(",") if args.figures else None
    written = dump_all_figures(cfg, outdir or "results", only=only)
    for name, path in written.items():
        print(f"wrote {name} -> {path}")
    return 0


def _cmd_cutoff(args: argparse.Namespace) -> int:
    from repro.core.comparator import EdgeCloudComparator
    from repro.core.scenarios import Scenario
    from repro.core.tail import cutoff_utilization_tail

    scenario = Scenario(
        name=f"cli ({args.cloud_rtt} ms cloud)",
        cloud_rtt_ms=args.cloud_rtt,
        edge_rtt_ms=args.edge_rtt,
        sites=args.sites,
        machines_per_site=args.machines,
    )
    cmp_ = EdgeCloudComparator(scenario)
    mean_cut = cmp_.predict_cutoff_utilization()
    tail_cut = cutoff_utilization_tail(
        scenario.delta_n,
        scenario.service.core_service_rate,
        scenario.edge_servers_per_site,
        scenario.cloud_servers,
        q=0.95,
    )
    print(f"scenario: {scenario.name}, k={scenario.cloud_machines} machines")
    print(f"analytic mean-latency cutoff utilization: {mean_cut:.2f}")
    print(f"analytic p95-latency  cutoff utilization: {tail_cut:.2f}")
    print(
        f"-> keep per-site utilization below {min(mean_cut, tail_cut):.0%} "
        "to avoid any inversion"
    )
    return 0


def _cmd_validate(args: argparse.Namespace) -> int:
    """``repro validate FILE...``: fail-fast campaign validation.

    Exit codes: 0 valid, 3 parse error, 4 schema error, 5 semantic
    error (2 stays argparse's usage-error code).  With several files the
    first failing file's code wins; every file is still checked.
    """
    from repro.campaign import CampaignValidationError, load_campaign

    rc = 0
    for path in args.files:
        try:
            spec = load_campaign(path).require_valid()
        except CampaignValidationError as exc:
            print(exc, file=sys.stderr)
            if rc == 0:
                rc = exc.exit_code
        else:
            print(
                f"{path}: OK — campaign {spec.name!r}, "
                f"{len(spec.scenarios)} scenario(s), seed {spec.seed}"
            )
    return rc


def _cmd_campaign(args: argparse.Namespace) -> int:
    """``repro campaign FILE``: run a campaign under its budgets."""
    from repro.campaign import (
        CampaignValidationError,
        diff_golden,
        load_campaign,
        load_golden,
        run_campaign,
        write_golden,
    )
    from repro.experiments import schema as wire

    try:
        spec = load_campaign(args.file)
        if args.strict:
            spec.require_valid()
    except CampaignValidationError as exc:
        print(exc, file=sys.stderr)
        return exc.exit_code

    result = run_campaign(
        spec,
        workers=args.workers,
        checkpoint=args.checkpoint,
        resume=args.resume,
    )
    print(result.to_experiment_result().text)

    if args.salvage_report:
        report = wire.dump(result.salvage_report(), args.salvage_report)
        print(f"wrote salvage report to {report}")

    if args.update_golden:
        write_golden(result, args.update_golden)
        print(f"pinned golden summary to {args.update_golden}")
        return 0
    if args.golden:
        try:
            expected = load_golden(args.golden)
        except (OSError, ValueError) as exc:
            print(f"cannot load golden summary: {exc}", file=sys.stderr)
            return 1
        drifts = diff_golden(result, expected, spec.tolerance)
        if drifts:
            print(
                f"golden drift vs {args.golden}: {len(drifts)} divergence(s)",
                file=sys.stderr,
            )
            for d in drifts:
                print(f"  {d.render()}", file=sys.stderr)
            return 1
        print(f"golden: matches {args.golden} ({len(result.runs)} scenario(s))")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    """``repro serve``: the HTTP/SSE campaign service (repro.service)."""
    from repro.service.http import serve

    state_dir = args.state_dir
    if args.checkpoint is not None:
        print(
            "note: for serve, --checkpoint is an alias for --state-dir DIR",
            file=sys.stderr,
        )
        if state_dir is None:
            state_dir = args.checkpoint
    # SSE telemetry rides the in-process (serial) path only; with
    # fanned-out scenario workers there are no spans to bridge.
    window = None
    if resolve_workers(args.workers) == 1:
        window = args.telemetry_window
    return serve(
        args.host,
        args.port,
        state_dir=state_dir,
        pool=args.pool,
        workers=args.workers,
        telemetry_window=window,
        telemetry_path=args.telemetry,
        verbose=not args.quiet,
    )


class _TelemetrySession:
    """Scoped ``--telemetry`` enablement around one CLI command.

    Installs a :mod:`repro.obs` factory sharing one JSON-lines exporter;
    each simulation the command builds gets a fresh telemetry instance
    labelled ``<command>/<n>`` so the records of a multi-run experiment
    stay distinguishable in the shared file.
    """

    def __init__(self, path: str, window: float, label: str):
        from repro import obs

        self._obs = obs
        self.path = path
        self.exporter = obs.JsonLinesExporter(path)
        seq = count(1)
        obs.install(
            lambda: obs.Telemetry(
                window=window, exporters=[self.exporter], label=f"{label}/{next(seq)}"
            )
        )

    def finish(self) -> None:
        self._obs.uninstall()
        self.exporter.close()
        print(
            f"telemetry: wrote {self.exporter.records} records to {self.path}",
            file=sys.stderr,
        )


def _add_common_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--telemetry",
        metavar="PATH",
        default=None,
        help="stream windowed telemetry to PATH as JSON lines",
    )
    parser.add_argument(
        "--telemetry-window",
        type=float,
        default=5.0,
        help="telemetry window in virtual seconds (default 5)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        metavar="N",
        help="processes for independent simulation runs "
        "(default $REPRO_WORKERS or 1; results are bit-identical "
        "for any N, and incompatible with --telemetry for N > 1)",
    )
    parser.add_argument(
        "--check-invariants",
        action="store_true",
        help="enable runtime invariant checks (virtual-time monotonicity, "
        "request conservation, non-negative occupancy); equivalent to "
        "setting REPRO_CHECK=1",
    )
    parser.add_argument(
        "--checkpoint",
        metavar="PATH",
        default=None,
        help="journal sweep-shaped experiments to PATH "
        "(repro.experiments.store): completed tasks replay from disk, "
        "fresh results are durably appended — a killed run rerun with "
        "the same flags resumes bit-identically",
    )
    parser.add_argument(
        "--resume",
        action="store_true",
        help="require --checkpoint to already exist (fail fast on a "
        "mistyped path instead of silently recomputing from scratch)",
    )
    parser.add_argument(
        "--profile",
        nargs="?",
        const="",
        default=None,
        metavar="PATH",
        help="run under cProfile: print the top 25 functions by "
        "cumulative time to stderr after the run, and dump raw pstats "
        "data to PATH when given (load with pstats.Stats(PATH) or "
        "snakeviz)",
    )


def _sized_config(args: argparse.Namespace) -> ExperimentConfig:
    """The experiment config implied by --full/--seed/--workers/--checkpoint."""
    cfg = FULL if getattr(args, "full", False) else FAST
    if getattr(args, "seed", None) is not None:
        cfg = replace(cfg, seed=args.seed)
    if getattr(args, "workers", None) is not None:
        cfg = replace(cfg, workers=args.workers)
    if getattr(args, "checkpoint", None) is not None:
        cfg = replace(
            cfg, checkpoint=args.checkpoint, resume=getattr(args, "resume", False)
        )
    return cfg


def _dispatch(args: argparse.Namespace) -> int:
    if args.command == "list":
        return _cmd_list()
    if args.command == "sensitivity":
        return _cmd_sensitivity()
    if args.command == "cutoff":
        return _cmd_cutoff(args)
    if args.command == "dump":
        return _cmd_dump(args, _sized_config(args))
    if args.command == "validate":
        return _cmd_validate(args)
    if args.command == "campaign":
        return _cmd_campaign(args)
    if args.command == "serve":
        return _cmd_serve(args)
    if args.command == "report":
        from pathlib import Path

        from repro.experiments.paper_report import generate_report

        only = args.only.split(",") if args.only else None
        text = generate_report(_sized_config(args), only=only)
        if args.out:
            Path(args.out).write_text(text)
            print(f"wrote report to {args.out}")
        else:
            print(text)
        return 0

    spec = get_spec(args.command)
    print(run_experiment(spec.name, _sized_config(args)).text)
    return 0


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Regenerate experiments from 'The Hidden Cost of the Edge' (SC 2021).",
    )
    sub = parser.add_subparsers(dest="command")
    for spec in available():
        p = sub.add_parser(spec.name, help=spec.description)
        p.add_argument("--full", action="store_true", help="publication-sized run")
        p.add_argument("--seed", type=int, default=None, help="override the RNG seed")
        _add_common_args(p)
    sub.add_parser("list", help="list available experiments")
    sub.add_parser("sensitivity", help="analytic cutoff sensitivity sweeps")
    rep = sub.add_parser("report", help="full evaluation as one markdown report")
    rep.add_argument("--out", default=None, help="write to a file instead of stdout")
    rep.add_argument("--only", default=None, help="comma-separated section filters")
    rep.add_argument("--full", action="store_true", help="publication-sized run")
    _add_common_args(rep)
    dump = sub.add_parser("dump", help="persist figure results as JSON")
    dump.add_argument("--out", default=None, metavar="DIR",
                      help="output directory (default: results)")
    dump.add_argument("--outdir", default=None, metavar="DIR",
                      help="deprecated alias for --out")
    dump.add_argument("--figures", default=None, help="comma-separated subset")
    dump.add_argument("--full", action="store_true", help="publication-sized run")
    _add_common_args(dump)
    val = sub.add_parser(
        "validate",
        help="validate campaign files (exit 3=parse, 4=schema, 5=semantic)",
    )
    val.add_argument("files", nargs="+", metavar="FILE",
                     help="campaign file(s), YAML or JSON")
    camp = sub.add_parser(
        "campaign",
        help="run a declarative scenario campaign (repro.campaign)",
    )
    camp.add_argument("file", metavar="FILE", help="campaign file, YAML or JSON")
    camp.add_argument(
        "--strict",
        action="store_true",
        help="refuse to run if any scenario has semantic issues "
        "(default: quarantine them and run the rest)",
    )
    camp.add_argument(
        "--golden",
        metavar="EXPECTED",
        default=None,
        help="diff the run against a pinned golden summary; exit 1 on "
        "drift, naming the scenario, metric and delta",
    )
    camp.add_argument(
        "--update-golden",
        metavar="EXPECTED",
        default=None,
        help="pin this run's summary as the new golden file",
    )
    camp.add_argument(
        "--salvage-report",
        metavar="PATH",
        default=None,
        help="write the quarantine/salvage report as JSON to PATH",
    )
    _add_common_args(camp)
    srv = sub.add_parser(
        "serve",
        help="run the campaign service: HTTP/SSE front-end (repro.service)",
    )
    srv.add_argument("--host", default="127.0.0.1", help="bind address")
    srv.add_argument("--port", type=int, default=8000,
                     help="bind port (0 = ephemeral)")
    srv.add_argument(
        "--state-dir",
        metavar="DIR",
        default=None,
        help="spool directory for durable jobs: per-job campaign.json, "
        "scenario journal and result.json; a restarted server resumes "
        "unfinished jobs from here (default: in-memory only)",
    )
    srv.add_argument(
        "--pool",
        type=int,
        default=1,
        metavar="N",
        help="campaigns run concurrently (default 1)",
    )
    srv.add_argument("--quiet", action="store_true",
                     help="suppress startup/shutdown log lines")
    _add_common_args(srv)
    cut = sub.add_parser("cutoff", help="analytic inversion-cutoff query")
    cut.add_argument("--cloud-rtt", type=float, required=True, help="cloud RTT in ms")
    cut.add_argument("--edge-rtt", type=float, default=1.0, help="edge RTT in ms")
    cut.add_argument("--sites", type=int, default=5, help="number of edge sites")
    cut.add_argument("--machines", type=int, default=1, help="machines per site")

    args = parser.parse_args(argv)
    if args.command is None:
        parser.print_help()
        return 2
    if getattr(args, "workers", None) is not None and args.workers < 1:
        parser.error(f"--workers must be >= 1, got {args.workers}")
    if getattr(args, "resume", False):
        if not getattr(args, "checkpoint", None):
            parser.error("--resume requires --checkpoint PATH")
        if not os.path.exists(args.checkpoint):
            parser.error(
                f"--resume: checkpoint {args.checkpoint!r} does not exist; "
                "run once with --checkpoint (without --resume) to create it"
            )
    if getattr(args, "golden", None) and getattr(args, "update_golden", None):
        parser.error(
            "--golden and --update-golden are mutually exclusive: diff "
            "this run against a pinned summary or pin a new one, not both"
        )
    if getattr(args, "check_invariants", False):
        # Simulations read the flag at construction time, and worker
        # processes inherit the environment — one env var covers both the
        # in-process and fanned-out paths.
        os.environ["REPRO_CHECK"] = "1"
    session = None
    if getattr(args, "telemetry", None):
        # Telemetry is process-local (spans recorded in pool workers could
        # never reach this process's exporter), so fan-out and telemetry
        # are mutually exclusive — fail loudly instead of dropping spans.
        if resolve_workers(getattr(args, "workers", None)) > 1:
            parser.error(
                "--telemetry and --workers are mutually exclusive: worker "
                "processes do not stream spans back to this process's "
                "exporter, so the telemetry file would silently miss most "
                "of the run.  Use --workers 1 (and unset $REPRO_WORKERS), "
                "or drop --telemetry."
            )
        if args.command != "serve":
            # serve owns its telemetry lifecycle (per-job exporters on the
            # SSE bus, plus the optional shared JSON-lines file).
            session = _TelemetrySession(
                args.telemetry, args.telemetry_window, args.command
            )
    profile = getattr(args, "profile", None)
    try:
        if profile is None:
            return _dispatch(args)
        import cProfile
        import pstats

        prof = cProfile.Profile()
        try:
            return prof.runcall(_dispatch, args)
        finally:
            # Stats go to stderr so `repro ... --profile > out.txt` still
            # captures clean experiment output on stdout.
            stats = pstats.Stats(prof, stream=sys.stderr)
            stats.sort_stats("cumulative").print_stats(25)
            if profile:
                prof.dump_stats(profile)
                print(f"wrote pstats data to {profile}", file=sys.stderr)
    finally:
        if session is not None:
            session.finish()


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
