"""Command-line interface: regenerate any paper experiment from a shell.

Usage::

    python -m repro list                   # what can I run?
    python -m repro fig3                   # regenerate Figure 3
    python -m repro fig7 --full            # publication-sized run
    python -m repro validation             # the §4.2 table
    python -m repro cutoff --cloud-rtt 24  # quick analytic cutoff query
    python -m repro sensitivity            # cutoff sensitivity sweeps
    python -m repro dump --outdir results  # persist all figures as JSON
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable

from repro.experiments import figures as F
from repro.experiments import report as R
from repro.experiments.config import FAST, FULL, ExperimentConfig
from repro.experiments.validation import paper_formula_consistency, validation_table

__all__ = ["main"]


def _run_validation(cfg: ExperimentConfig) -> str:
    out = R.render_validation(validation_table(cfg))
    consistency = paper_formula_consistency()
    return out + f"\npaper formula unit consistency: {consistency}"


def _run_resilience(cfg: ExperimentConfig) -> str:
    from repro.experiments.resilience import outage_recovery, retry_storm

    storm = R.render_retry_storm(retry_storm(cfg))
    recovery = R.render_outage_recovery(outage_recovery(cfg))
    return storm + "\n\n" + recovery


def _run_overload(cfg: ExperimentConfig) -> str:
    from repro.experiments import overload as O

    sections = [
        R.render_discipline_sweep(O.discipline_sweep(cfg)),
        R.render_admission_pulse(O.admission_pulse(cfg)),
        R.render_priority_shedding(O.priority_shedding(cfg)),
        R.render_brownout_tradeoff(O.brownout_tradeoff(cfg)),
        R.render_storm_defense(O.storm_defense(cfg)),
    ]
    return "\n\n".join(sections)


# name -> (runner(cfg) -> str, description)
EXPERIMENTS: dict[str, tuple[Callable[[ExperimentConfig], str], str]] = {
    "fig2": (
        lambda cfg: R.render_fig2(F.fig2_spatial_skew(cfg)),
        "spatial load skew across edge cells (taxi stand-in)",
    ),
    "fig3": (
        lambda cfg: R.render_sweep_figure(F.fig3_mean_typical(cfg)),
        "mean latency, edge vs typical cloud (24 ms)",
    ),
    "fig4": (
        lambda cfg: R.render_sweep_figure(F.fig4_mean_distant(cfg)),
        "mean latency, edge vs distant cloud (54 ms)",
    ),
    "fig5": (
        lambda cfg: R.render_sweep_figure(F.fig5_tail_distant(cfg)),
        "p95 latency, edge vs distant cloud",
    ),
    "fig6": (
        lambda cfg: R.render_fig6(F.fig6_distribution(cfg)),
        "latency distributions at 10 req/s",
    ),
    "fig7": (
        lambda cfg: R.render_fig7(F.fig7_cutoff_utilizations(cfg)),
        "cutoff utilization vs cloud location",
    ),
    "fig8": (
        lambda cfg: R.render_fig8(F.fig8_azure_workload(cfg)),
        "per-site workload under the Azure-like trace",
    ),
    "fig9": (
        lambda cfg: R.render_fig9(F.fig9_azure_latency(cfg)),
        "edge vs cloud latency over time (Azure-like trace)",
    ),
    "fig10": (
        lambda cfg: R.render_fig10(F.fig10_azure_per_site(cfg)),
        "per-site latency box plot (Azure-like trace)",
    ),
    "validation": (_run_validation, "the §4.2 analytic-vs-measured table"),
    "resilience": (
        lambda cfg: _run_resilience(cfg),
        "retry storms and breaker+failover recovery under edge outages",
    ),
    "overload": (
        lambda cfg: _run_overload(cfg),
        "server-side overload control: disciplines, admission, brownout",
    ),
}


def _cmd_list() -> int:
    print("available experiments:")
    width = max(len(n) for n in EXPERIMENTS)
    for name, (_, desc) in EXPERIMENTS.items():
        print(f"  {name:<{width}}  {desc}")
    print("\nother commands: cutoff (analytic query), sensitivity, dump, list")
    return 0


def _cmd_sensitivity() -> int:
    from repro.core.scenarios import TYPICAL_CLOUD
    from repro.experiments.sensitivity import (
        cutoff_vs_cores,
        cutoff_vs_delta_n,
        cutoff_vs_service_cv2,
        cutoff_vs_sites,
    )

    sweeps = {
        "cores": cutoff_vs_cores(TYPICAL_CLOUD),
        "service cv^2": cutoff_vs_service_cv2(TYPICAL_CLOUD),
        "sites (k)": cutoff_vs_sites(TYPICAL_CLOUD),
        "cloud RTT (ms)": cutoff_vs_delta_n(TYPICAL_CLOUD),
    }
    print("analytic inversion-cutoff sensitivity (typical-cloud scenario)")
    for label, rows in sweeps.items():
        print(f"\n{label}:")
        print(f"  {'value':>8} {'mean cutoff':>12} {'p95 cutoff':>11}")
        for r in rows:
            print(f"  {r.value:>8g} {r.mean_cutoff:>12.2f} {r.tail_cutoff:>11.2f}")
    return 0


def _cmd_dump(args: argparse.Namespace, cfg: ExperimentConfig) -> int:
    from repro.experiments.persist import dump_all_figures

    only = args.figures.split(",") if args.figures else None
    written = dump_all_figures(cfg, args.outdir, only=only)
    for name, path in written.items():
        print(f"wrote {name} -> {path}")
    return 0


def _cmd_cutoff(args: argparse.Namespace) -> int:
    from repro.core.comparator import EdgeCloudComparator
    from repro.core.scenarios import Scenario
    from repro.core.tail import cutoff_utilization_tail

    scenario = Scenario(
        name=f"cli ({args.cloud_rtt} ms cloud)",
        cloud_rtt_ms=args.cloud_rtt,
        edge_rtt_ms=args.edge_rtt,
        sites=args.sites,
        machines_per_site=args.machines,
    )
    cmp_ = EdgeCloudComparator(scenario)
    mean_cut = cmp_.predict_cutoff_utilization()
    tail_cut = cutoff_utilization_tail(
        scenario.delta_n,
        scenario.service.core_service_rate,
        scenario.edge_servers_per_site,
        scenario.cloud_servers,
        q=0.95,
    )
    print(f"scenario: {scenario.name}, k={scenario.cloud_machines} machines")
    print(f"analytic mean-latency cutoff utilization: {mean_cut:.2f}")
    print(f"analytic p95-latency  cutoff utilization: {tail_cut:.2f}")
    print(
        f"-> keep per-site utilization below {min(mean_cut, tail_cut):.0%} "
        "to avoid any inversion"
    )
    return 0


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Regenerate experiments from 'The Hidden Cost of the Edge' (SC 2021).",
    )
    sub = parser.add_subparsers(dest="command")
    for name, (_, desc) in EXPERIMENTS.items():
        p = sub.add_parser(name, help=desc)
        p.add_argument("--full", action="store_true", help="publication-sized run")
        p.add_argument("--seed", type=int, default=None, help="override the RNG seed")
    sub.add_parser("list", help="list available experiments")
    sub.add_parser("sensitivity", help="analytic cutoff sensitivity sweeps")
    rep = sub.add_parser("report", help="full evaluation as one markdown report")
    rep.add_argument("--out", default=None, help="write to a file instead of stdout")
    rep.add_argument("--only", default=None, help="comma-separated section filters")
    rep.add_argument("--full", action="store_true", help="publication-sized run")
    dump = sub.add_parser("dump", help="persist figure results as JSON")
    dump.add_argument("--outdir", default="results", help="output directory")
    dump.add_argument("--figures", default=None, help="comma-separated subset")
    dump.add_argument("--full", action="store_true", help="publication-sized run")
    cut = sub.add_parser("cutoff", help="analytic inversion-cutoff query")
    cut.add_argument("--cloud-rtt", type=float, required=True, help="cloud RTT in ms")
    cut.add_argument("--edge-rtt", type=float, default=1.0, help="edge RTT in ms")
    cut.add_argument("--sites", type=int, default=5, help="number of edge sites")
    cut.add_argument("--machines", type=int, default=1, help="machines per site")

    args = parser.parse_args(argv)
    if args.command is None:
        parser.print_help()
        return 2
    if args.command == "list":
        return _cmd_list()
    if args.command == "sensitivity":
        return _cmd_sensitivity()
    if args.command == "cutoff":
        return _cmd_cutoff(args)
    if args.command == "dump":
        return _cmd_dump(args, FULL if args.full else FAST)
    if args.command == "report":
        from repro.experiments.paper_report import generate_report

        only = args.only.split(",") if args.only else None
        text = generate_report(FULL if args.full else FAST, only=only)
        if args.out:
            from pathlib import Path

            Path(args.out).write_text(text)
            print(f"wrote report to {args.out}")
        else:
            print(text)
        return 0

    runner, _ = EXPERIMENTS[args.command]
    cfg = FULL if args.full else FAST
    if args.seed is not None:
        cfg = ExperimentConfig(
            requests_per_site=cfg.requests_per_site,
            azure_duration=cfg.azure_duration,
            azure_functions=cfg.azure_functions,
            seed=args.seed,
        )
    print(runner(cfg))
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
