"""Process-wide telemetry provider.

The experiments layer builds dozens of :class:`~repro.sim.engine.Simulation`
objects deep inside runner functions; threading a telemetry handle
through every signature would make observability a tax on every API.
Instead a *factory* is installed here (``--telemetry`` on the CLI, or
:func:`installed` in tests) and every newly constructed ``Simulation``
asks for a telemetry instance — one fresh instance per simulation, so
concurrent runs in one process never share mutable window state.

The default factory is ``None``: :func:`current_telemetry` then returns
``None`` and the simulator's hot paths stay exactly as cheap as before
the observability layer existed (a single ``is None`` check at
construction time).

This module deliberately imports nothing from :mod:`repro.sim` or the
rest of :mod:`repro.obs`, so the engine can depend on it without any
import-cycle risk.

The factory is **process-local**: it does not propagate into the worker
processes used by :mod:`repro.parallel` (workers clear any factory
inherited via fork, and :func:`repro.parallel.run_tasks` raises rather
than fan out while one is installed here).  Telemetry is therefore an
explicitly single-process feature — see ``docs/performance.md``.
"""

from __future__ import annotations

from contextlib import contextmanager
from collections.abc import Callable, Iterator

__all__ = [
    "TelemetryFanoutError",
    "ensure_fanout_compatible",
    "install",
    "uninstall",
    "current_telemetry",
    "installed",
    "is_installed",
]


class TelemetryFanoutError(ValueError, RuntimeError):
    """Telemetry (``--telemetry``) and fan-out (``--workers``) collided.

    The installed factory is process-local: spans recorded in worker
    processes could never reach this process's exporters, so the
    combination is refused rather than silently dropping records.

    Subclasses both ``ValueError`` (it is an invalid argument
    combination — the contract for library callers and
    ``repro.service``) and ``RuntimeError`` (the type this guard
    historically raised from ``run_tasks``), so every existing
    ``except`` keeps working.
    """


def ensure_fanout_compatible(
    workers: int, context: str = "run_tasks", *, installing: bool = False
) -> None:
    """Raise :class:`TelemetryFanoutError` if ``workers > 1`` with telemetry on.

    The single API-layer guardrail behind the CLI's argparse check, the
    parallel pool and ``repro.service`` — every caller gets the same
    error naming both options (``--telemetry`` × ``--workers``).
    ``installing=True`` applies the check to a caller *about to* install
    a factory of its own (the service) rather than to the current state.
    """
    if workers > 1 and (installing or is_installed()):
        raise TelemetryFanoutError(
            f"--telemetry and --workers are mutually exclusive: {context} "
            f"was asked for workers={workers} while a telemetry factory is "
            "installed (repro.obs.install), and worker processes cannot "
            "stream spans back to this process's exporters — the records "
            "would be silently lost.  Use workers=1 with telemetry, or "
            "uninstall the factory around the parallel section."
        )

#: factory returning a fresh Telemetry (or None) per Simulation.
_factory: Callable[[], object] | None = None


def install(factory: Callable[[], object]) -> None:
    """Install a telemetry factory for subsequently created simulations."""
    global _factory
    _factory = factory


def uninstall() -> None:
    """Remove the installed factory (simulations revert to no telemetry)."""
    global _factory
    _factory = None


def is_installed() -> bool:
    """True while a telemetry factory is installed.

    The factory is *process-local* state: worker processes spawned by
    :func:`repro.parallel.run_tasks` never consult the parent's factory
    (forked workers explicitly clear any inherited one), because spans
    recorded in a worker could not reach the parent's exporters.
    ``run_tasks`` uses this predicate to refuse fan-out while telemetry
    is on, rather than silently dropping records.
    """
    return _factory is not None


def current_telemetry() -> object | None:
    """One telemetry instance for a new simulation (``None`` = disabled)."""
    return _factory() if _factory is not None else None


@contextmanager
def installed(factory: Callable[[], object]) -> Iterator[None]:
    """Scoped install/uninstall (the test and library-embedding interface)."""
    global _factory
    previous = _factory
    _factory = factory
    try:
        yield
    finally:
        _factory = previous
