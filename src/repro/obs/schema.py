"""Schema validation for exported telemetry (JSON lines).

The JSON-lines telemetry format is a contract between the simulator and
whatever consumes it (dashboards, the CI smoke job, downstream
analysis).  This module pins that contract without pulling in a
jsonschema dependency: a declarative field table per record type and a
small structural checker.  ``python -m repro.obs.schema FILE`` (or
:func:`validate_telemetry_file`) validates a whole export — CI runs one
experiment with ``--telemetry`` and fails if any emitted line drifts
from the schema.
"""

from __future__ import annotations

import json
import numbers
from pathlib import Path

__all__ = ["validate_record", "validate_telemetry_file", "SchemaError"]


class SchemaError(ValueError):
    """An exported telemetry record does not match the schema."""


_NUM = numbers.Real  # accepts int and float, rejects bool via explicit check
_OPT_NUM = (numbers.Real, type(None))

#: field -> (type spec, required).  Nested dicts validate sub-objects.
_WINDOW_SCHEMA: dict = {
    "type": (str, True),
    "schema_version": (int, False),
    "t_start": (_NUM, True),
    "t_end": (_NUM, True),
    "completed": (int, True),
    "throughput": (_NUM, True),
    "latency": (dict, True),
    "sums": (dict, True),
    "refused": (dict, True),
    "failed_operations": (int, True),
    "stations": (dict, True),
    "run": (str, False),
}

_SUMS_SCHEMA = {
    "net": (_NUM, True),
    "wait": (_NUM, True),
    "service": (_NUM, True),
    "end_to_end": (_NUM, True),
}

_REFUSED_SCHEMA = {
    "rejected": (int, True),
    "dropped": (int, True),
    "shed": (int, True),
}

_STATION_SCHEMA = {
    "arrivals": (int, True),
    "completions": (int, True),
    "rejected": (int, True),
    "dropped": (int, True),
    "shed": (int, True),
    "busy": (int, True),
    "queue": (int, True),
    "utilization": (_OPT_NUM, True),
}

_SUMMARY_SCHEMA = {
    "type": (str, True),
    "schema_version": (int, False),
    "t_end": (_NUM, True),
    "windows": (int, True),
    "completed": (int, True),
    "refused": (dict, True),
    "failed_operations": (int, True),
    "metrics": (dict, True),
    "run": (str, False),
}


def _check(obj: dict, schema: dict, where: str) -> None:
    if not isinstance(obj, dict):
        raise SchemaError(f"{where}: expected an object, got {type(obj).__name__}")
    for field, (kind, required) in schema.items():
        if field not in obj:
            if required:
                raise SchemaError(f"{where}: missing required field {field!r}")
            continue
        value = obj[field]
        if isinstance(value, bool) or not isinstance(value, kind):
            raise SchemaError(
                f"{where}.{field}: expected {kind}, got {type(value).__name__} ({value!r})"
            )
    # Unknown fields are tolerated: the unified wire contract
    # (repro.experiments.schema) lets a newer writer add fields within a
    # schema version, and readers must not choke on them.


def validate_record(record: dict) -> None:
    """Validate one telemetry record; raises :class:`SchemaError`.

    Two record types exist: ``window`` (one per elapsed Δt) and
    ``summary`` (one per run, at the end).
    """
    if not isinstance(record, dict) or "type" not in record:
        raise SchemaError("record must be an object with a 'type' field")
    version = record.get("schema_version")
    if version is not None and not isinstance(version, bool) and isinstance(version, int):
        from repro.experiments.schema import SCHEMA_VERSION

        if version > SCHEMA_VERSION:
            raise SchemaError(
                f"record has schema_version {version}, this build reads "
                f"{SCHEMA_VERSION}"
            )
    rtype = record["type"]
    if rtype == "window":
        _check(record, _WINDOW_SCHEMA, "window")
        _check(record["sums"], _SUMS_SCHEMA, "window.sums")
        _check(record["refused"], _REFUSED_SCHEMA, "window.refused")
        latency = record["latency"]
        for key, value in latency.items():
            if value is not None and (isinstance(value, bool) or not isinstance(value, _NUM)):
                raise SchemaError(f"window.latency.{key}: expected number or null")
        for name, station in record["stations"].items():
            _check(station, _STATION_SCHEMA, f"window.stations[{name!r}]")
        if record["t_end"] < record["t_start"]:
            raise SchemaError("window: t_end precedes t_start")
        if record["completed"] < 0:
            raise SchemaError("window: completed must be >= 0")
    elif rtype == "summary":
        _check(record, _SUMMARY_SCHEMA, "summary")
        _check(record["refused"], _REFUSED_SCHEMA, "summary.refused")
    else:
        raise SchemaError(f"unknown record type {rtype!r}")


def validate_telemetry_file(path: str | Path) -> int:
    """Validate a JSON-lines telemetry export; returns the record count.

    Raises :class:`SchemaError` on the first invalid line (with its line
    number) and :class:`ValueError` if the file holds no records at all.
    """
    count = 0
    with Path(path).open() as fh:
        for lineno, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as exc:
                raise SchemaError(f"line {lineno}: invalid JSON ({exc})") from exc
            try:
                validate_record(record)
            except SchemaError as exc:
                raise SchemaError(f"line {lineno}: {exc}") from exc
            count += 1
    if count == 0:
        raise ValueError(f"{path}: no telemetry records found")
    return count


def main(argv: list[str] | None = None) -> int:  # pragma: no cover - thin CLI
    import sys

    args = sys.argv[1:] if argv is None else argv
    if len(args) != 1:
        print("usage: python -m repro.obs.schema FILE", file=sys.stderr)
        return 2
    count = validate_telemetry_file(args[0])
    print(f"{args[0]}: {count} records ok")
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
