"""Windowed telemetry: periodic snapshots of a running simulation.

The :class:`WindowedCollector` is the "watch it happen" half of the
observability layer: every ``dt`` of *virtual* time it closes a window
and emits one record — throughput, streaming p50/p95 of end-to-end
latency, the :math:`n + w + s` component sums, the refusal taxonomy and
per-station occupancy/utilization — to the configured exporters.  The
transient experiments (E10 retry storms, E11 overload pulses) are
dynamic stories; these records are the data that tells them while the
run is still going, rather than post-hoc from the request log.

Design constraints, in order:

* **Zero cost when disabled** — the collector only exists inside an
  installed :class:`~repro.obs.Telemetry`; the simulator's hot paths
  check one attribute against ``None``.
* **No full-array retention** — per-window latency quantiles come from
  fresh P² sketches (:mod:`repro.obs.quantile`), station state from
  counter deltas polled at window boundaries (pull model: the station
  hot path is untouched).
* **Self-terminating** — the boundary tick re-schedules itself only
  while other events remain, so a drained calendar ends the run exactly
  as it would without telemetry.
"""

from __future__ import annotations

import math

from repro.obs.quantile import QuantileSketch

__all__ = ["WindowedCollector"]


def _finite(x: float) -> float | None:
    """JSON-safe float: NaN/inf become None (matching experiments.persist)."""
    return x if math.isfinite(x) else None


class _StationWatch:
    """Per-station counter baseline for window deltas."""

    __slots__ = ("station", "arrivals", "completions", "rejected", "dropped", "shed", "busy_time")

    def __init__(self, station):
        self.station = station
        self.arrivals = station.arrivals
        self.completions = station.completions
        self.rejected = station.rejected
        self.dropped = station.drops
        self.shed = station.shed
        self.busy_time = station.busy_time()

    def delta(self) -> dict:
        """Close the window for this station: deltas plus instantaneous state."""
        st = self.station
        busy_time = st.busy_time()
        out = {
            "arrivals": st.arrivals - self.arrivals,
            "completions": st.completions - self.completions,
            "rejected": st.rejected - self.rejected,
            "dropped": st.drops - self.dropped,
            "shed": st.shed - self.shed,
            "busy": st.busy,
            "queue": st.queue_length,
            "busy_time": busy_time - self.busy_time,
        }
        self.arrivals = st.arrivals
        self.completions = st.completions
        self.rejected = st.rejected
        self.dropped = st.drops
        self.shed = st.shed
        self.busy_time = busy_time
        return out


class WindowedCollector:
    """Snapshot the system every ``dt`` virtual seconds.

    Parameters
    ----------
    dt:
        Window length in virtual seconds.
    quantiles:
        End-to-end latency quantiles tracked per window (streaming P²).
    """

    def __init__(self, dt: float = 1.0, quantiles: tuple[float, ...] = (0.5, 0.95)):
        if dt <= 0:
            raise ValueError(f"dt must be > 0, got {dt}")
        self.dt = float(dt)
        self.quantiles = tuple(quantiles)
        self.sim = None
        self.label = ""
        self.windows_emitted = 0
        self._exporters: list = []
        self._watches: dict[str, _StationWatch] = {}
        self._window_start = 0.0
        self._ticking = False
        self._reset_window()

    # -- wiring ----------------------------------------------------------
    def bind(self, sim, exporters: list, label: str = "") -> None:
        """Attach to the owning simulation (called by ``Telemetry.bind``)."""
        self.sim = sim
        self._exporters = exporters
        self.label = label
        self._window_start = sim.now

    def register_station(self, station) -> None:
        """Start watching a station's counters and occupancy."""
        if station.name in self._watches:
            raise ValueError(f"station {station.name!r} already registered")
        self._watches[station.name] = _StationWatch(station)
        self._ensure_tick()

    def _ensure_tick(self) -> None:
        if not self._ticking and self.sim is not None:
            self._ticking = True
            self.sim.schedule(self.dt, self._tick)

    # -- per-request accumulation ----------------------------------------
    def _reset_window(self) -> None:
        self._completed = 0
        self._net_sum = 0.0
        self._wait_sum = 0.0
        self._service_sum = 0.0
        self._e2e_sum = 0.0
        self._refused = {"rejected": 0, "dropped": 0, "shed": 0}
        self._failed_ops = 0
        self._sketch = QuantileSketch(self.quantiles)

    def record_success(self, request) -> None:
        """Fold one served request into the current window."""
        self._completed += 1
        e2e = request.end_to_end
        self._net_sum += request.network_time
        self._wait_sum += request.wait
        self._service_sum += request.service_time
        self._e2e_sum += e2e
        self._sketch.add(e2e)

    def record_refusal(self, request, outcome: str) -> None:
        """Fold one refused request (rejected / dropped / shed)."""
        counts = self._refused
        counts[outcome] = counts.get(outcome, 0) + 1

    def record_failed_operation(self, request) -> None:
        """Fold one abandoned logical operation (resilience layer)."""
        self._failed_ops += 1

    # -- window boundary -------------------------------------------------
    def _tick(self) -> None:
        self.flush()
        if self.sim.invariants is not None:
            # Window boundaries are quiescent points (no half-applied
            # station transitions), so request conservation must hold at
            # each one, not just at run end.
            self.sim.invariants.check_stations("telemetry window")
        if self.sim.pending_events > 0:
            self.sim.schedule(self.dt, self._tick)
        else:
            self._ticking = False

    def flush(self) -> dict | None:
        """Close the current window and emit its record.

        Returns the emitted record (``None`` when the window is empty
        and holds no stations — nothing worth a line of output).
        """
        now = self.sim.now if self.sim is not None else self._window_start
        record = self._build_record(now)
        self._window_start = now
        self._reset_window()
        if record is None:
            return None
        self.windows_emitted += 1
        for exporter in self._exporters:
            exporter.export(record)
        return record

    def _build_record(self, now: float) -> dict | None:
        span = now - self._window_start
        if span <= 0 and self._completed == 0:
            return None
        stations = {}
        for name, watch in self._watches.items():
            d = watch.delta()
            d["utilization"] = _finite(
                d.pop("busy_time") / (span * watch.station.servers) if span > 0 else math.nan
            )
            stations[name] = d
        if self._completed == 0 and not stations and not any(self._refused.values()):
            return None
        from repro.experiments.schema import stamp_telemetry

        q = self._sketch
        record = {
            "type": "window",
            "t_start": self._window_start,
            "t_end": now,
            "completed": self._completed,
            "throughput": self._completed / span if span > 0 else 0.0,
            "latency": {
                "mean": _finite(q.mean),
                **{
                    f"p{p * 100:g}".replace(".", "_"): _finite(q.quantile(p))
                    for p in self.quantiles
                },
            },
            "sums": {
                "net": self._net_sum,
                "wait": self._wait_sum,
                "service": self._service_sum,
                "end_to_end": self._e2e_sum,
            },
            "refused": dict(self._refused),
            "failed_operations": self._failed_ops,
            "stations": stations,
        }
        if self.label:
            record["run"] = self.label
        return stamp_telemetry(record)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"WindowedCollector(dt={self.dt}, stations={len(self._watches)}, "
            f"windows={self.windows_emitted})"
        )
