"""Per-request span tracing: where did every millisecond go.

A *span* is one named, timestamped interval in a request's life.  Spans
from the same logical operation share a ``trace_id`` (the operation's
request id), so a trace reads like a miniature distributed-tracing
waterfall:

* ``net.out``   — client → server wire leg (``created → arrived``),
* ``queue``     — waiting for a server (``arrived → service_start``),
* ``service``   — the forward pass (``service_start → service_end``),
* ``net.back``  — server → client wire leg (``service_end → completed``),
* ``refusal``   — a refused attempt's round trip (``created → completed``),
* ``attempt``   — the resilience layer's view of one delivery attempt,
  with ``kind`` distinguishing first tries, retries, hedges and
  failover hops.

The four serving spans tile the request's lifetime exactly, so their
durations sum to the end-to-end latency and decompose it into the
paper's :math:`n + w + s` terms — the invariant
``tests/test_observability.py`` checks against :class:`RequestLog`.

Spans are derived from the timestamps a :class:`~repro.sim.request.Request`
already carries, at *completion* time: one recorder call per finished
request instead of four hot-path hooks.
"""

from __future__ import annotations

import math
from collections import deque

from repro.sim.request import Request

__all__ = ["Span", "SpanRecorder", "request_spans"]

#: Span names whose durations tile a served request's lifetime.
SERVING_SPANS = ("net.out", "queue", "service", "net.back")


class Span:
    """One named interval of a traced operation."""

    __slots__ = ("trace_id", "rid", "name", "kind", "start", "end", "site", "attrs")

    def __init__(
        self,
        trace_id: int,
        rid: int,
        name: str,
        start: float,
        end: float,
        site: str | None = None,
        kind: str = "request",
        attrs: dict | None = None,
    ):
        self.trace_id = trace_id
        self.rid = rid
        self.name = name
        self.kind = kind
        self.start = start
        self.end = end
        self.site = site
        self.attrs = attrs

    @property
    def duration(self) -> float:
        return self.end - self.start

    def as_dict(self) -> dict:
        """JSON-safe representation (exporters and tests)."""
        out = {
            "trace_id": self.trace_id,
            "rid": self.rid,
            "name": self.name,
            "kind": self.kind,
            "start": self.start,
            "end": self.end,
            "site": self.site,
        }
        if self.attrs:
            out["attrs"] = dict(self.attrs)
        return out

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Span(trace={self.trace_id}, name={self.name!r}, "
            f"[{self.start:.6f}, {self.end:.6f}])"
        )


def request_spans(request: Request) -> list[Span]:
    """Derive the causally-linked spans of one finished request.

    Served requests yield the four tiling spans (``net.out``, ``queue``,
    ``service``, ``net.back``); refused requests (dropped / shed /
    rejected — they crossed the wire but were never served) yield a
    single ``refusal`` span covering their round trip.
    """
    trace = request.op_id if request.op_id is not None else request.rid
    if math.isnan(request.service_start):
        return [
            Span(
                trace,
                request.rid,
                "refusal",
                request.created,
                request.completed,
                site=request.site,
                attrs={"outcome": request.outcome},
            )
        ]
    site = request.site
    return [
        Span(trace, request.rid, "net.out", request.created, request.arrived, site=site),
        Span(trace, request.rid, "queue", request.arrived, request.service_start, site=site),
        Span(
            trace,
            request.rid,
            "service",
            request.service_start,
            request.service_end,
            site=site,
            attrs={"degraded": True} if request.degraded else None,
        ),
        Span(trace, request.rid, "net.back", request.service_end, request.completed, site=site),
    ]


class SpanRecorder:
    """Accumulates spans, optionally bounded to the most recent ``limit``.

    A production trace store samples; here the bound keeps memory flat
    on long runs while tests and the windowed collector read recent
    traces.  ``limit=None`` retains everything (the default for
    experiment-sized runs).
    """

    def __init__(self, limit: int | None = None):
        if limit is not None and limit < 1:
            raise ValueError(f"limit must be >= 1, got {limit}")
        self._spans: deque[Span] = deque(maxlen=limit)
        self.recorded = 0

    def record(self, span: Span) -> None:
        """Store one span."""
        self._spans.append(span)
        self.recorded += 1

    def record_request(self, request: Request) -> None:
        """Derive and store the spans of one finished request."""
        for span in request_spans(request):
            self._spans.append(span)
            self.recorded += 1

    @property
    def spans(self) -> list[Span]:
        """Retained spans, oldest first."""
        return list(self._spans)

    def __len__(self) -> int:
        return len(self._spans)

    def for_trace(self, trace_id: int) -> list[Span]:
        """All retained spans of one logical operation, by start time."""
        return sorted(
            (s for s in self._spans if s.trace_id == trace_id), key=lambda s: (s.start, s.end)
        )

    def decompose(self, trace_id: int) -> dict[str, float]:
        """Per-component time of one trace: span name -> summed duration.

        For a served request this returns exactly the paper's
        decomposition: ``net.out + net.back = n``, ``queue = w``,
        ``service = s``.
        """
        out: dict[str, float] = {}
        for span in self.for_trace(trace_id):
            out[span.name] = out.get(span.name, 0.0) + span.duration
        return out

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"SpanRecorder(retained={len(self._spans)}, recorded={self.recorded})"
