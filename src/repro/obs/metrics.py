"""Metrics registry: counters, gauges and quantile sketches by name.

The registry is the shared namespace components publish into — stations,
load balancers, admission controllers and resilient clients each own a
handful of named instruments, and a single :meth:`MetricsRegistry.snapshot`
reads the whole system state at any virtual time.  Three instrument
kinds, mirroring the usual production taxonomy:

* :class:`Counter` — monotone event counts (arrivals, sheds, retries);
* :class:`Gauge` — point-in-time levels, either pushed (``set``) or
  *observed* by registering a zero-argument callable, which lets a
  station expose ``queue_length`` without touching its hot path at all
  (pull model — the cost is paid only when a snapshot is taken);
* :class:`~repro.obs.quantile.QuantileSketch` — streaming latency
  distributions (P², no full-array retention).

Metric names are dotted paths, ``<component>.<instrument>`` by
convention (``station.s0.queue_length``, ``client.resilient.retries``);
the documented names live in ``docs/observability.md``.
"""

from __future__ import annotations

import math
from collections.abc import Callable

from repro.obs.quantile import QuantileSketch

__all__ = ["Counter", "Gauge", "MetricsRegistry"]


class Counter:
    """A monotonically increasing event count."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def inc(self, n: int = 1) -> None:
        """Add ``n`` (>= 0) events."""
        self.value += n

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Counter({self.value})"


class Gauge:
    """A point-in-time level: pushed via :meth:`set` or pulled via a callable."""

    __slots__ = ("_value", "_fn")

    def __init__(self, fn: Callable[[], float] | None = None) -> None:
        self._value = math.nan
        self._fn = fn

    def set(self, value: float) -> None:
        """Push a new level (ignored if the gauge is observed)."""
        self._value = value

    @property
    def value(self) -> float:
        """Current level (calls the observer for pull-model gauges)."""
        if self._fn is not None:
            return float(self._fn())
        return self._value

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Gauge({self.value})"


class MetricsRegistry:
    """Named instruments, created on first use.

    ``counter`` / ``gauge`` / ``sketch`` are get-or-create: the first
    caller creates the instrument, later callers (and the snapshotter)
    share it.  Re-registering a name as a different kind is an error —
    that is always a bug in the instrumentation, not a configuration.
    """

    def __init__(self) -> None:
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._sketches: dict[str, QuantileSketch] = {}

    def counter(self, name: str) -> Counter:
        """Get or create the counter called ``name``."""
        c = self._counters.get(name)
        if c is None:
            self._check_free(name, self._counters)
            c = self._counters[name] = Counter()
        return c

    def gauge(self, name: str, fn: Callable[[], float] | None = None) -> Gauge:
        """Get or create the gauge called ``name``.

        Passing ``fn`` registers a pull-model gauge whose level is read
        by calling ``fn`` at snapshot time; the same name must not
        already exist as a pushed gauge.
        """
        g = self._gauges.get(name)
        if g is None:
            self._check_free(name, self._gauges)
            g = self._gauges[name] = Gauge(fn)
        elif fn is not None:
            raise ValueError(f"gauge {name!r} already registered")
        return g

    def sketch(
        self, name: str, quantiles: tuple[float, ...] = (0.5, 0.95, 0.99)
    ) -> QuantileSketch:
        """Get or create the quantile sketch called ``name``."""
        s = self._sketches.get(name)
        if s is None:
            self._check_free(name, self._sketches)
            s = self._sketches[name] = QuantileSketch(quantiles)
        return s

    def _check_free(self, name: str, owner: dict) -> None:
        for kind in (self._counters, self._gauges, self._sketches):
            if kind is not owner and name in kind:
                raise ValueError(f"metric {name!r} already registered as another kind")

    def snapshot(self) -> dict[str, float]:
        """Read every instrument into one flat ``name -> value`` mapping.

        Sketches expand to ``<name>.count`` / ``.mean`` / ``.p50`` /
        ``.p95`` / … sub-keys.
        """
        out: dict[str, float] = {}
        for name, c in self._counters.items():
            out[name] = float(c.value)
        for name, g in self._gauges.items():
            out[name] = g.value
        for name, s in self._sketches.items():
            for key, value in s.snapshot().items():
                out[f"{name}.{key}"] = value
        return out

    def names(self) -> list[str]:
        """All registered instrument names, sorted."""
        return sorted({*self._counters, *self._gauges, *self._sketches})

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"MetricsRegistry(counters={len(self._counters)}, "
            f"gauges={len(self._gauges)}, sketches={len(self._sketches)})"
        )
