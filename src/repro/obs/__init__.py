"""repro.obs — live observability for the simulation substrate.

The paper's inversion story is about *where time goes* — network versus
queue versus service.  Before this subsystem the answer existed only
post-hoc, by crunching a :class:`~repro.sim.tracing.RequestLog` after
the run; ``repro.obs`` makes it observable while the run happens:

* :mod:`repro.obs.metrics` — a registry of counters, gauges and
  streaming quantile sketches that stations, load balancers, admission
  controllers and resilient clients publish into;
* :mod:`repro.obs.spans` — causally linked per-request spans (network
  legs, queue wait, service, retry/hedge attempts, failover hops) whose
  durations decompose end-to-end latency exactly into the paper's
  :math:`n + w + s` terms;
* :mod:`repro.obs.windows` — a windowed collector snapshotting
  throughput, p50/p95, per-station occupancy and the
  rejected/dropped/shed taxonomy every Δt of virtual time;
* :mod:`repro.obs.exporters` — JSON-lines, console-table and in-memory
  sinks; :mod:`repro.obs.schema` validates the JSON-lines contract.

Everything hangs off one :class:`Telemetry` facade.  Enablement is by
*installation* (:func:`install` / :func:`installed` — the CLI's
``--telemetry`` flag does this): every :class:`~repro.sim.engine.Simulation`
constructed while a factory is installed gets a fresh telemetry
instance; with nothing installed the simulator pays a single ``is
None`` check and is otherwise untouched (guarded by
``benchmarks/test_obs_overhead.py``).

Quick start::

    from repro import obs

    exporter = obs.InMemoryExporter()
    with obs.installed(lambda: obs.Telemetry(window=5.0, exporters=[exporter])):
        run_experiment(...)          # any code that builds Simulations
    for window in exporter.windows:
        print(window["t_end"], window["throughput"], window["latency"]["p95"])
"""

from __future__ import annotations

import math

from repro.obs.exporters import (
    ConsoleTableExporter,
    Exporter,
    InMemoryExporter,
    JsonLinesExporter,
)
from repro.obs.metrics import Counter, Gauge, MetricsRegistry
from repro.obs.provider import current_telemetry, install, installed, uninstall
from repro.obs.quantile import P2Quantile, QuantileSketch
from repro.obs.schema import SchemaError, validate_record, validate_telemetry_file
from repro.obs.spans import Span, SpanRecorder, request_spans
from repro.obs.windows import WindowedCollector

__all__ = [
    "Telemetry",
    "install",
    "uninstall",
    "installed",
    "current_telemetry",
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "P2Quantile",
    "QuantileSketch",
    "Span",
    "SpanRecorder",
    "request_spans",
    "WindowedCollector",
    "Exporter",
    "JsonLinesExporter",
    "ConsoleTableExporter",
    "InMemoryExporter",
    "validate_record",
    "validate_telemetry_file",
    "SchemaError",
]


class Telemetry:
    """One simulation's observability bundle.

    Parameters
    ----------
    window:
        Windowed-collector period in virtual seconds.
    quantiles:
        Latency quantiles tracked per window and for the whole run.
    spans:
        Record per-request spans (set ``False`` to keep only metrics and
        windows on very large runs).
    span_limit:
        Retain only the most recent N spans (``None`` = all).
    exporters:
        Sinks receiving window and summary records.
    label:
        Run label stamped on every exported record (distinguishes the
        many simulations of one experiment in a shared JSON-lines file).
    """

    def __init__(
        self,
        *,
        window: float = 1.0,
        quantiles: tuple[float, ...] = (0.5, 0.95),
        spans: bool = True,
        span_limit: int | None = None,
        exporters: tuple | list = (),
        label: str = "",
    ):
        self.metrics = MetricsRegistry()
        self.spans = SpanRecorder(span_limit) if spans else None
        self.windows = WindowedCollector(window, quantiles)
        self.exporters = list(exporters)
        self.label = label
        self.sim = None
        self.completed = 0
        self.failed_operations = 0
        self.refused = {"rejected": 0, "dropped": 0, "shed": 0}
        self._latency = self.metrics.sketch("latency.end_to_end", quantiles)
        self._station_names: set[str] = set()
        self._client_names: set[str] = set()
        self._prefixes: set[str] = set()
        self._finished = False

    # -- wiring ----------------------------------------------------------
    def bind(self, sim) -> None:
        """Attach to the owning simulation (called by ``Simulation.__init__``)."""
        if self.sim is not None and self.sim is not sim:
            raise ValueError("Telemetry instances are per-simulation; install a factory")
        self.sim = sim
        self.windows.bind(sim, self.exporters, self.label)

    @staticmethod
    def _dedupe(base: str, seen: set[str]) -> str:
        """Reserve a unique name, suffixing ``#2``, ``#3``, … on clashes."""
        name = base
        suffix = 2
        while name in seen:
            name = f"{base}#{suffix}"
            suffix += 1
        seen.add(name)
        return name

    def register_station(self, station) -> None:
        """Watch a station: windowed deltas plus pull-model gauges."""
        name = self._dedupe(station.name, self._station_names)
        if name == station.name:
            # Windowed per-station records keep the station's own name;
            # deduped duplicates are visible through gauges only.
            self.windows.register_station(station)
        m = self.metrics
        prefix = f"station.{name}"
        m.gauge(f"{prefix}.queue_length", lambda s=station: s.queue_length)
        m.gauge(f"{prefix}.busy", lambda s=station: s.busy)
        m.gauge(f"{prefix}.in_system", lambda s=station: s.in_system)
        m.gauge(f"{prefix}.utilization", lambda s=station: s.utilization())
        m.gauge(f"{prefix}.arrivals", lambda s=station: s.arrivals)
        m.gauge(f"{prefix}.completions", lambda s=station: s.completions)
        m.gauge(f"{prefix}.rejected", lambda s=station: s.rejected)
        m.gauge(f"{prefix}.dropped", lambda s=station: s.drops)
        m.gauge(f"{prefix}.shed", lambda s=station: s.shed)
        # Overload-control components riding on the station publish
        # whatever they expose through ``observables()``.
        if station.admission is not None:
            self.register_observables(f"{prefix}.admission", station.admission)
        if station.brownout is not None:
            self.register_observables(f"{prefix}.brownout", station.brownout)
        self.register_observables(f"{prefix}.discipline", station.discipline)

    def register_client(self, client) -> None:
        """Watch a resilient client: pull-model gauges over its counters."""
        name = self._dedupe(client.name, self._client_names)
        m = self.metrics
        prefix = f"client.{name}"
        m.gauge(f"{prefix}.operations", lambda c=client: c.operations)
        m.gauge(f"{prefix}.successes", lambda c=client: c.successes)
        m.gauge(f"{prefix}.failures", lambda c=client: c.failures)
        m.gauge(f"{prefix}.attempts", lambda c=client: c.attempts)
        m.gauge(f"{prefix}.retries", lambda c=client: c.retries)
        m.gauge(f"{prefix}.hedges", lambda c=client: c.hedges)
        m.gauge(f"{prefix}.failovers", lambda c=client: c.failovers)
        m.gauge(f"{prefix}.timeouts", lambda c=client: c.timeouts)
        m.gauge(f"{prefix}.breaker_opens", lambda c=client: c.breaker_opens)

    def register_observables(self, prefix: str, component) -> None:
        """Publish a component's ``observables()`` mapping as pull gauges.

        Any component may expose ``observables() -> {key: callable}``
        (admission controllers, dispatch policies, brownout controllers);
        each reader becomes the gauge ``<prefix>.<key>``.  Components
        without the hook are silently skipped.
        """
        readers = getattr(component, "observables", None)
        if readers is None:
            return
        prefix = self._dedupe(prefix, self._prefixes)
        for key, fn in readers().items():
            self.metrics.gauge(f"{prefix}.{key}", fn)

    # -- event recording (called from instrumented hot paths) ------------
    def record_success(self, request) -> None:
        """One request served and returned to its client."""
        self.completed += 1
        self._latency.add(request.end_to_end)
        self.windows.record_success(request)
        if self.spans is not None:
            self.spans.record_request(request)

    def record_refusal(self, request, outcome: str) -> None:
        """One request refused (rejected / dropped / shed) by a station."""
        self.refused[outcome] = self.refused.get(outcome, 0) + 1
        self.windows.record_refusal(request, outcome)
        if self.spans is not None:
            self.spans.record_request(request)

    def record_failed_operation(self, request) -> None:
        """One logical operation abandoned by the resilience layer."""
        self.failed_operations += 1
        self.windows.record_failed_operation(request)

    def record_span(self, span: Span) -> None:
        """Record an explicit span (attempt/hedge/failover tracing)."""
        if self.spans is not None:
            self.spans.record(span)

    def record_attempt(
        self,
        request,
        kind: str,
        outcome: str,
        target: str | None = None,
        start: float | None = None,
    ) -> None:
        """Record the resilience layer's view of one delivery attempt.

        ``kind`` distinguishes first tries, retries and hedges; ``target``
        says which deployment carried the attempt (``primary`` /
        ``fallback``).  Breaker fast-fails pass an explicit ``start`` so
        the span is the zero-length instant of the local refusal, not the
        operation's whole life.
        """
        if self.spans is None:
            return
        trace = request.op_id if request.op_id is not None else request.rid
        if start is None:
            start = request.created
        end = self.sim.now if self.sim is not None else start
        attrs = {"outcome": outcome}
        if target is not None:
            attrs["target"] = target
        self.spans.record(
            Span(trace, request.rid, "attempt", start, end, site=request.site,
                 kind=kind, attrs=attrs)
        )

    # -- lifecycle -------------------------------------------------------
    def finish(self) -> dict | None:
        """Flush the partial window and emit the run summary (idempotent)."""
        if self._finished:
            return None
        self._finished = True
        from repro.experiments.schema import stamp_telemetry

        self.windows.flush()
        snapshot = {
            k: (v if v is not None and math.isfinite(v) else None)
            for k, v in self.metrics.snapshot().items()
        }
        summary = {
            "type": "summary",
            "t_end": self.sim.now if self.sim is not None else 0.0,
            "windows": self.windows.windows_emitted,
            "completed": self.completed,
            "refused": {
                "rejected": self.refused.get("rejected", 0),
                "dropped": self.refused.get("dropped", 0),
                "shed": self.refused.get("shed", 0),
            },
            "failed_operations": self.failed_operations,
            "metrics": snapshot,
        }
        if self.label:
            summary["run"] = self.label
        stamp_telemetry(summary)
        for exporter in self.exporters:
            exporter.export(summary)
        return summary

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Telemetry(label={self.label!r}, completed={self.completed}, "
            f"windows={self.windows.windows_emitted})"
        )
