"""Telemetry exporters: where window records go.

An exporter is anything with ``export(record: dict)`` and ``close()``.
Three are provided:

* :class:`JsonLinesExporter` — one JSON object per line, the machine
  interface (``--telemetry out.jsonl`` on the CLI); the format is
  validated by :mod:`repro.obs.schema` and documented in
  ``docs/observability.md``.
* :class:`ConsoleTableExporter` — aligned live table rows for humans
  watching a run.
* :class:`InMemoryExporter` — keeps records in a list; the test and
  notebook interface.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path
from typing import IO, Protocol, runtime_checkable

__all__ = [
    "Exporter",
    "JsonLinesExporter",
    "ConsoleTableExporter",
    "InMemoryExporter",
]


@runtime_checkable
class Exporter(Protocol):
    """Sink for telemetry records."""

    def export(self, record: dict) -> None: ...

    def close(self) -> None: ...


class JsonLinesExporter:
    """Append records to a file as JSON lines.

    Parameters
    ----------
    target:
        A path (opened lazily, truncated) or an already-open text stream
        (not closed by :meth:`close` unless this exporter opened it).
    """

    def __init__(self, target: str | Path | IO[str]):
        if isinstance(target, (str, Path)):
            self._path: Path | None = Path(target)
            self._stream: IO[str] | None = None
        else:
            self._path = None
            self._stream = target
        self.records = 0

    def export(self, record: dict) -> None:
        if self._stream is None:
            self._stream = self._path.open("w")
        json.dump(record, self._stream, allow_nan=False, separators=(",", ":"))
        self._stream.write("\n")
        self.records += 1

    def close(self) -> None:
        if self._path is None:
            return
        if self._stream is None:
            # Nothing was exported; still leave an (empty) file so a
            # --telemetry run always produces its promised artifact.
            self._path.touch()
            return
        self._stream.close()
        self._stream = None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        where = self._path if self._path is not None else "<stream>"
        return f"JsonLinesExporter({where}, records={self.records})"


class ConsoleTableExporter:
    """Render window records as aligned live table rows."""

    _HEADER = (
        f"{'t(s)':>8} {'done':>6} {'thru/s':>7} {'p50(ms)':>8} {'p95(ms)':>8} "
        f"{'refused':>8} {'queued':>7} {'busy':>5}"
    )

    def __init__(self, stream: IO[str] | None = None):
        self._stream = stream if stream is not None else sys.stdout
        self._printed_header = False

    def export(self, record: dict) -> None:
        if record.get("type") != "window":
            return
        if not self._printed_header:
            print(self._HEADER, file=self._stream)
            self._printed_header = True
        lat = record.get("latency", {})
        stations = record.get("stations", {})
        refused = sum(record.get("refused", {}).values())

        def ms(key: str) -> str:
            v = lat.get(key)
            return "-" if v is None else f"{v * 1e3:8.1f}"

        print(
            f"{record['t_end']:>8.1f} {record['completed']:>6} "
            f"{record['throughput']:>7.1f} {ms('p50')} {ms('p95')} "
            f"{refused:>8} {sum(s['queue'] for s in stations.values()):>7} "
            f"{sum(s['busy'] for s in stations.values()):>5}",
            file=self._stream,
        )

    def close(self) -> None:
        pass


class InMemoryExporter:
    """Keep every record in a list (tests, notebooks, E12 tables)."""

    def __init__(self) -> None:
        self.records: list[dict] = []

    def export(self, record: dict) -> None:
        self.records.append(record)

    def close(self) -> None:
        pass

    @property
    def windows(self) -> list[dict]:
        """Only the per-window records, in emission order."""
        return [r for r in self.records if r.get("type") == "window"]

    @property
    def summary(self) -> dict | None:
        """The final summary record, if one was emitted."""
        for record in reversed(self.records):
            if record.get("type") == "summary":
                return record
        return None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"InMemoryExporter(records={len(self.records)})"
