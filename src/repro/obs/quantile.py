"""Streaming quantile estimation: the P² algorithm.

Windowed telemetry needs per-window and whole-run percentiles without
retaining every observation — a run at production scale completes
millions of requests, and keeping a float per request just to read a
p95 off at the end defeats the point of *live* observability.  The P²
(piecewise-parabolic) estimator of Jain & Chlamtac (CACM 1985) tracks
one quantile with five markers updated in O(1) per observation; its
error on smooth distributions is a fraction of a percent, which the
unit tests pin against exact NumPy percentiles.

:class:`P2Quantile` is the single-quantile estimator;
:class:`QuantileSketch` bundles several (p50/p95/p99 by default) behind
one ``add``.  Both fall back to exact order statistics while fewer than
five observations have been seen, so tiny telemetry windows still
report sensible values.
"""

from __future__ import annotations

import math

__all__ = ["P2Quantile", "QuantileSketch"]


class P2Quantile:
    """P² streaming estimator of a single quantile.

    Parameters
    ----------
    q:
        The quantile to track, in (0, 1).
    """

    __slots__ = ("q", "count", "_heights", "_positions", "_desired", "_rates")

    def __init__(self, q: float):
        if not 0.0 < q < 1.0:
            raise ValueError(f"q must be in (0, 1), got {q}")
        self.q = float(q)
        self.count = 0
        self._heights: list[float] = []  # marker heights (sorted)
        self._positions = [1.0, 2.0, 3.0, 4.0, 5.0]  # actual marker positions
        self._desired = [1.0, 1.0 + 2.0 * q, 1.0 + 4.0 * q, 3.0 + 2.0 * q, 5.0]
        self._rates = [0.0, q / 2.0, q, (1.0 + q) / 2.0, 1.0]

    def add(self, x: float) -> None:
        """Fold one observation into the sketch."""
        x = float(x)
        if math.isnan(x):
            raise ValueError("cannot add NaN to a quantile sketch")
        self.count += 1
        h = self._heights
        if self.count <= 5:
            # Initialization phase: collect the first five observations.
            lo, hi = 0, len(h)
            while lo < hi:
                mid = (lo + hi) // 2
                if h[mid] < x:
                    lo = mid + 1
                else:
                    hi = mid
            h.insert(lo, x)
            return
        pos = self._positions
        # Locate the cell and clamp the extremes.
        if x < h[0]:
            h[0] = x
            k = 0
        elif x >= h[4]:
            h[4] = x
            k = 3
        else:
            k = 0
            while x >= h[k + 1]:
                k += 1
        for i in range(k + 1, 5):
            pos[i] += 1.0
        # Desired positions advance by a fixed rate per observation, so
        # they are computed from the count instead of stored and
        # incremented — this add() runs ~4× per completed request under
        # full telemetry and the 5-element update loop showed up in
        # profiles.
        steps = self.count - 5
        rates = self._rates
        desired = self._desired
        # Adjust the three interior markers toward their desired positions.
        for i in (1, 2, 3):
            d = desired[i] + steps * rates[i] - pos[i]
            if (d >= 1.0 and pos[i + 1] - pos[i] > 1.0) or (
                d <= -1.0 and pos[i - 1] - pos[i] < -1.0
            ):
                step = 1.0 if d >= 1.0 else -1.0
                candidate = self._parabolic(i, step)
                if h[i - 1] < candidate < h[i + 1]:
                    h[i] = candidate
                else:
                    h[i] = self._linear(i, step)
                pos[i] += step

    def _parabolic(self, i: int, d: float) -> float:
        h, n = self._heights, self._positions
        return h[i] + d / (n[i + 1] - n[i - 1]) * (
            (n[i] - n[i - 1] + d) * (h[i + 1] - h[i]) / (n[i + 1] - n[i])
            + (n[i + 1] - n[i] - d) * (h[i] - h[i - 1]) / (n[i] - n[i - 1])
        )

    def _linear(self, i: int, d: float) -> float:
        h, n = self._heights, self._positions
        j = i + int(d)
        return h[i] + d * (h[j] - h[i]) / (n[j] - n[i])

    def value(self) -> float:
        """Current estimate of the tracked quantile (NaN before any data)."""
        if self.count == 0:
            return math.nan
        if self.count <= 5:
            # Exact order statistic on the few observations seen so far
            # (linear interpolation, matching numpy's default).
            h = self._heights
            rank = self.q * (len(h) - 1)
            lo = int(rank)
            hi = min(lo + 1, len(h) - 1)
            return h[lo] + (rank - lo) * (h[hi] - h[lo])
        return self._heights[2]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"P2Quantile(q={self.q}, n={self.count}, value={self.value():.6g})"


class QuantileSketch:
    """A bundle of P² estimators sharing one ``add`` stream.

    Parameters
    ----------
    quantiles:
        The quantiles to track (default p50, p95, p99).
    """

    __slots__ = ("count", "_sum", "_min", "_max", "_estimators")

    def __init__(self, quantiles: tuple[float, ...] = (0.5, 0.95, 0.99)):
        if not quantiles:
            raise ValueError("need at least one quantile")
        self.count = 0
        self._sum = 0.0
        self._min = math.inf
        self._max = -math.inf
        self._estimators = {q: P2Quantile(q) for q in quantiles}

    def add(self, x: float) -> None:
        """Fold one observation into every tracked quantile."""
        x = float(x)
        self.count += 1
        self._sum += x
        if x < self._min:
            self._min = x
        if x > self._max:
            self._max = x
        for est in self._estimators.values():
            est.add(x)

    def quantile(self, q: float) -> float:
        """Estimate for one of the tracked quantiles."""
        return self._estimators[q].value()

    @property
    def mean(self) -> float:
        return self._sum / self.count if self.count else math.nan

    @property
    def min(self) -> float:
        return self._min if self.count else math.nan

    @property
    def max(self) -> float:
        return self._max if self.count else math.nan

    def snapshot(self) -> dict[str, float]:
        """All tracked statistics as a flat dict (``p50``-style keys)."""
        out = {"count": float(self.count), "mean": self.mean}
        for q, est in self._estimators.items():
            out[f"p{q * 100:g}".replace(".", "_")] = est.value()
        return out

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        qs = ", ".join(f"p{q * 100:g}" for q in self._estimators)
        return f"QuantileSketch(n={self.count}, tracking=[{qs}])"
