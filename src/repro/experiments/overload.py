"""Overload-control experiments (E11): server-side defense of latency.

E10 showed what happens when only the *client* defends itself: retries
amplify load and tip the small edge queues into a metastable storm.
These experiments add the server half — queue disciplines, adaptive
admission, priority shedding, brownout serving — and measure what each
buys on the calibrated DNN-inference workload (saturation 13 req/s per
8-core site, DESIGN.md §6).  Five sections:

* :func:`discipline_sweep` — one site at 1.23× saturation under FIFO,
  drop-tail FIFO, adaptive LIFO and CoDel.  Unbounded FIFO serves every
  request late (p95 grows with the backlog); the overload-aware
  disciplines keep the *served* p95 bounded by shedding stale work.
* :func:`admission_pulse` — a 2× overload pulse against no admission, a
  static concurrency limit, and the AIMD and gradient adaptive limits.
  The adaptive limits collapse during the pulse and reopen after it, so
  goodput recovers as soon as the pulse ends instead of after a long
  backlog drain.
* :func:`priority_shedding` — three request classes at 1.5× saturation;
  per-class admission shares preserve the high-priority class while the
  sheddable classes absorb the refusals.
* :func:`brownout_tradeoff` — equal offered load served by drop-tail
  versus a brownout dimmer that degrades service (a smaller model)
  under pressure: more goodput, fewer refusals, price reported as the
  degraded fraction.
* :func:`storm_defense` — the E10 metastable cell (retrying client that
  cannot cancel) replayed against protected stations (CoDel + AIMD
  admission): the server keeps sojourns below the client timeout, the
  retry feedback loop never closes, and the storm does not ignite.

All experiments are deterministic given the config seed.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.experiments.config import ExperimentConfig
from repro.parallel.seeding import derive_seed
from repro.mitigation.admission import (
    AdaptiveAdmission,
    AIMDConcurrencyLimit,
    GradientConcurrencyLimit,
    StaticConcurrencyLimit,
)
from repro.queueing.distributions import Exponential
from repro.sim import (
    AdaptiveLIFODiscipline,
    BrownoutController,
    CoDelDiscipline,
    ConstantLatency,
    EdgeDeployment,
    EdgeSite,
    OpenLoopSource,
    ResilientClient,
    RetryPolicy,
    Simulation,
)
from repro.stats.overload import OverloadSummary, summarize_overload
from repro.workload.service import DNNInferenceModel

__all__ = [
    "DisciplineRow",
    "DisciplineResult",
    "PulseRow",
    "PulseResult",
    "PriorityClassRow",
    "PriorityResult",
    "BrownoutRow",
    "BrownoutResult",
    "DefenseRow",
    "DefenseResult",
    "discipline_sweep",
    "admission_pulse",
    "priority_shedding",
    "brownout_tradeoff",
    "storm_defense",
]

EDGE_RTT_MS = 1.0
STORM_SITES = 5


def _model():
    return DNNInferenceModel()


def _one_site(
    sim: Simulation,
    queue_capacity: int | None = None,
    discipline=None,
    admission=None,
    brownout=None,
):
    """A single saturable edge site on the calibrated DNN workload."""
    model = _model()
    site = EdgeSite(
        sim,
        "s0",
        model.cores,
        ConstantLatency.from_ms(EDGE_RTT_MS),
        model.service_dist(),
        queue_capacity=queue_capacity,
        discipline=discipline,
        admission=admission,
        brownout=brownout,
    )
    return site, EdgeDeployment(sim, [site])


def _slo_goodput(log, start: float, end: float, slo: float) -> float:
    """Served-within-SLO requests per second, among those created in
    [start, end)."""
    b = log.breakdown()
    mask = (b.created >= start) & (b.created < end)
    hits = int((b.end_to_end[mask] <= slo).sum())
    return hits / (end - start)


# -- discipline sweep -----------------------------------------------------


@dataclass(frozen=True)
class DisciplineRow:
    """One queue discipline under sustained overload."""

    label: str
    summary: OverloadSummary
    slo_goodput: float

    @property
    def p95(self) -> float:
        return self.summary.latency.p95 if self.summary.latency is not None else np.nan


@dataclass(frozen=True)
class DisciplineResult:
    """Discipline comparison at one overloaded arrival rate."""

    rate: float
    slo: float
    rows: list[DisciplineRow]

    def row(self, label: str) -> DisciplineRow:
        return next(r for r in self.rows if r.label == label)


def discipline_sweep(
    cfg: ExperimentConfig,
    rate: float = 16.0,
    duration: float = 400.0,
    slo: float = 2.0,
) -> DisciplineResult:
    """Compare waiting-line disciplines on one site at 1.23× saturation.

    The offered 16 req/s exceeds the site's 13 req/s capacity, so some
    work *must* be refused; the question is what latency the admitted
    work sees.  Unbounded FIFO refuses nothing and serves everything
    stale; drop-tail bounds the queue but still serves in arrival
    order; adaptive LIFO and CoDel keep the served p95 near the
    no-queue baseline.
    """
    plans = [
        ("fifo", {}),
        ("fifo-cap", {"queue_capacity": 64}),
        ("adaptive-lifo", {"discipline": AdaptiveLIFODiscipline(pressure_threshold=8)}),
        ("codel", {"discipline": CoDelDiscipline(target=0.3)}),
    ]
    cutoff = duration * 0.25
    rows = []
    for i, (label, kw) in enumerate(plans):
        sim = Simulation(derive_seed(cfg.seed, i))
        site, edge = _one_site(sim, **kw)
        OpenLoopSource(sim, edge, Exponential(1.0 / rate), site="s0", stop_time=duration)
        sim.run(until=duration)
        lat = edge.log.breakdown().after(cutoff).end_to_end
        summary = summarize_overload(
            duration=duration, stations=[site.station], latencies=lat
        )
        rows.append(
            DisciplineRow(label, summary, _slo_goodput(edge.log, cutoff, duration, slo))
        )
    return DisciplineResult(rate=rate, slo=slo, rows=rows)


# -- adaptive admission under a pulse -------------------------------------


@dataclass(frozen=True)
class PulseRow:
    """One admission policy through an overload pulse."""

    label: str
    summary: OverloadSummary
    post_slo_goodput: float  # served-within-SLO rate in the recovery window
    post_p95: float  # p95 of requests created in the recovery window
    final_limit: float | None  # adaptive limit at end of run (None = n/a)


@dataclass(frozen=True)
class PulseResult:
    """Admission comparison across an overload pulse.

    ``recovered(label)`` is post-pulse SLO goodput over the offered base
    rate — 1.0 means the policy serves the full base load within SLO as
    soon as the pulse ends.
    """

    base_rate: float
    pulse_rate: float
    pulse_window: tuple[float, float]
    recovery_window: tuple[float, float]
    slo: float
    rows: list[PulseRow]

    def row(self, label: str) -> PulseRow:
        return next(r for r in self.rows if r.label == label)

    def recovered(self, label: str) -> float:
        return self.row(label).post_slo_goodput / self.base_rate


def admission_pulse(
    cfg: ExperimentConfig,
    base_rate: float = 8.0,
    pulse_rate: float = 18.0,
    duration: float = 720.0,
    pulse_start: float = 240.0,
    pulse_len: float = 60.0,
    recovery_len: float = 120.0,
    slo: float = 3.0,
) -> PulseResult:
    """Overload pulse vs admission policies: who recovers goodput fastest.

    Base load is edge-friendly (8 of 13 req/s); the pulse adds 18 req/s
    for a minute (2× saturation total).  Without admission the backlog
    built during the pulse takes minutes to drain, so requests arriving
    *after* the pulse still miss the SLO.  The adaptive limits shed the
    pulse at the door, keep the queue short, and serve the post-pulse
    base load within SLO immediately.  The static limit shows why
    hand-tuning is fragile: sized for headroom, it admits far too much
    backlog during the pulse.
    """
    pulse_end = pulse_start + pulse_len
    recovery = (pulse_end, pulse_end + recovery_len)

    def make_plans():
        return [
            ("none", None),
            ("static-64", AdaptiveAdmission(StaticConcurrencyLimit(64.0))),
            (
                "aimd",
                AdaptiveAdmission(
                    AIMDConcurrencyLimit(latency_target=1.0, max_limit=64.0)
                ),
            ),
            (
                "gradient",
                AdaptiveAdmission(GradientConcurrencyLimit(initial=16.0, max_limit=64.0)),
            ),
        ]

    rows = []
    for i, (label, admission) in enumerate(make_plans()):
        sim = Simulation(derive_seed(cfg.seed, i))
        site, edge = _one_site(sim, admission=admission)
        OpenLoopSource(
            sim, edge, Exponential(1.0 / base_rate), site="s0", stop_time=duration
        )
        sim.schedule(
            pulse_start,
            lambda: OpenLoopSource(
                sim, edge, Exponential(1.0 / pulse_rate), site="s0", stop_time=pulse_end
            ),
        )
        sim.run(until=duration)
        b = edge.log.breakdown()
        mask = (b.created >= recovery[0]) & (b.created < recovery[1])
        post = b.end_to_end[mask]
        summary = summarize_overload(
            duration=duration, stations=[site.station], latencies=b.end_to_end
        )
        limit = None
        if admission is not None and hasattr(admission.limit, "limit"):
            limit = float(admission.limit.limit)
        rows.append(
            PulseRow(
                label,
                summary,
                _slo_goodput(edge.log, recovery[0], recovery[1], slo),
                float(np.quantile(post, 0.95)) if post.size else np.nan,
                limit,
            )
        )
    return PulseResult(
        base_rate=base_rate,
        pulse_rate=pulse_rate,
        pulse_window=(pulse_start, pulse_end),
        recovery_window=recovery,
        slo=slo,
        rows=rows,
    )


# -- priority-aware shedding ----------------------------------------------


@dataclass(frozen=True)
class PriorityClassRow:
    """Per-class outcome under overload (one admission policy)."""

    priority: int
    offered: int
    served: int
    refused: int

    @property
    def served_fraction(self) -> float:
        return self.served / self.offered if self.offered else 0.0


@dataclass(frozen=True)
class PriorityResult:
    """Uniform vs priority-aware shedding at 1.5× saturation."""

    rate: float
    shares: dict[int, float]
    uniform: list[PriorityClassRow]
    priority: list[PriorityClassRow]

    def served_fraction(self, policy: str, priority: int) -> float:
        rows = self.uniform if policy == "uniform" else self.priority
        return next(r for r in rows if r.priority == priority).served_fraction


def _class_rows(log, admission: AdaptiveAdmission, n_classes: int) -> list[PriorityClassRow]:
    served = {c: 0 for c in range(n_classes)}
    for r in log.requests:
        served[r.priority] += 1
    rows = []
    for c in range(n_classes):
        refused = admission.rejected_by_class.get(c, 0)
        rows.append(PriorityClassRow(c, served[c] + refused, served[c], refused))
    return rows


def priority_shedding(
    cfg: ExperimentConfig,
    rate: float = 20.0,
    duration: float = 400.0,
    mix: tuple[float, ...] = (0.2, 0.3, 0.5),
    shares: dict[int, float] | None = None,
) -> PriorityResult:
    """Three request classes at 1.5× saturation, with and without shares.

    Class 0 (most important) is 20% of traffic — 4 req/s, well under the
    13 req/s capacity — so a priority-aware door *can* serve essentially
    all of it.  Uniform admission instead spreads the refusals evenly
    and loses a third of the important class.  The AIMD limit is floored
    at one slot per server: the door may shed the queue, but it never
    clamps below the station's parallelism, which is what would starve
    the protected class during deep collapses.
    """
    if shares is None:
        shares = {0: 1.0, 1: 0.5, 2: 0.25}
    p = np.asarray(mix, dtype=float)
    p = p / p.sum()
    n_classes = len(mix)

    def draw(rng) -> int:
        return int(rng.choice(n_classes, p=p))

    results = {}
    for i, (label, share_map) in enumerate([("uniform", None), ("priority", shares)]):
        sim = Simulation(derive_seed(cfg.seed, i))
        admission = AdaptiveAdmission(
            AIMDConcurrencyLimit(latency_target=1.0, min_limit=8.0, max_limit=64.0),
            priority_shares=share_map,
        )
        _site, edge = _one_site(sim, admission=admission)
        OpenLoopSource(
            sim, edge, Exponential(1.0 / rate), site="s0", stop_time=duration,
            priority=draw,
        )
        sim.run(until=duration)
        results[label] = _class_rows(edge.log, admission, n_classes)
    return PriorityResult(
        rate=rate, shares=dict(shares),
        uniform=results["uniform"], priority=results["priority"],
    )


# -- brownout vs pure dropping --------------------------------------------


@dataclass(frozen=True)
class BrownoutRow:
    """One serving strategy at the shared offered load."""

    label: str
    summary: OverloadSummary

    @property
    def p95(self) -> float:
        return self.summary.latency.p95 if self.summary.latency is not None else np.nan


@dataclass(frozen=True)
class BrownoutResult:
    """Drop-tail vs brownout at equal offered load."""

    rate: float
    rows: list[BrownoutRow]

    def row(self, label: str) -> BrownoutRow:
        return next(r for r in self.rows if r.label == label)

    @property
    def goodput_gain(self) -> float:
        """Brownout goodput over drop-tail goodput (> 1 = brownout wins)."""
        drop = self.row("drop-tail").summary.goodput
        return self.row("brownout").summary.goodput / drop if drop else np.inf


def brownout_tradeoff(
    cfg: ExperimentConfig,
    rate: float = 16.0,
    duration: float = 400.0,
    queue_capacity: int = 16,
    degraded_scale: float = 0.4,
) -> BrownoutResult:
    """Degrade-don't-drop: brownout against drop-tail at 1.23× saturation.

    Both stations bound their queue at 16 waiting requests.  Drop-tail
    refuses the excess (~19% of arrivals).  The brownout dimmer instead
    serves requests with a model whose forward pass costs 0.4× when the
    estimated wait climbs, raising effective capacity past the offered
    load — nearly everyone is served, a reported fraction of them
    degraded.
    """
    plans = [
        ("drop-tail", None),
        (
            "brownout",
            BrownoutController(
                degraded_scale=degraded_scale, target_wait=0.25, full_wait=1.0
            ),
        ),
    ]
    cutoff = duration * 0.25
    rows = []
    for i, (label, brownout) in enumerate(plans):
        sim = Simulation(derive_seed(cfg.seed, i))
        site, edge = _one_site(sim, queue_capacity=queue_capacity, brownout=brownout)
        OpenLoopSource(sim, edge, Exponential(1.0 / rate), site="s0", stop_time=duration)
        sim.run(until=duration)
        lat = edge.log.breakdown().after(cutoff).end_to_end
        rows.append(
            BrownoutRow(
                label,
                summarize_overload(
                    duration=duration, stations=[site.station], latencies=lat
                ),
            )
        )
    return BrownoutResult(rate=rate, rows=rows)


# -- storm defense ---------------------------------------------------------


@dataclass(frozen=True)
class DefenseRow:
    """One (rate, protection) cell of the storm-defense replay.

    ``effective_latency`` censors failed operations at the SLO deadline,
    matching E10's reporting.
    """

    rate: float
    protected: bool
    effective_latency: float
    amplification: float
    failure_rate: float
    sheds: int
    rejects: int


@dataclass(frozen=True)
class DefenseResult:
    """E10's metastable retry storm, with and without server-side control."""

    slo_deadline: float
    rows: list[DefenseRow]

    def row(self, rate: float, protected: bool) -> DefenseRow:
        return next(
            r for r in self.rows if r.rate == rate and r.protected is protected
        )


def _defended_edge(sim: Simulation, protected: bool):
    """The E10 five-site edge, optionally with per-station defenses."""
    model = _model()
    service = model.service_dist()
    sites = []
    for i in range(STORM_SITES):
        kw = {}
        if protected:
            kw = {
                "discipline": CoDelDiscipline(target=0.5),
                "admission": AdaptiveAdmission(
                    AIMDConcurrencyLimit(latency_target=1.0, max_limit=64.0)
                ),
            }
        sites.append(
            EdgeSite(
                sim, f"s{i}", model.cores,
                ConstantLatency.from_ms(EDGE_RTT_MS), service, **kw,
            )
        )
    return sites, EdgeDeployment(sim, sites)


def storm_defense(
    cfg: ExperimentConfig,
    rates: tuple[float, ...] = (8.0, 10.0),
    duration: float = 600.0,
    slo_deadline: float = 6.0,
    timeout: float = 1.5,
) -> DefenseResult:
    """Replay the E10 storm client against protected stations.

    The client is E10's worst case: timeouts without cancellation, three
    attempts, so expired work still burns servers while retries pile on.
    Unprotected at 10 req/s/site this is metastable (amplification near
    the retry cap, ~100% failures).  Protected stations keep sojourns
    under the client timeout — CoDel sheds stale waiters, AIMD admission
    caps the in-system count — so attempts either fail fast (and retry
    against a short queue) or succeed before the timer fires; the
    feedback loop that sustains the storm never closes.
    """
    rows = []
    cutoff = duration * 0.2
    for i, rate in enumerate(rates):
        for protected in (False, True):
            sim = Simulation(derive_seed(cfg.seed, i, int(protected)))
            sites, edge = _defended_edge(sim, protected)
            client = ResilientClient(
                sim,
                edge,
                timeout=timeout,
                slo_deadline=slo_deadline,
                retry=RetryPolicy(max_attempts=3, backoff_base=0.1, backoff_cap=1.0),
                cancel_on_timeout=False,
            )
            for s in range(STORM_SITES):
                OpenLoopSource(
                    sim, client, Exponential(1.0 / rate), site=f"s{s}",
                    stop_time=duration,
                )
            sim.run()
            ok = client.log.breakdown().after(cutoff).end_to_end
            n_failed = sum(1 for r in client.failed if r.created >= cutoff)
            effective = np.concatenate([ok, np.full(n_failed, slo_deadline)])
            amp = client.attempts / client.operations if client.operations else 1.0
            total = len(ok) + n_failed
            rows.append(
                DefenseRow(
                    rate=rate,
                    protected=protected,
                    effective_latency=float(effective.mean()) if total else np.nan,
                    amplification=float(amp),
                    failure_rate=(n_failed / total) if total else 0.0,
                    sheds=sum(s.station.shed for s in sites),
                    rejects=sum(s.station.rejected for s in sites),
                )
            )
    return DefenseResult(slo_deadline=slo_deadline, rows=rows)
