"""Experiment sizing knobs.

Two presets: ``FAST`` keeps every experiment under a few seconds (CI and
benchmarks), ``FULL`` uses the sample sizes that pin tail percentiles
tightly (for regenerating EXPERIMENTS.md numbers).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["ExperimentConfig", "FAST", "FULL"]


@dataclass(frozen=True)
class ExperimentConfig:
    """Sizing of the figure experiments.

    Attributes
    ----------
    requests_per_site:
        Simulated requests per edge site per sweep point.
    azure_duration:
        Virtual seconds of synthetic Azure trace replayed (Figs 8–10).
    azure_functions:
        Number of serverless functions generated.
    seed:
        Base seed; every experiment derives independent streams from it.
    workers:
        Process count for independent simulation runs within an
        experiment (sweep points, paired edge/cloud runs); ``None``
        defers to ``$REPRO_WORKERS`` (default 1).  Results are
        bit-identical for every worker count (:mod:`repro.parallel`).
    checkpoint:
        Path of a run journal (:mod:`repro.experiments.store`): the
        sweep-shaped experiments replay completed tasks from it and
        durably append fresh ones, so a killed run resumes
        bit-identically.  ``None`` (default) disables journaling with
        zero overhead.
    resume:
        Require ``checkpoint`` to already exist (fail fast on a
        mistyped path instead of silently recomputing from scratch).
    """

    requests_per_site: int = 40_000
    azure_duration: float = 2 * 3600.0
    azure_functions: int = 40
    seed: int = 2021
    workers: int | None = None
    checkpoint: str | None = None
    resume: bool = False

    def __post_init__(self):
        if self.requests_per_site < 1000:
            raise ValueError(f"requests_per_site too small: {self.requests_per_site}")
        if self.azure_duration <= 0 or self.azure_functions < 5:
            raise ValueError("invalid azure trace sizing")
        if self.workers is not None and self.workers < 1:
            raise ValueError(f"workers must be >= 1, got {self.workers}")
        if self.resume and self.checkpoint is None:
            raise ValueError("resume=True requires a checkpoint path")


FAST = ExperimentConfig(requests_per_site=30_000, azure_duration=3600.0)
FULL = ExperimentConfig(requests_per_site=200_000, azure_duration=6 * 3600.0)
