"""Analytic-vs-measured validation of Section 4.2.

The paper validates Corollary 3.1.1 against its EC2 measurements:
for the typical-cloud setup (Δn ≈ 30 ms as the paper quotes it) the
analytic cutoff is ρ* = 0.64 against a measured 0.61 (k = 5), and
ρ* = 0.75 against a measured ~0.85·(11/13) (k = 10, 2 servers/site).

This module reproduces that comparison three ways:

1. the paper's own numbers (recorded anchors);
2. our unit-consistent analytic prediction
   (:meth:`~repro.core.comparator.EdgeCloudComparator.predict_cutoff_utilization`);
3. our simulated crossover.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.comparator import EdgeCloudComparator
from repro.core.inversion import calibrate_time_unit, cutoff_utilization_paper
from repro.core.scenarios import TYPICAL_CLOUD
from repro.experiments.config import FAST, ExperimentConfig
from repro.parallel.seeding import derive_seed

__all__ = ["ValidationRow", "validation_table", "PAPER_ANCHORS"]

#: (k_machines, machines_per_site, paper predicted cutoff, paper measured cutoff)
PAPER_ANCHORS = (
    (5, 1, 0.64, 8.0 / 13.0),
    (10, 2, 0.75, 11.0 / 13.0),
)


@dataclass(frozen=True)
class ValidationRow:
    """One row of the §4.2 validation table."""

    k_machines: int
    paper_predicted: float
    paper_measured: float
    our_predicted: float
    our_measured: float | None

    @property
    def prediction_error(self) -> float | None:
        """Relative error of our analytic prediction vs our measurement."""
        if self.our_measured is None or self.our_measured == 0:
            return None
        return abs(self.our_predicted - self.our_measured) / self.our_measured


def validation_table(config: ExperimentConfig = FAST) -> list[ValidationRow]:
    """Reproduce the paper's analytic-model validation (Section 4.2)."""
    rows = []
    for i, (k, machines, paper_pred, paper_meas) in enumerate(PAPER_ANCHORS):
        scenario = TYPICAL_CLOUD if machines == 1 else TYPICAL_CLOUD.with_machines(machines)
        cmp_ = EdgeCloudComparator(
            scenario, requests_per_site=config.requests_per_site, seed=derive_seed(config.seed, i)
        )
        _, measured = cmp_.find_crossover(
            "mean", utilizations=np.arange(0.35, 0.95, 0.05)
        )
        rows.append(
            ValidationRow(
                k_machines=k,
                paper_predicted=paper_pred,
                paper_measured=paper_meas,
                our_predicted=cmp_.predict_cutoff_utilization(),
                our_measured=measured,
            )
        )
    return rows


def paper_formula_consistency() -> dict[str, float]:
    """Show the paper's two anchors imply one consistent time unit.

    Returns the seconds-per-formula-unit implied by each anchor and the
    cutoff Corollary 3.1.1 then predicts for the *other* anchor — the
    out-of-sample check described in DESIGN.md §6.
    """
    delta_n = 0.030  # the paper's quoted Δn ≈ 30 ms for the typical cloud
    u5 = calibrate_time_unit(delta_n, 5, 0.64, edge_servers=1)
    u10 = calibrate_time_unit(delta_n, 10, 0.75, edge_servers=2)
    cross_predict_10 = cutoff_utilization_paper(
        delta_n, 10, edge_servers=2, time_unit=u5
    )
    cross_predict_5 = cutoff_utilization_paper(delta_n, 5, edge_servers=1, time_unit=u10)
    return {
        "unit_from_k5_anchor": u5,
        "unit_from_k10_anchor": u10,
        "k10_cutoff_predicted_from_k5_unit": cross_predict_10,
        "k5_cutoff_predicted_from_k10_unit": cross_predict_5,
    }
