"""Experiment runners regenerating every figure/table of the paper.

Each ``figN()`` function reproduces the corresponding figure of the
evaluation (Section 4) and returns a structured result whose fields are
the series the paper plots; :mod:`repro.experiments.report` renders them
as text tables.  ``benchmarks/`` wires each runner to a pytest-benchmark
target (see DESIGN.md §4 for the experiment index).
"""

from repro.experiments.config import ExperimentConfig, FAST, FULL
from repro.experiments.figures import (
    fig2_spatial_skew,
    fig3_mean_typical,
    fig4_mean_distant,
    fig5_tail_distant,
    fig6_distribution,
    fig7_cutoff_utilizations,
    fig8_azure_workload,
    fig9_azure_latency,
    fig10_azure_per_site,
)
from repro.experiments.paper_report import generate_report
from repro.experiments.persist import (
    dump_all_figures,
    dump_experiment,
    load_result,
    save_result,
)
from repro.experiments.result import (
    ExperimentResult,
    ExperimentSpec,
    available,
    register,
    run_experiment,
)
from repro.experiments.sensitivity import (
    cutoff_vs_cores,
    cutoff_vs_delta_n,
    cutoff_vs_service_cv2,
    cutoff_vs_sites,
)
from repro.experiments.validation import validation_table

__all__ = [
    "generate_report",
    "dump_all_figures",
    "dump_experiment",
    "save_result",
    "load_result",
    "ExperimentResult",
    "ExperimentSpec",
    "available",
    "register",
    "run_experiment",
    "cutoff_vs_cores",
    "cutoff_vs_delta_n",
    "cutoff_vs_service_cv2",
    "cutoff_vs_sites",
    "ExperimentConfig",
    "FAST",
    "FULL",
    "fig2_spatial_skew",
    "fig3_mean_typical",
    "fig4_mean_distant",
    "fig5_tail_distant",
    "fig6_distribution",
    "fig7_cutoff_utilizations",
    "fig8_azure_workload",
    "fig9_azure_latency",
    "fig10_azure_per_site",
    "validation_table",
]
