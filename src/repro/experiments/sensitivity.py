"""Sensitivity analysis of the inversion cutoff to model parameters.

The calibration in DESIGN.md §6 fixes (cores, service CoV) against one
measured anchor; this module quantifies how the predicted cutoff moves
when each assumption moves — the analysis a reviewer would ask for:

* :func:`cutoff_vs_cores` — effective concurrency per machine;
* :func:`cutoff_vs_service_cv2` — service-time variability;
* :func:`cutoff_vs_sites` — fleet geo-distribution (k);
* :func:`cutoff_vs_delta_n` — the RTT advantage itself (Figure 7's
  analytic backbone, on a dense grid).

All use the unit-consistent exact solver, so they run in milliseconds
and can sweep densely.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from collections.abc import Sequence

from repro.core.inversion import cutoff_utilization_exact
from repro.core.scenarios import Scenario
from repro.core.tail import cutoff_utilization_tail
from repro.workload.service import DNNInferenceModel

__all__ = [
    "SensitivityRow",
    "cutoff_vs_cores",
    "cutoff_vs_service_cv2",
    "cutoff_vs_sites",
    "cutoff_vs_delta_n",
]


@dataclass(frozen=True)
class SensitivityRow:
    """One point of a sensitivity sweep."""

    parameter: str
    value: float
    mean_cutoff: float
    tail_cutoff: float


def _cutoffs(scenario: Scenario, ca2: float = 1.0) -> tuple[float, float]:
    mean = cutoff_utilization_exact(
        scenario.delta_n,
        scenario.service.core_service_rate,
        scenario.edge_servers_per_site,
        scenario.cloud_servers,
        ca2=ca2,
        cs2=scenario.service.cv2,
    )
    tail = cutoff_utilization_tail(
        scenario.delta_n,
        scenario.service.core_service_rate,
        scenario.edge_servers_per_site,
        scenario.cloud_servers,
        q=0.95,
        ca2=ca2,
        cs2=scenario.service.cv2,
    )
    return mean, tail


def cutoff_vs_cores(
    scenario: Scenario, cores: Sequence[int] = (1, 2, 4, 8, 16)
) -> list[SensitivityRow]:
    """Cutoff utilization as the per-machine concurrency varies.

    More lanes per machine = more local pooling = later inversion; this
    sweep bounds how much the cores calibration matters.
    """
    rows = []
    for c in cores:
        svc = DNNInferenceModel(
            saturation_rate=scenario.service.saturation_rate,
            cores=int(c),
            cv2=scenario.service.cv2,
        )
        s = replace(scenario, service=svc)
        mean, tail = _cutoffs(s)
        rows.append(SensitivityRow("cores", float(c), mean, tail))
    return rows


def cutoff_vs_service_cv2(
    scenario: Scenario, cv2s: Sequence[float] = (0.0, 0.25, 0.5, 1.0, 2.0)
) -> list[SensitivityRow]:
    """Cutoff utilization as the service-time variability varies."""
    rows = []
    for cv2 in cv2s:
        svc = DNNInferenceModel(
            saturation_rate=scenario.service.saturation_rate,
            cores=scenario.service.cores,
            cv2=float(cv2),
        )
        s = replace(scenario, service=svc)
        mean, tail = _cutoffs(s)
        rows.append(SensitivityRow("service_cv2", float(cv2), mean, tail))
    return rows


def cutoff_vs_sites(
    scenario: Scenario, sites: Sequence[int] = (2, 5, 10, 20, 50)
) -> list[SensitivityRow]:
    """Cutoff utilization as the fleet spreads over more sites.

    Corollary 3.1.2's approach to the :math:`k \\to \\infty` limit,
    on the exact model.
    """
    rows = []
    for k in sites:
        s = scenario.with_sites(int(k))
        mean, tail = _cutoffs(s)
        rows.append(SensitivityRow("sites", float(k), mean, tail))
    return rows


def cutoff_vs_delta_n(
    scenario: Scenario, rtts_ms: Sequence[float] = (5, 10, 15, 24, 40, 54, 80, 120)
) -> list[SensitivityRow]:
    """Cutoff utilization across a dense cloud-RTT grid (Figure 7, analytic)."""
    rows = []
    for rtt in rtts_ms:
        if rtt <= scenario.edge_rtt_ms:
            raise ValueError(
                f"cloud RTT {rtt} ms must exceed edge RTT {scenario.edge_rtt_ms} ms"
            )
        s = replace(scenario, cloud_rtt_ms=float(rtt))
        mean, tail = _cutoffs(s)
        rows.append(SensitivityRow("cloud_rtt_ms", float(rtt), mean, tail))
    return rows
