"""Runners for Figures 2–10 of the paper.

Every runner is deterministic given its :class:`ExperimentConfig` and
returns a small dataclass holding exactly the series the corresponding
figure plots.  The request-rate sweeps follow the paper: 6–12 req/s per
edge server, μ = 13 req/s saturation, edge RTT 1 ms.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.comparator import ComparisonResult, EdgeCloudComparator
from repro.core.scenarios import DISTANT_CLOUD, PAPER_SCENARIOS, Scenario, TYPICAL_CLOUD
from repro.experiments.config import FAST, ExperimentConfig
from repro.parallel.seeding import derive_seed
from repro.sim.fastsim import SystemResult, simulate_edge_system, simulate_single_queue_system
from repro.stats.summary import LatencySummary, summarize
from repro.stats.timeseries import windowed_mean
from repro.workload.azure import AzureTraceConfig, generate_azure_workload, group_functions_into_sites
from repro.workload.spatial import HotspotGrid
from repro.workload.trace import RequestTrace

__all__ = [
    "fig2_spatial_skew",
    "fig3_mean_typical",
    "fig4_mean_distant",
    "fig5_tail_distant",
    "fig6_distribution",
    "fig7_cutoff_utilizations",
    "fig8_azure_workload",
    "fig9_azure_latency",
    "fig10_azure_per_site",
    "AZURE_CLOUD_RTT_MS",
    "PAPER_RATE_SWEEP",
]

#: Per-edge-server request rates swept in Figures 3–5 (req/s).
PAPER_RATE_SWEEP = (6.0, 7.0, 8.0, 9.0, 10.0, 11.0, 12.0)

#: RTT of the Azure-trace experiment's cloud (Ohio → Montreal, 25–28 ms).
AZURE_CLOUD_RTT_MS = 26.0


# ---------------------------------------------------------------------------
# Figure 2 — spatial load skew across edge cells
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class Fig2Result:
    """Per-cell load distribution (the Figure 2 box plot)."""

    per_cell_mean_load: np.ndarray
    quartiles: tuple[float, float, float]
    skew: dict[str, float]


def fig2_spatial_skew(config: ExperimentConfig = FAST) -> Fig2Result:
    """Figure 2: per-cell load of a taxi-like urban mobility workload.

    A 10×10 hex grid of 1 km edge cells under a drifting Gaussian-
    mixture hotspot intensity, sampled hourly over a day.
    """
    grid = HotspotGrid(rows=10, cols=10, seed=config.seed)
    times = np.linspace(0.0, 86_400.0, 24, endpoint=False)
    loads = grid.sample_cell_loads(
        np.random.default_rng(config.seed), total_rate=200.0, times=times, window=60.0
    )
    per_cell = loads.mean(axis=1)
    q = np.quantile(per_cell, [0.25, 0.5, 0.75])
    return Fig2Result(
        per_cell_mean_load=per_cell,
        quartiles=(float(q[0]), float(q[1]), float(q[2])),
        skew=grid.skew_statistics(loads),
    )


# ---------------------------------------------------------------------------
# Figures 3–5 — rate sweeps (mean and tail, typical and distant cloud)
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class SweepFigure:
    """One latency-vs-rate figure: k=5 and k=10 fleet variants."""

    scenario: Scenario
    metric: str
    k5: ComparisonResult
    k10: ComparisonResult

    def crossovers(self) -> dict[str, float | None]:
        """Per-server crossover rates for both fleet sizes."""
        x5 = self.k5.crossover_rate(self.metric)
        x10 = self.k10.crossover_rate(self.metric)
        return {
            "k5": x5,
            "k10": None if x10 is None else x10 / 2.0,  # 2 machines/site
        }


def _sweep_figure(
    scenario: Scenario, metric: str, config: ExperimentConfig
) -> SweepFigure:
    # Both sweeps share one checkpoint file when the config names one:
    # each comparator's journal scope (scenario + seed + sizing) keeps
    # their records disjoint, so a killed figure resumes either half.
    k5 = EdgeCloudComparator(
        scenario, requests_per_site=config.requests_per_site, seed=config.seed
    ).sweep(
        PAPER_RATE_SWEEP,
        workers=config.workers,
        checkpoint=config.checkpoint,
        resume=config.resume,
    )
    two = scenario.with_machines(2)
    k10 = EdgeCloudComparator(
        two, requests_per_site=config.requests_per_site, seed=derive_seed(config.seed, 1)
    ).sweep(
        [2.0 * r for r in PAPER_RATE_SWEEP],
        workers=config.workers,
        checkpoint=config.checkpoint,
        resume=config.resume,
    )
    return SweepFigure(scenario=scenario, metric=metric, k5=k5, k10=k10)


def fig3_mean_typical(config: ExperimentConfig = FAST) -> SweepFigure:
    """Figure 3: mean latency, edge (1 ms) vs typical cloud (~24 ms).

    Paper: crossover at 8 req/s for k=5 and ~11 req/s for k=10.
    """
    return _sweep_figure(TYPICAL_CLOUD, "mean", config)


def fig4_mean_distant(config: ExperimentConfig = FAST) -> SweepFigure:
    """Figure 4: mean latency, edge vs distant cloud (~54 ms).

    Paper: inversion at 11 req/s for k=5; none below 12 req/s for k=10.
    """
    return _sweep_figure(DISTANT_CLOUD, "mean", config)


def fig5_tail_distant(config: ExperimentConfig = FAST) -> SweepFigure:
    """Figure 5: p95 latency for the Figure 4 setup.

    Paper: tail inversion at 8 req/s (k=5) and 11 req/s (k=10) — well
    before the mean inverts.
    """
    return _sweep_figure(DISTANT_CLOUD, "p95", config)


# ---------------------------------------------------------------------------
# Figure 6 — latency distributions at 10 req/s
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class Fig6Result:
    """Distribution summaries behind the violin plot."""

    rate: float
    edge: LatencySummary
    cloud: LatencySummary


def fig6_distribution(config: ExperimentConfig = FAST) -> Fig6Result:
    """Figure 6: edge vs distant-cloud latency distribution at 10 req/s.

    Paper: the edge distribution is wider with a longer tail.
    """
    point = EdgeCloudComparator(
        DISTANT_CLOUD, requests_per_site=config.requests_per_site, seed=config.seed
    ).measure_point(10.0)
    return Fig6Result(rate=10.0, edge=point.edge, cloud=point.cloud)


# ---------------------------------------------------------------------------
# Figure 7 — cutoff utilization vs cloud location
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class Fig7Result:
    """Measured cutoff utilizations per cloud placement."""

    rtts_ms: tuple[float, ...]
    mean_cutoff: tuple[float | None, ...]
    tail_cutoff: tuple[float | None, ...]
    predicted_cutoff: tuple[float, ...] = field(default=())


def fig7_cutoff_utilizations(config: ExperimentConfig = FAST) -> Fig7Result:
    """Figure 7: utilization above which the edge is worse, per cloud RTT.

    Sweeps the paper's four cloud placements (15/24/54/80 ms) at k=5 and
    reports mean and p95 cutoffs plus the analytic prediction.  Cutoffs
    of ``None`` mean no inversion below ~95% utilization (the paper's
    "close to saturation").
    """
    means, tails, preds, rtts = [], [], [], []
    grid = np.arange(0.15, 0.97, 0.0665)  # ~13 sweep points
    for i, scenario in enumerate(PAPER_SCENARIOS):
        cmp_ = EdgeCloudComparator(
            scenario, requests_per_site=config.requests_per_site, seed=derive_seed(config.seed, i)
        )
        rates = [scenario.rate_for_utilization(float(u)) for u in grid]
        # One shared checkpoint file: per-comparator scopes (scenario +
        # derived seed) keep the four placements' records disjoint.
        result = cmp_.sweep(
            rates,
            workers=config.workers,
            checkpoint=config.checkpoint,
            resume=config.resume,
        )
        means.append(result.crossover_utilization("mean"))
        tails.append(result.crossover_utilization("p95"))
        preds.append(cmp_.predict_cutoff_utilization())
        rtts.append(scenario.cloud_rtt_ms)
    return Fig7Result(
        rtts_ms=tuple(rtts),
        mean_cutoff=tuple(means),
        tail_cutoff=tuple(tails),
        predicted_cutoff=tuple(preds),
    )


# ---------------------------------------------------------------------------
# Figures 8–10 — Azure-trace experiments
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class AzureExperiment:
    """Shared state of the Azure-trace experiments (Figs 8–10)."""

    site_traces: list[RequestTrace]
    edge: SystemResult
    cloud: SystemResult
    scenario: Scenario
    window: float


def _azure_experiment(config: ExperimentConfig) -> AzureExperiment:
    """Replay a synthetic Azure workload over 5 edge sites vs one cloud.

    Service times from the trace are rescaled so the *mean* edge-site
    utilization sits at ~65% — the moderate regime the paper's Figure 9
    operates in (sites oscillate around the inversion point).
    """
    scenario = Scenario(
        name="azure replay (Montreal, 26 ms)", cloud_rtt_ms=AZURE_CLOUD_RTT_MS
    )
    rng = np.random.default_rng(config.seed)
    functions = generate_azure_workload(
        AzureTraceConfig(
            n_functions=config.azure_functions,
            duration=config.azure_duration,
            total_rate=40.0,
            noise_cv2=0.3,
            spike_factor=3.0,
        ),
        rng,
    )
    sites = group_functions_into_sites(functions, scenario.sites, rng)
    # Rescale service demands so the *hottest* site averages rho = 0.7:
    # cooler sites then sit well below, and transient bursts push hot
    # sites past the inversion point without unbounded overload — the
    # regime Figure 9 operates in (a real deployment sheds or thrashes
    # at sustained rho > 1, which an open queue cannot mimic).
    lanes = scenario.edge_servers_per_site
    rho_hot = max(
        t.mean_rate * t.service_times.mean() / lanes for t in sites if len(t) > 2
    )
    scale = 0.70 / rho_hot
    sites = [
        RequestTrace(t.arrival_times, t.service_times * scale) for t in sites
    ]
    edge = simulate_edge_system(
        [t.arrival_times for t in sites],
        [t.service_times for t in sites],
        lanes,
        scenario.edge_latency(),
        rng,
    )
    merged = RequestTrace.merge(sites)
    cloud = simulate_single_queue_system(
        merged.arrival_times,
        merged.service_times,
        scenario.cloud_servers,
        scenario.cloud_latency(),
        rng,
    )
    return AzureExperiment(
        site_traces=sites,
        edge=edge,
        cloud=cloud,
        scenario=scenario,
        window=60.0,
    )


@dataclass(frozen=True)
class Fig8Result:
    """Per-site request-rate time series (Figure 8)."""

    window_starts: np.ndarray
    site_rates: list[np.ndarray]

    @property
    def spatial_cv(self) -> float:
        """CoV of per-site mean rates (spatial skew strength)."""
        means = np.array([np.nanmean(r) for r in self.site_rates])
        return float(means.std() / means.mean())


def fig8_azure_workload(config: ExperimentConfig = FAST) -> Fig8Result:
    """Figure 8: the workload seen by five edge sites over time."""
    exp = _azure_experiment(config)
    horizon = config.azure_duration
    starts = None
    series = []
    for trace in exp.site_traces:
        s, rates = trace.windowed_rates(exp.window, horizon=horizon)
        starts = s if starts is None else starts
        series.append(rates)
    return Fig8Result(window_starts=starts, site_rates=series)


@dataclass(frozen=True)
class Fig9Result:
    """Windowed mean latency series, edge vs cloud (Figure 9)."""

    window_starts: np.ndarray
    edge_mean: np.ndarray
    cloud_mean: np.ndarray

    @property
    def inversion_fraction(self) -> float:
        """Fraction of windows in which the edge is worse than the cloud."""
        valid = ~(np.isnan(self.edge_mean) | np.isnan(self.cloud_mean))
        if not valid.any():
            return 0.0
        return float((self.edge_mean[valid] > self.cloud_mean[valid]).mean())

    @property
    def edge_variability(self) -> float:
        """Std of the edge series over std of the cloud series."""
        e = self.edge_mean[~np.isnan(self.edge_mean)]
        c = self.cloud_mean[~np.isnan(self.cloud_mean)]
        return float(e.std() / c.std()) if c.std() > 0 else float("inf")


def fig9_azure_latency(config: ExperimentConfig = FAST) -> Fig9Result:
    """Figure 9: mean edge and cloud latencies under the Azure workload.

    Paper: edge sites frequently invert; the cloud series is smoother
    thanks to aggregate-workload smoothing.
    """
    exp = _azure_experiment(config)
    horizon = config.azure_duration
    starts, edge_mean = windowed_mean(
        exp.edge.arrival, exp.edge.end_to_end, exp.window, horizon=horizon
    )
    _, cloud_mean = windowed_mean(
        exp.cloud.arrival, exp.cloud.end_to_end, exp.window, horizon=horizon
    )
    return Fig9Result(window_starts=starts, edge_mean=edge_mean, cloud_mean=cloud_mean)


@dataclass(frozen=True)
class Fig10Result:
    """Per-site latency summaries vs the cloud (Figure 10's box plot)."""

    site_summaries: list[LatencySummary]
    cloud_summary: LatencySummary
    site_rates: list[float]
    site_utilizations: list[float]


def fig10_azure_per_site(config: ExperimentConfig = FAST) -> Fig10Result:
    """Figure 10: per-edge-site latency distributions under the trace.

    Paper: unequal workload split makes sites' latency distributions
    differ; the least-loaded site offers the lowest latency.
    """
    exp = _azure_experiment(config)
    lanes = exp.scenario.edge_servers_per_site
    summaries, rates, utils = [], [], []
    for i, trace in enumerate(exp.site_traces):
        summaries.append(summarize(exp.edge.for_site(i).end_to_end))
        rates.append(trace.mean_rate)
        utils.append(trace.mean_rate * float(trace.service_times.mean()) / lanes)
    return Fig10Result(
        site_summaries=summaries,
        cloud_summary=summarize(exp.cloud.end_to_end),
        site_rates=rates,
        site_utilizations=utils,
    )
