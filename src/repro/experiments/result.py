"""Unified experiment-result API: one return type, one registry.

Historically every experiment runner returned its own dataclass
(``SweepFigure``, ``PulseResult``, …) and every consumer — the CLI, the
JSON dumper, the markdown report — kept its own parallel table of
runners and renderers.  This module collapses that into:

* :class:`ExperimentResult` — the single result envelope: ``name``,
  rendered ``text``, JSON-safe ``tables`` (named row-lists) and
  ``series`` (named numeric columns) harvested from the runner's
  structured result, ``metadata`` (config, description) and the original
  ``raw`` object for code that wants the typed dataclass;
* :class:`ExperimentSpec` / :func:`register` — the experiment registry,
  mapping a name to its runner and renderer once.  ``repro.cli`` builds
  its command table from it (the old ``EXPERIMENTS`` dict remains as a
  deprecation shim), and :mod:`repro.experiments.persist` uses it to
  materialize results;
* :func:`run_experiment` — run a registered experiment and wrap the
  outcome.

Telemetry composes orthogonally: :func:`run_experiment` builds ordinary
``Simulation`` objects, so installing an observability factory
(:func:`repro.obs.install`, or ``--telemetry`` on the CLI) makes every
experiment emit windowed records with no per-experiment wiring.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from collections.abc import Callable
from typing import Any

from repro.experiments import figures as F
from repro.experiments import report as R
from repro.experiments.config import ExperimentConfig

__all__ = [
    "ExperimentResult",
    "ExperimentSpec",
    "register",
    "get_spec",
    "available",
    "run_experiment",
]


@dataclass
class ExperimentResult:
    """The envelope every experiment resolves to.

    ``tables`` maps a dotted path inside the runner's structured result
    to a list of flat row-dicts; ``series`` maps paths to numeric
    columns.  Both are JSON-safe (NaN → ``None``) so ``as_dict`` /
    ``save`` need no further conversion.  ``raw`` keeps the runner's
    original typed result for in-process consumers and is *not*
    persisted by :meth:`save` (its JSON projection is what ``tables`` /
    ``series`` already carry, and the legacy
    :func:`repro.experiments.persist.save_result` still persists it
    whole).
    """

    name: str
    text: str
    tables: dict[str, list[dict]] = field(default_factory=dict)
    series: dict[str, list] = field(default_factory=dict)
    metadata: dict = field(default_factory=dict)
    raw: Any = None

    def as_dict(self) -> dict:
        """JSON-safe projection (everything except ``raw``).

        An enveloped ``experiment-result`` wire document
        (:mod:`repro.experiments.schema`): ``schema_version`` + ``kind``
        plus the stable payload fields.
        """
        from repro.experiments import schema as wire

        return wire.dump_experiment_result(self)

    def save(self, path: str | Path) -> Path:
        """Persist the projection to ``path`` as indented JSON."""
        from repro.experiments import schema as wire

        return wire.dump(self, path)

    @classmethod
    def load(cls, path: str | Path) -> "ExperimentResult":
        """Load a persisted projection (enveloped or legacy shape).

        The loaded result carries ``raw=None`` — only the JSON
        projection crosses the file boundary.
        """
        from repro.experiments import schema as wire

        return wire.load_experiment_result(
            json.loads(Path(path).read_text(encoding="utf-8"))
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ExperimentResult(name={self.name!r}, tables={sorted(self.tables)}, "
            f"series={len(self.series)})"
        )


@dataclass(frozen=True)
class ExperimentSpec:
    """One registered experiment: how to run it and how to render it."""

    name: str
    description: str
    runner: Callable[[ExperimentConfig], Any]
    renderer: Callable[[Any], str]


_REGISTRY: dict[str, ExperimentSpec] = {}


def register(
    name: str,
    description: str,
    runner: Callable[[ExperimentConfig], Any],
    renderer: Callable[[Any], str],
    *,
    overwrite: bool = False,
) -> ExperimentSpec:
    """Add an experiment to the registry (used by extensions and tests)."""
    if name in _REGISTRY and not overwrite:
        raise ValueError(f"experiment {name!r} already registered")
    spec = ExperimentSpec(name, description, runner, renderer)
    _REGISTRY[name] = spec
    return spec


def get_spec(name: str) -> ExperimentSpec:
    """Look up one experiment; raises ``KeyError`` with the known names."""
    spec = _REGISTRY.get(name)
    if spec is None:
        raise KeyError(f"unknown experiment {name!r}; known: {sorted(_REGISTRY)}")
    return spec


def available() -> list[ExperimentSpec]:
    """Registered experiments in registration order."""
    return list(_REGISTRY.values())


def run_experiment(name: str, config: ExperimentConfig) -> ExperimentResult:
    """Run a registered experiment and wrap its outcome in the envelope."""
    from repro.experiments.persist import result_to_dict

    spec = get_spec(name)
    raw = spec.runner(config)
    tables: dict[str, list[dict]] = {}
    series: dict[str, list] = {}
    _harvest(result_to_dict(raw), "", tables, series)
    return ExperimentResult(
        name=name,
        text=spec.renderer(raw),
        tables=tables,
        series=series,
        metadata={
            "experiment": name,
            "description": spec.description,
            "config": result_to_dict(config),
        },
        raw=raw,
    )


def _is_scalar(x: Any) -> bool:
    return x is None or isinstance(x, (str, int, float, bool))


def _flatten_row(row: dict, prefix: str = "") -> dict:
    """One table row: nested dicts become dotted scalar columns."""
    flat: dict = {}
    for key, value in row.items():
        path = f"{prefix}.{key}" if prefix else str(key)
        if isinstance(value, dict):
            flat.update(_flatten_row(value, path))
        elif _is_scalar(value):
            flat[path] = value
        # nested lists stay only in ``raw`` — a cell must be a scalar
    return flat


def _harvest(node: Any, prefix: str, tables: dict, series: dict) -> None:
    """Walk a JSON-safe result tree, collecting tables and series.

    A list of dicts is a table (rows flattened to dotted scalar
    columns); a list of numbers (or ``None`` for NaN) is a series;
    dicts recurse with dotted prefixes.  Anything else stays only in
    ``raw`` — harvesting is a view, not a round-trip.
    """
    if isinstance(node, dict):
        for key, value in node.items():
            _harvest(value, f"{prefix}.{key}" if prefix else str(key), tables, series)
        return
    if isinstance(node, list) and node and prefix:
        if all(isinstance(row, dict) for row in node):
            rows = [_flatten_row(row) for row in node]
            if any(rows):
                tables[prefix] = rows
            return
        numeric = all(
            v is None or (isinstance(v, (int, float)) and not isinstance(v, bool))
            for v in node
        )
        if numeric:
            series[prefix] = node


# -- built-in experiments ------------------------------------------------
def _run_validation(cfg: ExperimentConfig) -> dict:
    from repro.experiments.validation import paper_formula_consistency, validation_table

    return {"table": validation_table(cfg), "consistency": paper_formula_consistency()}


def _render_validation(raw: dict) -> str:
    return (
        R.render_validation(raw["table"])
        + f"\npaper formula unit consistency: {raw['consistency']}"
    )


def _run_resilience(cfg: ExperimentConfig) -> dict:
    from repro.experiments.resilience import outage_recovery, retry_storm

    return {"storm": retry_storm(cfg), "recovery": outage_recovery(cfg)}


def _render_resilience(raw: dict) -> str:
    return R.render_retry_storm(raw["storm"]) + "\n\n" + R.render_outage_recovery(raw["recovery"])


def _run_overload(cfg: ExperimentConfig) -> dict:
    from repro.experiments import overload as O

    return {
        "disciplines": O.discipline_sweep(cfg),
        "admission_pulse": O.admission_pulse(cfg),
        "priority_shedding": O.priority_shedding(cfg),
        "brownout": O.brownout_tradeoff(cfg),
        "storm_defense": O.storm_defense(cfg),
    }


def _render_overload(raw: dict) -> str:
    return "\n\n".join(
        [
            R.render_discipline_sweep(raw["disciplines"]),
            R.render_admission_pulse(raw["admission_pulse"]),
            R.render_priority_shedding(raw["priority_shedding"]),
            R.render_brownout_tradeoff(raw["brownout"]),
            R.render_storm_defense(raw["storm_defense"]),
        ]
    )


def _run_telemetry(cfg: ExperimentConfig):
    from repro.experiments.telemetry import pulse_timeline

    return pulse_timeline(cfg)


def _render_telemetry(raw) -> str:
    from repro.experiments.telemetry import render_pulse_timeline

    return render_pulse_timeline(raw)


register("fig2", "spatial load skew across edge cells (taxi stand-in)",
         F.fig2_spatial_skew, R.render_fig2)
register("fig3", "mean latency, edge vs typical cloud (24 ms)",
         F.fig3_mean_typical, R.render_sweep_figure)
register("fig4", "mean latency, edge vs distant cloud (54 ms)",
         F.fig4_mean_distant, R.render_sweep_figure)
register("fig5", "p95 latency, edge vs distant cloud",
         F.fig5_tail_distant, R.render_sweep_figure)
register("fig6", "latency distributions at 10 req/s",
         F.fig6_distribution, R.render_fig6)
register("fig7", "cutoff utilization vs cloud location",
         F.fig7_cutoff_utilizations, R.render_fig7)
register("fig8", "per-site workload under the Azure-like trace",
         F.fig8_azure_workload, R.render_fig8)
register("fig9", "edge vs cloud latency over time (Azure-like trace)",
         F.fig9_azure_latency, R.render_fig9)
register("fig10", "per-site latency box plot (Azure-like trace)",
         F.fig10_azure_per_site, R.render_fig10)
register("validation", "the §4.2 analytic-vs-measured table",
         _run_validation, _render_validation)
register("resilience", "retry storms and breaker+failover recovery under edge outages",
         _run_resilience, _render_resilience)
register("overload", "server-side overload control: disciplines, admission, brownout",
         _run_overload, _render_overload)
register("telemetry", "windowed live telemetry through the E11 admission pulse (E12)",
         _run_telemetry, _render_telemetry)
