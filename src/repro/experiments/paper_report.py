"""One-shot markdown report of the full evaluation.

:func:`generate_report` runs every figure experiment plus the
validation table and renders a single markdown document — the
machine-generated core of EXPERIMENTS.md, regenerable at any sizing
with ``python -m repro report``.
"""

from __future__ import annotations

import time

from repro.experiments import figures as F
from repro.experiments import report as R
from repro.experiments.config import FAST, ExperimentConfig
from repro.experiments.validation import paper_formula_consistency, validation_table

__all__ = ["generate_report"]

_SECTIONS = (
    ("Figure 2 — spatial load skew", lambda c: R.render_fig2(F.fig2_spatial_skew(c))),
    ("Figure 3 — mean latency, typical cloud", lambda c: R.render_sweep_figure(F.fig3_mean_typical(c))),
    ("Figure 4 — mean latency, distant cloud", lambda c: R.render_sweep_figure(F.fig4_mean_distant(c))),
    ("Figure 5 — tail latency, distant cloud", lambda c: R.render_sweep_figure(F.fig5_tail_distant(c))),
    ("Figure 6 — latency distributions", lambda c: R.render_fig6(F.fig6_distribution(c))),
    ("Figure 7 — cutoff utilization vs cloud RTT", lambda c: R.render_fig7(F.fig7_cutoff_utilizations(c))),
    ("Figure 8 — Azure-like per-site workload", lambda c: R.render_fig8(F.fig8_azure_workload(c))),
    ("Figure 9 — latency over time", lambda c: R.render_fig9(F.fig9_azure_latency(c))),
    ("Figure 10 — per-site latency", lambda c: R.render_fig10(F.fig10_azure_per_site(c))),
)


def generate_report(
    config: ExperimentConfig = FAST, *, only: list[str] | None = None
) -> str:
    """Run the evaluation and return a markdown report.

    Parameters
    ----------
    only:
        Restrict to sections whose title contains any of these
        substrings (case-insensitive); default runs everything.
    """
    parts = [
        "# Evaluation report — The Hidden Cost of the Edge (reproduction)",
        "",
        f"config: requests_per_site={config.requests_per_site}, "
        f"azure_duration={config.azure_duration:.0f}s, seed={config.seed}",
        "",
    ]
    wanted = None if only is None else [s.lower() for s in only]
    ran = 0
    for title, runner in _SECTIONS:
        if wanted is not None and not any(w in title.lower() for w in wanted):
            continue
        start = time.perf_counter()
        body = runner(config)
        elapsed = time.perf_counter() - start
        parts += [f"## {title}", "", "```", body, "```", f"_({elapsed:.1f} s)_", ""]
        ran += 1
    if wanted is None or any("valid" in w for w in wanted):
        rows = validation_table(config)
        consistency = paper_formula_consistency()
        parts += [
            "## Section 4.2 — analytic validation",
            "",
            "```",
            R.render_validation(rows),
            f"formula unit consistency: {consistency}",
            "```",
            "",
        ]
        ran += 1
    if ran == 0:
        raise ValueError(f"no sections match {only!r}")
    return "\n".join(parts)
