"""E12: windowed live telemetry through the E11 admission pulse.

E11's ``admission_pulse`` reports *aggregate* recovery numbers — goodput
before/during/after a 2× overload pulse.  This experiment replays the
AIMD-protected variant of the same scenario with the observability layer
enabled (:mod:`repro.obs`) and reports the run as a *timeline*: one row
per telemetry window carrying throughput, p50/p95 of completions, the
refusal taxonomy, station occupancy and the adaptive admission limit —
the collapse-and-recover trajectory that the aggregate table can only
imply.

The run doubles as the acceptance check for span tracing: for every
served request the recorder's four serving spans (``net.out`` +
``queue`` + ``service`` + ``net.back``) must sum to the request-log
end-to-end latency exactly (float tolerance); the maximum observed
discrepancy is carried in the result and asserted by
``tests/test_observability.py``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro import obs
from repro.experiments.config import ExperimentConfig
from repro.experiments.overload import _one_site
from repro.mitigation.admission import AdaptiveAdmission, AIMDConcurrencyLimit
from repro.obs.spans import SERVING_SPANS
from repro.queueing.distributions import Exponential
from repro.sim import OpenLoopSource, Simulation

__all__ = ["WindowRow", "PulseTimelineResult", "pulse_timeline", "render_pulse_timeline"]


@dataclass(frozen=True)
class WindowRow:
    """One telemetry window of the pulse run."""

    t_start: float
    t_end: float
    completed: int
    throughput: float
    p50_ms: float | None
    p95_ms: float | None
    rejected: int
    dropped: int
    shed: int
    queue: int
    busy: int
    utilization: float | None
    admission_limit: float | None


@dataclass(frozen=True)
class PulseTimelineResult:
    """The E12 timeline plus its span-reconciliation evidence."""

    policy: str
    base_rate: float
    pulse_rate: float
    pulse_start: float
    pulse_end: float
    duration: float
    window: float
    rows: list[WindowRow]
    completed: int
    refused_total: int
    span_count: int
    max_reconciliation_error: float


def pulse_timeline(
    cfg: ExperimentConfig,
    base_rate: float = 8.0,
    pulse_rate: float = 18.0,
    duration: float = 720.0,
    pulse_start: float = 240.0,
    pulse_len: float = 60.0,
    window: float = 20.0,
) -> PulseTimelineResult:
    """E11's AIMD admission pulse, observed live through ``repro.obs``.

    Identical topology, load shape and seed derivation to
    :func:`repro.experiments.overload.admission_pulse`'s ``aimd`` plan;
    the only addition is an installed telemetry factory, which is the
    point — observability composes with an existing experiment without
    touching its construction code.
    """
    pulse_end = pulse_start + pulse_len
    exporter = obs.InMemoryExporter()
    limits: list[float] = []
    # The experiment needs its own in-memory telemetry, but a caller may
    # have installed a provider already (the CLI's --telemetry flag);
    # inherit that provider's exporters so the run streams there too.
    outer = obs.current_telemetry()
    extra = list(outer.exporters) if outer is not None else []
    factory = lambda: obs.Telemetry(  # noqa: E731 - scoped enablement
        window=window,
        quantiles=(0.5, 0.95),
        exporters=[exporter, *extra],
        label="pulse/aimd",
    )
    with obs.installed(factory):
        sim = Simulation(cfg.seed)
        admission = AdaptiveAdmission(AIMDConcurrencyLimit(latency_target=1.0, max_limit=64.0))
        site, edge = _one_site(sim, admission=admission)
        OpenLoopSource(sim, edge, Exponential(1.0 / base_rate), site="s0", stop_time=duration)
        sim.schedule(
            pulse_start,
            lambda: OpenLoopSource(
                sim, edge, Exponential(1.0 / pulse_rate), site="s0", stop_time=pulse_end
            ),
        )
        # Sample the adaptive limit at every window boundary so the rows
        # can show the collapse/recovery trajectory next to its effects.
        for t in np.arange(window, duration + window / 2.0, window):
            sim.schedule_at(float(t), lambda: limits.append(admission.limit.limit))
        sim.run(until=duration)
        sim.run()  # drain in-flight work so telemetry flushes its last window
        tel = sim.telemetry

    # Acceptance invariant: serving spans tile each request exactly.
    serving_sums: dict[int, float] = {}
    for span in tel.spans.spans:
        if span.name in SERVING_SPANS:
            serving_sums[span.trace_id] = serving_sums.get(span.trace_id, 0.0) + span.duration
    max_err = 0.0
    for request in edge.log.requests:
        total = serving_sums.get(request.rid)
        err = abs(total - request.end_to_end) if total is not None else float("inf")
        if err > max_err:
            max_err = err

    rows = []
    for rec in exporter.windows:
        # Windows with no activity emit no record, so align the sampled
        # limit by the window's end time, not by row index.
        i = round(rec["t_end"] / window) - 1
        lat = rec["latency"]
        s0 = rec["stations"].get("s0", {})
        refused = rec["refused"]
        rows.append(
            WindowRow(
                t_start=rec["t_start"],
                t_end=rec["t_end"],
                completed=rec["completed"],
                throughput=rec["throughput"],
                p50_ms=None if lat["p50"] is None else lat["p50"] * 1e3,
                p95_ms=None if lat["p95"] is None else lat["p95"] * 1e3,
                rejected=refused["rejected"],
                dropped=refused["dropped"],
                shed=refused["shed"],
                queue=s0.get("queue", 0),
                busy=s0.get("busy", 0),
                utilization=s0.get("utilization"),
                admission_limit=limits[i] if 0 <= i < len(limits) else None,
            )
        )
    return PulseTimelineResult(
        policy="aimd",
        base_rate=base_rate,
        pulse_rate=pulse_rate,
        pulse_start=pulse_start,
        pulse_end=pulse_end,
        duration=duration,
        window=window,
        rows=rows,
        completed=tel.completed,
        refused_total=sum(tel.refused.values()),
        span_count=tel.spans.recorded,
        max_reconciliation_error=max_err,
    )


def render_pulse_timeline(result: PulseTimelineResult) -> str:
    """Text table of the windowed timeline (``*`` marks pulse windows)."""
    lines = [
        "E12 — windowed telemetry through the admission pulse "
        f"(policy={result.policy}, window={result.window:g}s)",
        f"base {result.base_rate:g} req/s, pulse +{result.pulse_rate:g} req/s over "
        f"[{result.pulse_start:g}, {result.pulse_end:g}) s; * = pulse window",
        f"{'window':>14} {'done':>5} {'thru/s':>7} {'p50ms':>7} {'p95ms':>8} "
        f"{'rej':>5} {'queue':>5} {'util':>5} {'limit':>6}",
    ]

    def fmt(v, spec, missing="-"):
        return missing if v is None else format(v, spec)

    for row in result.rows:
        pulsing = row.t_start < result.pulse_end and row.t_end > result.pulse_start
        mark = "*" if pulsing else " "
        lines.append(
            f"{mark}{row.t_start:>6.0f}-{row.t_end:<6.0f} {row.completed:>5} "
            f"{row.throughput:>7.2f} {fmt(row.p50_ms, '7.1f'):>7} {fmt(row.p95_ms, '8.1f'):>8} "
            f"{row.rejected:>5} {row.queue:>5} {fmt(row.utilization, '5.2f'):>5} "
            f"{fmt(row.admission_limit, '6.1f'):>6}"
        )
    lines.append(
        f"completed {result.completed}, refused {result.refused_total}, "
        f"{result.span_count} spans recorded; "
        f"max span-vs-log reconciliation error {result.max_reconciliation_error:.3g} s"
    )
    return "\n".join(lines)
