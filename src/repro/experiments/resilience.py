"""Resilience experiments: retry storms and breaker-driven recovery.

The paper's inversion analysis (Figures 3-5) assumes every request is
delivered exactly once.  Real edge clients retry on timeout, hedge slow
requests, and fail over to the cloud — and each of those mechanisms
feeds back into the very queues whose utilization decides whether edge
beats cloud.  Two experiments quantify that feedback on the calibrated
DNN-inference workload (DESIGN.md §6):

* :func:`retry_storm` — sweep per-site arrival rate with a naive client
  and with a retrying client (timeouts but no cancellation, so expired
  attempts still occupy servers).  Retry amplification pushes the k
  per-site edge queues into a metastable regime the pooled cloud queue
  shrugs off, moving the edge/cloud inversion crossover to *lower*
  utilization — the paper's headline effect, made worse by the client's
  own defenses.
* :func:`outage_recovery` — hold utilization in the edge-friendly
  regime and inject site outages (stochastic failures plus one
  correlated two-site window).  Compare a naive client, a retry-only
  client, and the full resilience stack (retries + circuit breaker +
  edge->cloud failover); the stack restores the no-failure edge tail.

Both experiments are deterministic given the config seed and report
operation-level metrics (goodput, SLO attainment, amplification) via
:mod:`repro.stats.resilience`.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Sequence

import numpy as np

from repro.experiments.config import ExperimentConfig
from repro.parallel import run_tasks
from repro.parallel.seeding import derive_seed
from repro.queueing.distributions import Exponential
from repro.sim import (
    BreakerConfig,
    CloudDeployment,
    ConstantLatency,
    EdgeDeployment,
    EdgeSite,
    FailureInjector,
    LossyLatency,
    OpenLoopSource,
    ResilientClient,
    RetryPolicy,
    Simulation,
)
from repro.stats.resilience import ResilienceSummary, summarize_resilience
from repro.workload.service import DNNInferenceModel

__all__ = [
    "StormPoint",
    "StormResult",
    "RecoveryRow",
    "RecoveryResult",
    "retry_storm",
    "outage_recovery",
]

SITES = 5
EDGE_RTT_MS = 1.0
CLOUD_RTT_MS = 24.0


def _model():
    return DNNInferenceModel()


@dataclass(frozen=True)
class StormPoint:
    """One arrival rate of the retry-storm sweep (latencies in seconds).

    ``naive_*`` are mean end-to-end latencies without any client-side
    resilience.  ``retry_*`` are mean *effective* latencies through the
    retrying client: successes at their observed latency, failed
    operations censored at the SLO deadline (a failure costs the caller
    at least the deadline).
    """

    rate: float
    naive_edge: float
    naive_cloud: float
    retry_edge: float
    retry_cloud: float
    edge_amplification: float
    cloud_amplification: float
    edge_failure_rate: float


@dataclass(frozen=True)
class StormResult:
    """Retry-storm sweep plus the two inversion crossovers.

    A crossover is the lowest swept rate at which the edge latency
    metric exceeds the cloud's (``None`` if the edge wins everywhere).
    """

    points: list[StormPoint]
    slo_deadline: float
    naive_crossover: float | None
    retry_crossover: float | None


def _first_crossing(
    points: Sequence[StormPoint], edge_key: str, cloud_key: str
) -> float | None:
    for p in points:
        if getattr(p, edge_key) > getattr(p, cloud_key):
            return p.rate
    return None


def _build_topology(
    sim: Simulation,
    queue_capacity: int | None = None,
    link_outage: tuple[float, float] | None = None,
):
    """Edge (k sites) + pooled cloud on the calibrated DNN workload.

    ``link_outage`` black-holes site s2's network for a (start, end)
    window: the station stays up (health checks pass) but every request
    on the wire is lost — the failure mode only timeouts can detect.
    """
    model = _model()
    service = model.service_dist()
    sites = []
    for i in range(SITES):
        latency = ConstantLatency.from_ms(EDGE_RTT_MS)
        if link_outage is not None and i == 2:
            latency = LossyLatency(latency, outages=[link_outage])
        sites.append(
            EdgeSite(
                sim,
                f"s{i}",
                model.cores,
                latency,
                service,
                queue_capacity=queue_capacity,
            )
        )
    edge = EdgeDeployment(sim, sites)
    cloud = CloudDeployment(
        sim,
        servers=SITES * model.cores,
        latency=ConstantLatency.from_ms(CLOUD_RTT_MS),
        service_dist=service,
    )
    return sites, edge, cloud


def _drive(sim, target, rate: float, duration: float) -> None:
    for i in range(SITES):
        OpenLoopSource(
            sim, target, Exponential(1.0 / rate), site=f"s{i}", stop_time=duration
        )


def _storm_cell(
    seed: int, rate: float, duration: float, deadline: float, retrying: bool, edge: bool
) -> tuple[float, float, float]:
    """Run one (deployment, client) cell; return (effective mean latency,
    amplification, operation failure rate) past a 20% warm-up."""
    sim = Simulation(seed)
    _sites, edge_dep, cloud_dep = _build_topology(sim)
    deployment = edge_dep if edge else cloud_dep
    cutoff = duration * 0.2
    if not retrying:
        _drive(sim, deployment, rate, duration)
        sim.run()
        lat = deployment.log.breakdown().after(cutoff).end_to_end
        return float(lat.mean()), 1.0, 0.0
    client = ResilientClient(
        sim,
        deployment,
        timeout=1.5,
        slo_deadline=deadline,
        retry=RetryPolicy(max_attempts=3, backoff_base=0.1, backoff_cap=1.0),
        # The storm ingredient: expired attempts are NOT cancelled, so
        # they keep occupying servers while their retries pile on.
        cancel_on_timeout=False,
    )
    _drive(sim, client, rate, duration)
    sim.run()
    ok = client.log.breakdown().after(cutoff).end_to_end
    n_failed = sum(1 for r in client.failed if r.created >= cutoff)
    effective = np.concatenate([ok, np.full(n_failed, deadline)])
    amp = client.attempts / client.operations if client.operations else 1.0
    fail_rate = n_failed / (len(ok) + n_failed) if (len(ok) + n_failed) else 0.0
    return float(effective.mean()), float(amp), float(fail_rate)


def retry_storm(
    cfg: ExperimentConfig,
    rates: Sequence[float] = (5.0, 6.0, 7.0, 8.0, 9.0, 10.0),
    duration: float = 1000.0,
    slo_deadline: float = 6.0,
) -> StormResult:
    """Sweep arrival rate; compare naive vs retrying clients on both tiers.

    Saturation is 13 req/s per site (DESIGN.md §6), so the swept rates
    cover per-site utilizations 0.38-0.77 — straddling the paper's
    inversion crossover.
    """
    # Every (rate, client, tier) cell is an independently seeded run, so
    # the whole grid fans across processes (cfg.workers) with results
    # bit-identical to the sequential loop.
    tasks = []
    for i, rate in enumerate(rates):
        tasks += [
            (derive_seed(cfg.seed, i, 1), rate, duration, slo_deadline, False, True),
            (derive_seed(cfg.seed, i, 2), rate, duration, slo_deadline, False, False),
            (derive_seed(cfg.seed, i, 3), rate, duration, slo_deadline, True, True),
            (derive_seed(cfg.seed, i, 4), rate, duration, slo_deadline, True, False),
        ]
    from repro.experiments.store import open_journal

    journal, owned = open_journal(
        cfg.checkpoint,
        scope=f"retry_storm|seed={cfg.seed}|duration={duration}|slo={slo_deadline}",
        resume=cfg.resume,
    )
    try:
        cells = run_tasks(
            _storm_cell,
            tasks,
            workers=cfg.workers,
            label="storm cell",
            base_seed=cfg.seed,
            journal=journal,
        )
    finally:
        if owned:
            journal.close()
    points = []
    for i, rate in enumerate(rates):
        (ne, _, _), (nc, _, _), (re_, ea, ef), (rc, ca, _) = cells[4 * i : 4 * i + 4]
        points.append(StormPoint(rate, ne, nc, re_, rc, ea, ca, ef))
    return StormResult(
        points=points,
        slo_deadline=slo_deadline,
        naive_crossover=_first_crossing(points, "naive_edge", "naive_cloud"),
        retry_crossover=_first_crossing(points, "retry_edge", "retry_cloud"),
    )


@dataclass(frozen=True)
class RecoveryRow:
    """One client/failure configuration of the outage-recovery comparison."""

    label: str
    summary: ResilienceSummary

    @property
    def p95(self) -> float:
        return self.summary.latency.p95 if self.summary.latency is not None else np.nan


@dataclass(frozen=True)
class RecoveryResult:
    """Outage-recovery comparison at one edge-friendly arrival rate.

    ``recovery_fraction`` is how much of the outage-induced p95 inflation
    the full stack claws back: 1.0 means the resilient p95 equals the
    no-failure baseline, 0.0 means it is as bad as the naive outage run.
    """

    rate: float
    slo_deadline: float
    rows: list[RecoveryRow]

    @property
    def recovery_fraction(self) -> float:
        by = {r.label: r.p95 for r in self.rows}
        healthy, broken = by["edge healthy, naive"], by["edge outages, naive"]
        resilient = by["edge outages, breaker+failover"]
        if broken <= healthy:
            return 1.0
        return float((broken - resilient) / (broken - healthy))


def _naive_summary(deployment, duration: float, deadline: float) -> ResilienceSummary:
    lat = deployment.log.breakdown().end_to_end
    slo_hits = int((lat <= deadline).sum())
    return summarize_resilience(
        duration=duration,
        successes=len(lat),
        failures=0,
        slo_hits=slo_hits,
        attempts=len(lat),
        latencies=lat,
    )


def outage_recovery(
    cfg: ExperimentConfig,
    rate: float = 6.0,
    duration: float = 2400.0,
    slo_deadline: float = 3.0,
    mtbf: float = 400.0,
    mttr: float = 40.0,
) -> RecoveryResult:
    """Compare failure-handling strategies under injected edge outages.

    Four runs at the same edge-friendly rate (utilization ~0.46):
    no-failure baseline, naive under outages (stranded queues), retries
    only (bounded latency, lost goodput), and the full stack (retries +
    per-site circuit breakers + edge->cloud failover), which restores
    the baseline tail.  Three failure modes are injected together:
    stochastic per-site station failures (detected by the health
    oracle), one correlated two-site window at mid-run, and one
    link-level black-hole window on site s2 where the station looks
    healthy and only timeouts — hence the circuit breaker — can detect
    the loss.
    """
    model = _model()
    retry_kw = {
        "timeout": 1.5,
        "slo_deadline": slo_deadline,
        "retry": RetryPolicy(max_attempts=3, backoff_base=0.05, backoff_cap=0.5),
        "cancel_on_timeout": True,
    }
    full_kw = dict(
        retry_kw,
        breaker=BreakerConfig(
            window=20, failure_threshold=0.5, min_calls=5, reset_timeout=10.0
        ),
        saturation_threshold=4 * model.cores,
    )
    plans = [
        ("edge healthy, naive", False, None, False),
        ("edge outages, naive", True, None, False),
        ("edge outages, retries", True, retry_kw, False),
        ("edge outages, breaker+failover", True, full_kw, True),
    ]
    rows = []
    for i, (label, inject, client_kw, failover) in enumerate(plans):
        sim = Simulation(derive_seed(cfg.seed, i))
        link_outage = (duration * 0.25, duration * 0.25 + 60.0) if inject else None
        sites, edge, cloud = _build_topology(sim, link_outage=link_outage)
        if client_kw is None:
            target, client = edge, None
        else:
            client = ResilientClient(
                sim, edge, cloud if failover else None, **client_kw
            )
            target = client
        _drive(sim, target, rate, duration)
        if inject:
            injector = FailureInjector(
                sim, [s.station for s in sites], mtbf, mttr, duration
            )
            injector.schedule_outage(
                duration * 0.5, 90.0, [sites[0].station, sites[1].station]
            )
        sim.run()
        summary = (
            _naive_summary(edge, duration, slo_deadline)
            if client is None
            else client.summary(duration)
        )
        rows.append(RecoveryRow(label, summary))
    return RecoveryResult(rate=rate, slo_deadline=slo_deadline, rows=rows)
