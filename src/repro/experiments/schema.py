"""The unified wire schema: one versioned envelope for every result.

Before this module the repo serialized results in four ad-hoc JSON
shapes — ``ExperimentResult.as_dict()``, the campaign salvage report,
the telemetry exporter records and the golden ``expected.json`` — each
with its own field names and its own (or no) versioning story.  The
moment results cross a process boundary (``repro.service`` serves them
over HTTP, CI diffs them, dashboards consume the telemetry) those
shapes become public API, so they are pinned here, once:

* **Envelope.**  Every document carries ``schema_version`` (an integer,
  currently :data:`SCHEMA_VERSION`) and ``kind`` (one of
  :data:`KINDS`).  The rest of the top level is the kind's payload with
  stable field names.
* **Forward compatibility.**  Readers *ignore unknown keys* — a newer
  writer may add fields freely within a schema version.  Removing or
  renaming a field requires a ``schema_version`` bump, which this
  reader refuses loudly (:class:`SchemaVersionError` naming both
  versions) instead of mis-parsing.
* **Legacy tolerance.**  Documents written before the envelope existed
  (golden summaries stamped ``magic: repro-golden``, bare
  ``ExperimentResult.as_dict()`` dumps, telemetry records identified
  only by ``type``) load through the same entry points; the golden
  writer dual-stamps both shapes so older readers keep working.

Everything that turns a result object into JSON text goes through
:func:`dumps` / :func:`dump` (rule RPR011 flags raw ``json.dumps`` of
result objects elsewhere), and every consumer — CLI persistence, the
golden differ, telemetry export, each ``repro.service`` endpoint —
parses through :func:`parse_envelope` / :func:`load_document`.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

__all__ = [
    "SCHEMA_VERSION",
    "KINDS",
    "SchemaVersionError",
    "WireFormatError",
    "envelope",
    "parse_envelope",
    "stamp_telemetry",
    "dump_experiment_result",
    "load_experiment_result",
    "dump_campaign_result",
    "load_campaign_result",
    "dump_golden_summary",
    "load_golden_summary",
    "dump_salvage_report",
    "to_document",
    "load_document",
    "dumps",
    "dump",
    "load",
]

#: Current wire-schema version.  Bump ONLY on an incompatible change
#: (field removed/renamed/retyped); additions ride on the same version.
SCHEMA_VERSION = 1

#: Document kinds the envelope can carry.
KINDS = (
    "experiment-result",
    "campaign-result",
    "golden-summary",
    "salvage-report",
    "telemetry-window",
    "telemetry-summary",
    "campaign-job",
)

#: Legacy golden-file markers (pre-envelope format, still dual-stamped
#: by :func:`dump_golden_summary` so old readers keep working).
GOLDEN_MAGIC = "repro-golden"
GOLDEN_LEGACY_VERSION = 1


class WireFormatError(ValueError):
    """A document is structurally not a repro result envelope."""


class SchemaVersionError(WireFormatError):
    """The document's ``schema_version`` is newer than this reader.

    Raised instead of guessing: a bumped version means a field was
    removed, renamed or retyped, so silently reading the document could
    mis-attribute values.  The message names both versions.
    """


def envelope(kind: str, body: dict[str, Any]) -> dict[str, Any]:
    """Wrap ``body`` in the versioned envelope for ``kind``."""
    if kind not in KINDS:
        raise WireFormatError(f"unknown document kind {kind!r}; known: {KINDS}")
    return {"schema_version": SCHEMA_VERSION, "kind": kind, **body}


def _legacy_kind(doc: dict[str, Any]) -> str | None:
    """Infer the kind of a pre-envelope document, or ``None``."""
    if doc.get("magic") == GOLDEN_MAGIC:
        return "golden-summary"
    rtype = doc.get("type")
    if rtype in ("window", "summary"):
        return f"telemetry-{rtype}"
    if {"name", "tables", "series", "text"} <= set(doc):
        return "experiment-result"
    return None


def parse_envelope(
    doc: Any, *, expect: str | None = None
) -> tuple[str, dict[str, Any]]:
    """Validate the envelope; return ``(kind, payload)``.

    Unknown top-level keys are preserved in the returned payload and
    ignored by the typed loaders (forward compatibility).  ``expect``
    pins the kind, turning a mismatch into a loud error instead of a
    downstream ``KeyError``.
    """
    if not isinstance(doc, dict):
        raise WireFormatError(
            f"expected a result document (JSON object), got {type(doc).__name__}"
        )
    version = doc.get("schema_version")
    if version is None:
        kind = _legacy_kind(doc)
        if kind is None:
            raise WireFormatError(
                "document carries neither schema_version nor a recognizable "
                "legacy shape (golden magic, telemetry type, result fields)"
            )
        if kind == "golden-summary" and doc.get("version") not in (
            None, GOLDEN_LEGACY_VERSION,
        ):
            raise WireFormatError(
                f"legacy golden format version {doc.get('version')!r}; this "
                f"build reads {GOLDEN_LEGACY_VERSION}"
            )
    else:
        if isinstance(version, bool) or not isinstance(version, int):
            raise WireFormatError(
                f"schema_version must be an integer, got {version!r}"
            )
        if version > SCHEMA_VERSION:
            raise SchemaVersionError(
                f"document has schema_version {version}, this build reads "
                f"{SCHEMA_VERSION}; upgrade repro (or re-export the document "
                "with the older writer)"
            )
        if version < 1:
            raise WireFormatError(f"schema_version must be >= 1, got {version}")
        kind = doc.get("kind") or _legacy_kind(doc)
        if kind is None:
            raise WireFormatError("enveloped document is missing its 'kind'")
        if kind not in KINDS:
            raise WireFormatError(f"unknown document kind {kind!r}; known: {KINDS}")
    if expect is not None and kind != expect:
        raise WireFormatError(f"expected a {expect!r} document, got {kind!r}")
    return kind, doc


def _require(doc: dict, field: str, kind: str) -> Any:
    try:
        return doc[field]
    except KeyError:
        raise WireFormatError(f"{kind} document is missing {field!r}") from None


# ---------------------------------------------------------------------------
# Telemetry records
# ---------------------------------------------------------------------------

def stamp_telemetry(record: dict[str, Any]) -> dict[str, Any]:
    """Stamp ``schema_version`` onto a telemetry window/summary record.

    Telemetry keeps its historical ``type`` discriminator (the JSON-lines
    consumers key on it); the stamp ties each record to the same version
    stream as every other wire document.  Structural validation stays in
    :mod:`repro.obs.schema`.
    """
    record.setdefault("schema_version", SCHEMA_VERSION)
    return record


# ---------------------------------------------------------------------------
# ExperimentResult
# ---------------------------------------------------------------------------

def dump_experiment_result(result: Any) -> dict[str, Any]:
    """``ExperimentResult`` → enveloped document (everything but ``raw``)."""
    return envelope(
        "experiment-result",
        {
            "name": result.name,
            "metadata": result.metadata,
            "tables": result.tables,
            "series": result.series,
            "text": result.text,
        },
    )


def load_experiment_result(doc: Any) -> Any:
    """Enveloped (or legacy ``as_dict``) document → ``ExperimentResult``.

    ``raw`` is not on the wire, so the loaded result carries
    ``raw=None`` — the JSON projection in ``tables``/``series`` is the
    portable content.
    """
    from repro.experiments.result import ExperimentResult

    _, doc = parse_envelope(doc, expect="experiment-result")
    return ExperimentResult(
        name=str(_require(doc, "name", "experiment-result")),
        text=str(doc.get("text", "")),
        tables=dict(doc.get("tables", {})),
        series=dict(doc.get("series", {})),
        metadata=dict(doc.get("metadata", {})),
        raw=None,
    )


# ---------------------------------------------------------------------------
# CampaignResult
# ---------------------------------------------------------------------------

def _runs_payload(result: Any) -> dict[str, dict[str, Any]]:
    return {
        name: {"seed": run.seed, "metrics": run.metrics}
        for name, run in result.runs.items()
    }


def _quarantine_payload(result: Any) -> list[dict[str, Any]]:
    return [q.as_dict() for q in result.quarantined]


def dump_campaign_result(result: Any) -> dict[str, Any]:
    """``CampaignResult`` → enveloped document.

    ``outcomes`` (the raw supervised envelopes) stay in-process — they
    carry tracebacks and wall-clock attempt counts that legitimately
    differ across resumes; the wire document is exactly the
    deterministic content :meth:`CampaignResult.fingerprint` covers,
    plus the quarantine details.
    """
    return envelope(
        "campaign-result",
        {
            "campaign": result.campaign,
            "seed": result.seed,
            "digest": result.digest,
            "runs": _runs_payload(result),
            "quarantined": _quarantine_payload(result),
            "fingerprint": result.fingerprint(),
        },
    )


def load_campaign_result(doc: Any) -> Any:
    """Enveloped document → ``CampaignResult`` (without ``outcomes``).

    The stored fingerprint is recomputed from the loaded content and
    verified — a mismatch means the document was edited or truncated in
    transit, and silently trusting it would defeat the golden differ.
    """
    from repro.campaign.executor import ScenarioRun
    from repro.campaign.runner import CampaignResult, QuarantineRecord

    _, doc = parse_envelope(doc, expect="campaign-result")
    runs = {
        str(name): ScenarioRun(
            name=str(name),
            seed=int(_require(entry, "seed", "campaign-result")),
            metrics=dict(_require(entry, "metrics", "campaign-result")),
        )
        for name, entry in _require(doc, "runs", "campaign-result").items()
    }
    quarantined = [
        QuarantineRecord(
            name=str(_require(q, "name", "campaign-result")),
            reason=str(_require(q, "reason", "campaign-result")),
            detail=str(q.get("detail", "")),
            attempts=int(q.get("attempts", 0)),
        )
        for q in doc.get("quarantined", [])
    ]
    result = CampaignResult(
        campaign=str(_require(doc, "campaign", "campaign-result")),
        seed=int(_require(doc, "seed", "campaign-result")),
        digest=str(_require(doc, "digest", "campaign-result")),
        runs=runs,
        outcomes=[],
        quarantined=quarantined,
    )
    stored = doc.get("fingerprint")
    if stored is not None and stored != result.fingerprint():
        raise WireFormatError(
            f"campaign-result fingerprint mismatch: document says {stored}, "
            f"content hashes to {result.fingerprint()} — refusing a "
            "tampered/truncated result"
        )
    return result


# ---------------------------------------------------------------------------
# Golden summaries
# ---------------------------------------------------------------------------

def dump_golden_summary(result: Any) -> dict[str, Any]:
    """``CampaignResult`` → pinnable golden summary (dual-stamped).

    Carries both the unified envelope and the legacy
    ``magic``/``version`` markers, so a golden file written by this
    build still loads in pre-envelope checkouts during the deprecation
    window.
    """
    doc = envelope(
        "golden-summary",
        {
            "magic": GOLDEN_MAGIC,
            "version": GOLDEN_LEGACY_VERSION,
            "campaign": result.campaign,
            "seed": result.seed,
            "scenarios": _runs_payload(result),
            "quarantined": sorted([q.name, q.reason] for q in result.quarantined),
        },
    )
    return doc


def load_golden_summary(doc: Any) -> dict[str, Any]:
    """Golden document (enveloped or legacy) → the differ's canonical dict."""
    _, doc = parse_envelope(doc, expect="golden-summary")
    return {
        "campaign": doc.get("campaign"),
        "seed": doc.get("seed"),
        "scenarios": dict(_require(doc, "scenarios", "golden-summary")),
        "quarantined": [list(q) for q in doc.get("quarantined", [])],
    }


# ---------------------------------------------------------------------------
# Salvage reports
# ---------------------------------------------------------------------------

def dump_salvage_report(result: Any) -> dict[str, Any]:
    """``CampaignResult`` → enveloped quarantine/salvage report."""
    return envelope(
        "salvage-report",
        {
            "campaign": result.campaign,
            "seed": result.seed,
            "digest": result.digest,
            "scenarios": len(result.runs) + len(result.quarantined),
            "succeeded": len(result.runs),
            "quarantined": _quarantine_payload(result),
            "fingerprint": result.fingerprint(),
        },
    )


# ---------------------------------------------------------------------------
# Generic entry points
# ---------------------------------------------------------------------------

def to_document(obj: Any) -> dict[str, Any]:
    """Dispatch an in-process result object to its enveloped document."""
    from repro.campaign.runner import CampaignResult
    from repro.experiments.result import ExperimentResult

    if isinstance(obj, ExperimentResult):
        return dump_experiment_result(obj)
    if isinstance(obj, CampaignResult):
        return dump_campaign_result(obj)
    if isinstance(obj, dict):
        # Already a document: validate the envelope, pass through.
        parse_envelope(obj)
        return obj
    raise WireFormatError(
        f"no wire schema for {type(obj).__name__}; serializable results are "
        "ExperimentResult, CampaignResult and enveloped documents"
    )


def load_document(doc: Any) -> Any:
    """Parse any enveloped/legacy document into its typed object.

    Kinds without an in-process type (telemetry records, golden
    summaries, salvage reports) return the validated payload dict.
    """
    kind, doc = parse_envelope(doc)
    if kind == "experiment-result":
        return load_experiment_result(doc)
    if kind == "campaign-result":
        return load_campaign_result(doc)
    if kind == "golden-summary":
        return load_golden_summary(doc)
    return doc


def dumps(obj: Any, *, indent: int | None = None) -> str:
    """Serialize a result object/document to canonical JSON text."""
    return json.dumps(
        to_document(obj), indent=indent, sort_keys=True, allow_nan=False
    )


def dump(obj: Any, path: str | Path, *, indent: int | None = 2) -> Path:
    """Serialize to a file; returns the path written."""
    path = Path(path)
    path.write_text(dumps(obj, indent=indent) + "\n", encoding="utf-8")
    return path


def load(path: str | Path) -> Any:
    """Read and parse one enveloped/legacy document from a file."""
    return load_document(json.loads(Path(path).read_text(encoding="utf-8")))
