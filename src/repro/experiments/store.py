"""Journaled on-disk run store: crash-safe checkpoint/resume for sweeps.

A 500-point campaign killed at point 499 used to discard everything.
:class:`RunJournal` fixes that with the smallest durable structure that
preserves bit-identity: an append-only JSON-lines file mapping a
*task-spec hash* to the task's pickled result.

* **Keys, not positions.**  Every record is keyed by a SHA-256 over the
  journal *scope* (what experiment, which seed/sizing), the task label,
  the task index and the ``repr`` of its argument tuple.  Replays match
  on content, never on file order, so a journal survives task-list
  reordering, partial completion and concurrent sweeps sharing one file
  (their scopes differ).
* **Atomic, fsync'd appends.**  Each record is one ``\\n``-terminated
  line written with a single ``os.write`` and followed by ``os.fsync``
  — all writes go through :func:`fsync_append` (rule RPR009 flags any
  other write path in this module).  A crash mid-append leaves at most
  one truncated *final* line, which the loader drops; corruption
  anywhere else raises :class:`JournalCorruptError` instead of silently
  resuming from bad state.
* **Exact results.**  Results are pickled (base64 inside the JSON
  line), so a replayed task returns an object ``==`` to — and for the
  float-dataclass results of this repo, bit-identical with — what the
  uninterrupted run would have produced.

``repro.parallel.run_tasks(journal=...)`` consults the journal before
dispatching each task and appends each fresh result as it arrives, so
any run killed at an arbitrary point (worker crash, SIGINT, OOM) resumes
by replaying completed tasks and re-deriving identical seeds for the
rest.  See ``docs/robustness.md`` for the format and guarantees.
"""

from __future__ import annotations

import base64
import hashlib
import json
import os
import pickle
from pathlib import Path
from collections.abc import Callable
from typing import Any

__all__ = [
    "JournalCorruptError",
    "RunJournal",
    "fsync_append",
    "open_journal",
]

#: First-line marker identifying a file as a repro run journal.
JOURNAL_MAGIC = "repro-journal"

#: Journal format version (bump on incompatible record changes).
JOURNAL_VERSION = 1

#: Characters of ``repr(args)`` kept in the on-disk record (diagnostic
#: only — the full repr is already hashed into the key).
_ARGS_REPR_LIMIT = 200


class JournalCorruptError(RuntimeError):
    """The journal file is damaged somewhere before its final line.

    A truncated *last* line is the expected signature of a crash
    mid-append and is dropped silently; anything else (bad JSON in the
    middle, a missing header, a foreign file) refuses to load — resuming
    from a half-trusted journal could silently corrupt a campaign.
    """


def fsync_append(fd: int, line: str) -> None:
    """Append one journal line durably: single ``write`` + ``fsync``.

    This is the one sanctioned write path for journal/store files
    (RPR009): a whole ``\\n``-terminated line in one ``os.write`` call,
    made durable before the caller proceeds, so the file always consists
    of complete records plus at most one truncated tail.
    """
    if not line.endswith("\n"):
        raise ValueError("journal lines must be newline-terminated")
    data = line.encode("utf-8")
    written = os.write(fd, data)
    while written < len(data):  # pragma: no cover - short writes are rare
        written += os.write(fd, data[written:])
    os.fsync(fd)


def _truncate(text: str, limit: int = _ARGS_REPR_LIMIT) -> str:
    if len(text) <= limit:
        return text
    return text[: limit - 3] + "..."


class RunJournal:
    """One journal file: lookup of completed tasks, durable appends.

    Parameters
    ----------
    path:
        Journal file; created (with a header line) if absent.
    scope:
        Disambiguation string mixed into every key — the experiment's
        identity (scenario, seed, sizing).  Two journals with different
        scopes can share one file without key collisions.
    require_existing:
        Fail fast (``FileNotFoundError``) when the journal does not
        already hold at least the header — the CLI's ``--resume`` flag,
        which promises completed work exists to replay.
    """

    def __init__(
        self,
        path: str | Path,
        *,
        scope: str = "",
        require_existing: bool = False,
    ):
        self.path = Path(path)
        self.scope = str(scope)
        self._records: dict[str, str] = {}  # key -> base64 pickle
        self._fd: int | None = None
        existed = self.path.exists() and self.path.stat().st_size > 0
        if require_existing and not existed:
            raise FileNotFoundError(
                f"--resume requested but journal {self.path} does not exist "
                "(or is empty); run once with --checkpoint first"
            )
        if existed:
            self._load()
        self._fd = os.open(
            self.path, os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644
        )
        if not existed:
            header = json.dumps(
                {"format": JOURNAL_MAGIC, "v": JOURNAL_VERSION},
                separators=(",", ":"),
            )
            fsync_append(self._fd, header + "\n")

    # -- loading ---------------------------------------------------------
    def _load(self) -> None:
        # Split the *bytes*, not decoded text: corruption diagnostics
        # report the byte offset of the offending record, which must be
        # usable with dd/xxd on the file as it sits on disk.
        raw = self.path.read_bytes()
        lines = raw.split(b"\n")
        # A complete journal ends with "\n", so the final split element
        # is empty; a non-empty tail is a record truncated by a crash
        # mid-append and is dropped (it was never durable).
        lines.pop()
        if not lines:
            return
        try:
            header = json.loads(lines[0].decode("utf-8", errors="replace"))
        except json.JSONDecodeError as exc:
            raise JournalCorruptError(
                f"{self.path}: first line (byte offset 0, {len(lines[0])} "
                f"bytes) is not a journal header ({exc})"
            ) from exc
        if header.get("format") != JOURNAL_MAGIC:
            raise JournalCorruptError(
                f"{self.path}: not a repro journal (header {header!r})"
            )
        if header.get("v") != JOURNAL_VERSION:
            raise JournalCorruptError(
                f"{self.path}: journal version {header.get('v')!r} != "
                f"{JOURNAL_VERSION}; delete the file to start fresh"
            )
        offset = len(lines[0]) + 1  # header line + its newline
        for n, bline in enumerate(lines[1:], start=2):
            if not bline:
                offset += 1
                continue
            try:
                rec = json.loads(bline.decode("utf-8", errors="replace"))
                key, payload = rec["k"], rec["p"]
            except (json.JSONDecodeError, KeyError, TypeError) as exc:
                raise JournalCorruptError(
                    f"{self.path}: line {n}: corrupt journal record at byte "
                    f"offset {offset} (spans bytes {offset}-"
                    f"{offset + len(bline)}) before the final line ({exc}); "
                    "refusing to resume"
                ) from exc
            self._records[str(key)] = payload
            offset += len(bline) + 1

    # -- the run_tasks journal protocol ----------------------------------
    def key(
        self,
        *,
        label: str,
        index: int,
        args: tuple,
        fn: Callable | None = None,
    ) -> str:
        """Stable task-spec hash: scope | callable | label | index | args."""
        fn_id = "" if fn is None else f"{fn.__module__}.{fn.__qualname__}"
        spec = "\x1f".join([self.scope, fn_id, label, str(int(index)), repr(args)])
        return hashlib.sha256(spec.encode("utf-8")).hexdigest()

    def get(self, key: str) -> tuple[bool, Any]:
        """``(True, result)`` when ``key`` was journaled, else ``(False, None)``."""
        payload = self._records.get(key)
        if payload is None:
            return False, None
        return True, pickle.loads(base64.b64decode(payload))

    def put(self, key: str, result: Any, *, label: str = "task",
            index: int = -1, args: tuple = ()) -> None:
        """Durably append one completed task (idempotent per key)."""
        if self._fd is None:
            raise ValueError(f"journal {self.path} is closed")
        if key in self._records:
            return  # replayed task: already durable
        payload = base64.b64encode(pickle.dumps(result)).decode("ascii")
        record = json.dumps(
            {
                "k": key,
                "label": label,
                "i": int(index),
                "args": _truncate(repr(args)),
                "p": payload,
            },
            separators=(",", ":"),
        )
        fsync_append(self._fd, record + "\n")
        self._records[key] = payload

    # -- bookkeeping -----------------------------------------------------
    def __len__(self) -> int:
        return len(self._records)

    def __contains__(self, key: str) -> bool:
        return key in self._records

    def close(self) -> None:
        """Release the file descriptor (appends already durable)."""
        if self._fd is not None:
            os.close(self._fd)
            self._fd = None

    def __enter__(self) -> "RunJournal":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"RunJournal(path={str(self.path)!r}, scope={self.scope!r}, "
            f"entries={len(self)})"
        )


def open_journal(
    checkpoint: "str | Path | RunJournal | None",
    *,
    scope: str,
    resume: bool = False,
) -> tuple[RunJournal | None, bool]:
    """Normalize a ``checkpoint=`` argument to ``(journal, owned)``.

    Callers accept a path (journal opened here with ``scope``; the
    caller must close it — ``owned`` is True) or an existing
    :class:`RunJournal` (used as-is, caller's scope wins, not closed).
    ``None`` disables journaling entirely.
    """
    if checkpoint is None:
        return None, False
    if isinstance(checkpoint, RunJournal):
        return checkpoint, False
    return RunJournal(checkpoint, scope=scope, require_existing=resume), True
