"""Plain-text rendering of experiment results.

Every figure runner's result can be rendered as the table/series the
paper plots; the benchmarks print these so a run of
``pytest benchmarks/ --benchmark-only -s`` regenerates the full
evaluation in text form.
"""

from __future__ import annotations

import numpy as np

from repro.core.comparator import ComparisonResult
from repro.experiments.figures import (
    Fig2Result,
    Fig6Result,
    Fig7Result,
    Fig8Result,
    Fig9Result,
    Fig10Result,
    SweepFigure,
)
from repro.experiments.overload import (
    BrownoutResult,
    DefenseResult,
    DisciplineResult,
    PriorityResult,
    PulseResult,
)
from repro.experiments.resilience import RecoveryResult, StormResult
from repro.experiments.validation import ValidationRow

__all__ = [
    "render_sweep",
    "render_sweep_figure",
    "render_fig2",
    "render_fig6",
    "render_fig7",
    "render_fig8",
    "render_fig9",
    "render_fig10",
    "render_validation",
    "render_retry_storm",
    "render_outage_recovery",
    "render_discipline_sweep",
    "render_admission_pulse",
    "render_priority_shedding",
    "render_brownout_tradeoff",
    "render_storm_defense",
    "render_result",
]


def _fmt_ms(seconds: float | None) -> str:
    return "-" if seconds is None else f"{seconds * 1e3:8.2f}"


def _fmt_rho(rho: float | None) -> str:
    return "none" if rho is None else f"{rho:.2f}"


def render_sweep(result: ComparisonResult, metric: str = "mean") -> str:
    """One figure series: rate, edge and cloud latency, who wins."""
    lines = [
        f"{result.scenario.name} — {metric} end-to-end latency",
        f"{'req/s/site':>10} {'util':>6} {'edge(ms)':>9} {'cloud(ms)':>9}  winner",
    ]
    for p in result.points:
        edge_v = getattr(p.edge, metric)
        cloud_v = getattr(p.cloud, metric)
        winner = "edge" if edge_v < cloud_v else "CLOUD"
        lines.append(
            f"{p.rate_per_site:>10.1f} {p.utilization:>6.2f} "
            f"{_fmt_ms(edge_v)} {_fmt_ms(cloud_v)}  {winner}"
        )
    x = result.crossover_rate(metric)
    lines.append(f"crossover: {'none in range' if x is None else f'{x:.1f} req/s/site'}")
    return "\n".join(lines)


def render_sweep_figure(fig: SweepFigure) -> str:
    """Both fleet sizes of a Figure 3/4/5-style experiment."""
    parts = [
        render_sweep(fig.k5, fig.metric),
        "",
        render_sweep(fig.k10, fig.metric),
        "",
        f"per-server crossovers: {fig.crossovers()}",
    ]
    return "\n".join(parts)


def render_fig2(result: Fig2Result) -> str:
    """The per-cell load box-plot summary."""
    q1, q2, q3 = result.quartiles
    return (
        "Figure 2 — per-cell edge load (requests per minute)\n"
        f"cells: {result.per_cell_mean_load.size}\n"
        f"quartiles: q1={q1:.1f} median={q2:.1f} q3={q3:.1f}\n"
        f"max/mean={result.skew['max_over_mean']:.2f} "
        f"p95/median={result.skew['p95_over_median']:.2f} "
        f"cell CoV={result.skew['cell_cv']:.2f}"
    )


def render_fig6(result: Fig6Result) -> str:
    """Violin-plot substitute: quartiles and tails of both distributions."""
    lines = [f"Figure 6 — latency distribution at {result.rate:.0f} req/s/server"]
    for label, s in (("edge", result.edge), ("cloud", result.cloud)):
        m = s.as_ms()
        lines.append(
            f"{label:>6}: p25={m['p25']:.1f} p50={m['p50']:.1f} p75={m['p75']:.1f} "
            f"p95={m['p95']:.1f} p99={m['p99']:.1f} (ms)"
        )
    return "\n".join(lines)


def render_fig7(result: Fig7Result) -> str:
    """Cutoff utilization per cloud placement."""
    lines = [
        "Figure 7 — cutoff utilization for inversion vs cloud RTT (k=5)",
        f"{'RTT(ms)':>8} {'mean cutoff':>12} {'tail cutoff':>12} {'predicted':>10}",
    ]
    for rtt, m, t, p in zip(
        result.rtts_ms, result.mean_cutoff, result.tail_cutoff, result.predicted_cutoff,
        strict=True,
    ):
        lines.append(f"{rtt:>8.0f} {_fmt_rho(m):>12} {_fmt_rho(t):>12} {p:>10.2f}")
    return "\n".join(lines)


def render_fig8(result: Fig8Result) -> str:
    """Per-site workload summary."""
    lines = ["Figure 8 — per-site request rate under the Azure-like trace"]
    for i, rates in enumerate(result.site_rates):
        r = rates[~np.isnan(rates)]
        lines.append(
            f"site {i}: mean={np.mean(r):6.2f} req/s  min={np.min(r):6.2f}  "
            f"max={np.max(r):6.2f}"
        )
    lines.append(f"spatial CoV of site means: {result.spatial_cv:.2f}")
    return "\n".join(lines)


def render_fig9(result: Fig9Result) -> str:
    """Edge vs cloud mean-latency time series summary."""
    e = result.edge_mean[~np.isnan(result.edge_mean)]
    c = result.cloud_mean[~np.isnan(result.cloud_mean)]
    return (
        "Figure 9 — windowed mean latency under the Azure-like trace\n"
        f"edge : mean={np.mean(e) * 1e3:7.2f} ms  std={np.std(e) * 1e3:6.2f} ms\n"
        f"cloud: mean={np.mean(c) * 1e3:7.2f} ms  std={np.std(c) * 1e3:6.2f} ms\n"
        f"windows with edge worse than cloud: {result.inversion_fraction:.0%}\n"
        f"edge/cloud series variability ratio: {result.edge_variability:.1f}"
    )


def render_fig10(result: Fig10Result) -> str:
    """Per-site latency box-plot summary."""
    lines = [
        "Figure 10 — per-site latency under the Azure-like trace",
        f"{'site':>6} {'rate':>7} {'rho':>5} {'p25':>8} {'p50':>8} {'p75':>8} {'p95':>8} (ms)",
    ]
    for i, (s, r, u) in enumerate(
        zip(result.site_summaries, result.site_rates, result.site_utilizations, strict=True)
    ):
        m = s.as_ms()
        lines.append(
            f"{i:>6} {r:>7.2f} {u:>5.2f} {m['p25']:>8.1f} {m['p50']:>8.1f} "
            f"{m['p75']:>8.1f} {m['p95']:>8.1f}"
        )
    m = result.cloud_summary.as_ms()
    lines.append(
        f"{'cloud':>6} {'':>7} {'':>5} {m['p25']:>8.1f} {m['p50']:>8.1f} "
        f"{m['p75']:>8.1f} {m['p95']:>8.1f}"
    )
    return "\n".join(lines)


def render_retry_storm(result: StormResult) -> str:
    """Retry-storm sweep: naive vs retrying effective latency, both tiers."""
    lines = [
        "Resilience (a) — retry storms move the inversion crossover",
        f"(failed operations censored at the {result.slo_deadline:.0f}s SLO deadline)",
        f"{'req/s/site':>10} {'naiveE(ms)':>10} {'naiveC(ms)':>10} "
        f"{'retryE(ms)':>10} {'retryC(ms)':>10} {'ampE':>5} {'ampC':>5} {'failE':>6}",
    ]
    for p in result.points:
        lines.append(
            f"{p.rate:>10.1f} {p.naive_edge * 1e3:>10.0f} {p.naive_cloud * 1e3:>10.0f} "
            f"{p.retry_edge * 1e3:>10.0f} {p.retry_cloud * 1e3:>10.0f} "
            f"{p.edge_amplification:>5.2f} {p.cloud_amplification:>5.2f} "
            f"{p.edge_failure_rate:>6.1%}"
        )
    fmt = lambda x: "none in range" if x is None else f"{x:.0f} req/s/site"  # noqa: E731
    lines.append(f"naive crossover: {fmt(result.naive_crossover)}")
    lines.append(f"retry crossover: {fmt(result.retry_crossover)}")
    return "\n".join(lines)


def render_outage_recovery(result: RecoveryResult) -> str:
    """Outage-recovery comparison: one row per client/failure strategy."""
    lines = [
        f"Resilience (b) — breaker + failover under edge outages "
        f"({result.rate:.0f} req/s/site, SLO {result.slo_deadline:.0f}s)",
        f"{'strategy':>30} {'p95(ms)':>9} {'SLO':>7} {'goodput':>8} "
        f"{'amp':>5} {'failover':>8} {'opens':>5} {'fail':>6}",
    ]
    for row in result.rows:
        s = row.summary
        lines.append(
            f"{row.label:>30} {row.p95 * 1e3:>9.0f} {s.slo_attainment:>7.1%} "
            f"{s.goodput:>7.1f}/s {s.retry_amplification:>5.2f} "
            f"{s.failovers:>8} {s.breaker_opens:>5} {s.failures:>6}"
        )
    lines.append(f"p95 recovery fraction: {result.recovery_fraction:.3f}")
    return "\n".join(lines)


def render_validation(rows: list[ValidationRow]) -> str:
    """The §4.2 analytic-vs-measured table."""
    lines = [
        "Section 4.2 — analytic cutoff validation",
        f"{'k':>4} {'paper pred':>10} {'paper meas':>10} {'our pred':>9} {'our meas':>9}",
    ]
    for r in rows:
        lines.append(
            f"{r.k_machines:>4} {r.paper_predicted:>10.2f} {r.paper_measured:>10.2f} "
            f"{r.our_predicted:>9.2f} {_fmt_rho(r.our_measured):>9}"
        )
    return "\n".join(lines)


def render_discipline_sweep(result: DisciplineResult) -> str:
    """Queue-discipline comparison under sustained overload."""
    lines = [
        f"Overload (a) — queue disciplines at {result.rate:.0f} req/s "
        f"(capacity 13, SLO {result.slo:.0f}s)",
        f"{'discipline':>14} {'p95(ms)':>9} {'goodput':>8} {'sloGP':>7} "
        f"{'refused':>8} {'drop':>6} {'shed':>6}",
    ]
    for row in result.rows:
        s = row.summary
        lines.append(
            f"{row.label:>14} {row.p95 * 1e3:>9.0f} {s.goodput:>7.1f}/s "
            f"{row.slo_goodput:>6.1f}/s {s.refusal_rate:>8.1%} "
            f"{s.dropped:>6} {s.shed:>6}"
        )
    return "\n".join(lines)


def render_admission_pulse(result: PulseResult) -> str:
    """Adaptive-admission recovery after an overload pulse."""
    t0, t1 = result.pulse_window
    lines = [
        f"Overload (b) — admission control through a {result.pulse_rate:.0f} req/s "
        f"pulse on {result.base_rate:.0f} req/s base (t={t0:.0f}..{t1:.0f}s)",
        f"{'admission':>10} {'recovered':>9} {'postP95(ms)':>11} "
        f"{'rejected':>9} {'limit@end':>9}",
    ]
    for row in result.rows:
        limit = "-" if row.final_limit is None else f"{row.final_limit:.1f}"
        lines.append(
            f"{row.label:>10} {result.recovered(row.label):>9.2f} "
            f"{row.post_p95 * 1e3:>11.0f} {row.summary.rejected:>9} {limit:>9}"
        )
    lines.append(
        "recovered = post-pulse served-within-SLO rate / offered base rate"
    )
    return "\n".join(lines)


def render_priority_shedding(result: PriorityResult) -> str:
    """Per-class goodput with uniform vs priority-aware shedding."""
    lines = [
        f"Overload (c) — priority shedding at {result.rate:.0f} req/s "
        f"(capacity 13; shares {result.shares})",
        f"{'policy':>9} {'class':>5} {'offered':>8} {'served':>7} {'fraction':>9}",
    ]
    for label, rows in (("uniform", result.uniform), ("priority", result.priority)):
        for row in rows:
            lines.append(
                f"{label:>9} {row.priority:>5} {row.offered:>8} {row.served:>7} "
                f"{row.served_fraction:>9.1%}"
            )
    return "\n".join(lines)


def render_brownout_tradeoff(result: BrownoutResult) -> str:
    """Brownout vs drop-tail at equal offered load."""
    lines = [
        f"Overload (d) — brownout vs drop-tail at {result.rate:.0f} req/s",
        f"{'strategy':>10} {'p95(ms)':>9} {'goodput':>8} {'refused':>8} {'degraded':>9}",
    ]
    for row in result.rows:
        s = row.summary
        lines.append(
            f"{row.label:>10} {row.p95 * 1e3:>9.0f} {s.goodput:>7.1f}/s "
            f"{s.refusal_rate:>8.1%} {s.degraded_fraction:>9.1%}"
        )
    lines.append(f"brownout goodput gain over drop-tail: {result.goodput_gain:.2f}x")
    return "\n".join(lines)


def render_storm_defense(result: DefenseResult) -> str:
    """E10's retry storm with and without server-side overload control."""
    lines = [
        "Overload (e) — the E10 retry storm vs protected stations "
        f"(failures censored at the {result.slo_deadline:.0f}s SLO)",
        f"{'req/s/site':>10} {'stations':>10} {'effLat(ms)':>10} {'amp':>5} "
        f"{'fail':>6} {'sheds':>6} {'rejects':>8}",
    ]
    for row in result.rows:
        tag = "protected" if row.protected else "naive"
        lines.append(
            f"{row.rate:>10.1f} {tag:>10} {row.effective_latency * 1e3:>10.0f} "
            f"{row.amplification:>5.2f} {row.failure_rate:>6.1%} "
            f"{row.sheds:>6} {row.rejects:>8}"
        )
    return "\n".join(lines)


def render_result(result) -> str:
    """Render an :class:`~repro.experiments.result.ExperimentResult`.

    The envelope already carries its renderer's output in ``text``;
    this adds the standard header used by the aggregated report.
    """
    description = result.metadata.get("description", "")
    header = f"== {result.name}" + (f": {description}" if description else "")
    return f"{header} ==\n{result.text}"
