"""Persist experiment results as JSON.

Every figure runner returns a small dataclass tree (floats, tuples,
NumPy arrays, nested summaries).  :func:`result_to_dict` flattens that
to JSON-safe types, :func:`save_result` / :func:`load_result` handle the
files, and :func:`dump_all_figures` materializes the full evaluation to
a directory — the artifact EXPERIMENTS.md is written from.

Loading returns plain dictionaries, not reconstructed dataclasses: the
persisted artifact is a *record* for comparison and reporting, not a
resumable computation.
"""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path
from collections.abc import Callable
from typing import Any

import numpy as np

from repro.experiments import figures as F
from repro.experiments.config import ExperimentConfig
from repro.workload.service import DNNInferenceModel

__all__ = ["result_to_dict", "save_result", "load_result", "dump_all_figures"]


def result_to_dict(obj: Any) -> Any:
    """Recursively convert a result object to JSON-safe types.

    Handles dataclasses, NumPy arrays/scalars, mappings, sequences and
    scalars; ``nan``/``inf`` become ``None`` (JSON has no representation
    for them and silently emitting bare ``NaN`` breaks strict parsers).
    """
    if isinstance(obj, DNNInferenceModel):
        return {
            "saturation_rate": obj.saturation_rate,
            "cores": obj.cores,
            "cv2": obj.cv2,
        }
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        return {
            f.name: result_to_dict(getattr(obj, f.name))
            for f in dataclasses.fields(obj)
        }
    if isinstance(obj, np.ndarray):
        return [result_to_dict(x) for x in obj.tolist()]
    if isinstance(obj, (np.floating, np.integer)):
        obj = obj.item()
    if isinstance(obj, float):
        return obj if np.isfinite(obj) else None
    if isinstance(obj, (str, int, bool)) or obj is None:
        return obj
    if isinstance(obj, dict):
        return {str(k): result_to_dict(v) for k, v in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [result_to_dict(x) for x in obj]
    raise TypeError(f"cannot serialize {type(obj).__name__!r} to JSON")


def save_result(obj: Any, path: str | Path) -> None:
    """Serialize one experiment result to a JSON file."""
    path = Path(path)
    path.write_text(json.dumps(result_to_dict(obj), indent=2, allow_nan=False))


def load_result(path: str | Path) -> Any:
    """Load a persisted result as plain dictionaries/lists."""
    return json.loads(Path(path).read_text())


#: Internal: figure name -> runner, in paper order.  The registry in
#: :mod:`repro.experiments.result` is the source of truth; this table
#: only drives :func:`dump_all_figures`'s default set and ordering.
_FIGURE_RUNNERS: dict[str, Callable[[ExperimentConfig], Any]] = {
    "fig2": F.fig2_spatial_skew,
    "fig3": F.fig3_mean_typical,
    "fig4": F.fig4_mean_distant,
    "fig5": F.fig5_tail_distant,
    "fig6": F.fig6_distribution,
    "fig7": F.fig7_cutoff_utilizations,
    "fig8": F.fig8_azure_workload,
    "fig9": F.fig9_azure_latency,
    "fig10": F.fig10_azure_per_site,
}


def __getattr__(name: str):
    # Deprecated pre-registry API: keep ``FIGURE_RUNNERS`` importable but
    # steer callers to the experiment registry (via the repro.api facade).
    if name == "FIGURE_RUNNERS":
        import warnings

        warnings.warn(
            "repro.experiments.persist.FIGURE_RUNNERS is deprecated; use "
            "repro.experiments.result.available()/run_experiment "
            "(re-exported by repro.api)",
            DeprecationWarning,
            stacklevel=2,
        )
        return dict(_FIGURE_RUNNERS)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def dump_experiment(name: str, config: ExperimentConfig, path: str | Path) -> Path:
    """Run one registered experiment and persist its full envelope.

    Unlike :func:`dump_all_figures` (raw runner output, the historical
    format) this writes the :class:`~repro.experiments.result.ExperimentResult`
    projection — name, metadata, harvested tables/series and the
    rendered text — one self-describing JSON file per experiment.
    """
    from repro.experiments.result import run_experiment

    return run_experiment(name, config).save(path)


def dump_all_figures(
    config: ExperimentConfig, outdir: str | Path, *, only: list[str] | None = None
) -> dict[str, Path]:
    """Run figure experiments and persist each to ``outdir/<name>.json``.

    Figures run through the experiment registry
    (:mod:`repro.experiments.result`); the persisted JSON remains the
    raw runner output for continuity with previously dumped artifacts.

    Parameters
    ----------
    only:
        Restrict to a subset of figure names (default: all).

    Returns
    -------
    dict
        Figure name → written path.
    """
    from repro.experiments.result import run_experiment

    outdir = Path(outdir)
    outdir.mkdir(parents=True, exist_ok=True)
    names = list(_FIGURE_RUNNERS) if only is None else list(only)
    unknown = [n for n in names if n not in _FIGURE_RUNNERS]
    if unknown:
        raise ValueError(f"unknown figures: {unknown}")
    written: dict[str, Path] = {}
    for name in names:
        result = run_experiment(name, config)
        path = outdir / f"{name}.json"
        save_result(result.raw, path)
        written[name] = path
    return written
