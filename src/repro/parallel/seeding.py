"""Deterministic seed derivation for split-up simulation runs.

Every layer that fans one experiment into many independent runs — sweep
points, replications, paired edge/cloud runs, per-component RNG streams
inside one simulation — needs child seeds that are (a) reproducible from
the experiment's base seed, (b) statistically independent of each other,
and (c) collision-free *across* experiments.  Raw integer arithmetic
(``base + r``, ``base + 7919 * i``) fails (c): ``replicate(base_seed=0)``
and a comparator at ``seed=0`` used to feed overlapping integers straight
into :func:`numpy.random.default_rng`, silently correlating experiments
that believe they are independent.

The fix is the one NumPy designed for this: every derivation goes
through :class:`numpy.random.SeedSequence`, which hashes the base
entropy together with a *spawn key* (the child's integer path) so that
distinct paths yield well-separated streams regardless of how close the
base seeds are.  The helpers here are the single point all of
:mod:`repro` routes through:

* :func:`seed_sequence` — normalize ``int | None | SeedSequence``;
* :func:`derive_seedseq` / :func:`derive_rng` — the child stream at an
  integer path under a base seed (``derive_seedseq(s, i) ==
  seed_sequence(s).spawn(i + 1)[i]`` by SeedSequence's spawn-key
  construction);
* :func:`derive_seed` — the same child collapsed to one 64-bit integer,
  for APIs whose contract is "callable takes an int seed";
* :func:`spawn_child` — sequential children of a live
  :class:`~numpy.random.SeedSequence` (what
  :meth:`repro.sim.engine.Simulation.spawn_rng` uses).

Determinism contract: the same ``(base seed, path)`` always produces the
same stream, independent of process, worker count, or the order in which
sibling paths are evaluated — which is exactly what lets
:func:`repro.parallel.run_tasks` promise bit-identical results for any
``workers``.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "SeedLike",
    "seed_sequence",
    "derive_seedseq",
    "derive_seed",
    "derive_rng",
    "spawn_child",
]


#: Anything accepted as a base seed: an int, an existing SeedSequence,
#: or None for fresh OS entropy.
SeedLike = int | np.random.SeedSequence | None


def seed_sequence(seed: SeedLike) -> np.random.SeedSequence:
    """Normalize a base seed to a :class:`~numpy.random.SeedSequence`.

    ``None`` draws fresh OS entropy (a deliberately irreproducible run);
    an existing ``SeedSequence`` passes through unchanged.
    """
    if isinstance(seed, np.random.SeedSequence):
        return seed
    if seed is not None:
        seed = int(seed)
        if seed < 0:
            raise ValueError(f"seed must be >= 0, got {seed}")
    return np.random.SeedSequence(seed)


def derive_seedseq(base_seed: SeedLike, *path: int) -> np.random.SeedSequence:
    """Child ``SeedSequence`` at integer ``path`` under ``base_seed``.

    The path is the child's coordinates in the experiment's fan-out tree
    (e.g. ``(sweep_point_index,)`` or ``(replication, stage)``).  Distinct
    paths give independent streams; the empty path is the base itself.
    """
    if not path:
        return seed_sequence(base_seed)
    key = []
    for p in path:
        p = int(p)
        if p < 0:
            raise ValueError(f"path components must be >= 0, got {path}")
        key.append(p)
    base = seed_sequence(base_seed)
    return np.random.SeedSequence(entropy=base.entropy, spawn_key=tuple(key))


def derive_seed(base_seed: SeedLike, *path: int) -> int:
    """Child seed at ``path`` collapsed to one non-negative 64-bit int.

    For APIs whose contract is an integer seed (``experiment(seed)`` in
    :func:`repro.stats.replicate`).  Feeding the result back into
    :func:`numpy.random.default_rng` re-enters SeedSequence hashing, so
    the indirection loses no independence.
    """
    return int(derive_seedseq(base_seed, *path).generate_state(1, np.uint64)[0])


def derive_rng(base_seed: SeedLike, *path: int) -> np.random.Generator:
    """Ready-made :class:`~numpy.random.Generator` for the child at ``path``."""
    return np.random.default_rng(derive_seedseq(base_seed, *path))


def spawn_child(parent: np.random.SeedSequence) -> np.random.SeedSequence:
    """Next sequential child of a live ``SeedSequence`` (stateful).

    Children are numbered by spawn order (``parent.spawn_key + (n,)``),
    so a component that spawns streams in construction order gets the
    same streams on every run — the in-simulation analogue of
    :func:`derive_seedseq`.
    """
    return parent.spawn(1)[0]
