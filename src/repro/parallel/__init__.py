"""Parallel execution substrate: process fan-out + deterministic seeding.

Two halves, used together by every layer that splits one experiment into
independent runs:

* :mod:`repro.parallel.pool` — :func:`run_tasks`, the ordered
  process-pool map with serial fallback and per-task error naming;
* :mod:`repro.parallel.seeding` — :class:`numpy.random.SeedSequence`
  based seed derivation, the collision-free replacement for arithmetic
  on raw integer seeds.

Two more halves back the crash-safety layer (PR 6):

* :mod:`repro.parallel.supervise` — the fault-tolerant executor behind
  ``run_tasks(timeout= / retries= / salvage= / journal=)``: per-task
  deadlines, deterministically-jittered retries, :class:`TaskOutcome`
  envelopes and journal replay;
* :mod:`repro.parallel.chaos` — env-triggered worker-kill injection and
  the ``python -m repro.parallel.chaos`` self-test proving salvage,
  resume bit-identity and orphan-free interrupts.

The substrate's invariant: **parallel results are bit-identical to
sequential ones.**  Seeds depend only on the task's index under the
experiment's base seed, never on scheduling, so
``Comparator.sweep(workers=4)`` equals ``sweep(workers=1)`` value for
value — guarded by ``tests/parallel`` and
``benchmarks/test_parallel_scaling.py``.  See ``docs/performance.md``.
"""

from repro.parallel.pool import ParallelTaskError, resolve_workers, run_tasks
from repro.parallel.seeding import (
    derive_rng,
    derive_seed,
    derive_seedseq,
    seed_sequence,
    spawn_child,
)
from repro.parallel.supervise import (
    RetryPolicy,
    SupervisionStats,
    TaskOutcome,
    run_supervised,
    supervision_stats,
)

__all__ = [
    "ParallelTaskError",
    "RetryPolicy",
    "SupervisionStats",
    "TaskOutcome",
    "resolve_workers",
    "run_supervised",
    "run_tasks",
    "supervision_stats",
    "derive_rng",
    "derive_seed",
    "derive_seedseq",
    "seed_sequence",
    "spawn_child",
]
