"""Process fan-out for independent simulation runs.

Every figure in the paper is a sweep of independently seeded runs, so
the natural execution model is embarrassingly parallel: ship each run to
a worker process, collect results in submission order, and guarantee the
outcome is bit-identical to the sequential loop (seeds are derived from
the task index via :mod:`repro.parallel.seeding`, never from execution
order).

:func:`run_tasks` is the one entry point.  Design points:

* **Ordered results** — ``results[i]`` always corresponds to
  ``tasks[i]``, regardless of which worker finished first.
* **Serial fallback** — ``workers=1`` (the default, or via
  ``REPRO_WORKERS``) runs the plain loop with zero pool overhead and
  unwrapped exceptions.  Non-picklable callables (lambdas, closures over
  live simulations) also fall back, with a diagnostic warning naming the
  offending object instead of a cryptic pool crash.
* **Error propagation** — a crash in one worker surfaces as
  :class:`ParallelTaskError` naming the failing task index (with its
  truncated args and, given ``base_seed=``, its derived seed) and
  carrying the worker-side traceback text.
* **Fault tolerance on demand** — passing any of ``timeout=``,
  ``retries=``, ``salvage=`` or ``journal=`` switches to the supervised
  executor (:mod:`repro.parallel.supervise`): per-task deadlines,
  deterministic retry backoff, partial-result salvage and crash-safe
  checkpoint/resume.  With none of them set, this module's plain fast
  path runs unchanged — supervision costs nothing when unused.
* **Telemetry safety** — the process-wide :func:`repro.obs.install`
  factory is process-local state.  Rather than silently dropping spans
  in forked workers, ``run_tasks`` refuses to fan out while a factory is
  installed (and each worker additionally clears any inherited factory).
* **No nested pools** — a task that itself calls ``run_tasks`` runs its
  subtasks serially inside the worker, so layered APIs (a parallel sweep
  whose points call a parallel ``run_comparison``) cannot fork-bomb.
"""

from __future__ import annotations

import os
import pickle
import traceback
import warnings
from concurrent.futures import ProcessPoolExecutor
from collections.abc import Callable, Iterable, Sequence
from typing import Any

from repro.parallel.supervise import (
    _IN_WORKER_ENV,
    ParallelTaskError,
    RetryPolicy,
    TaskOutcome,
    _task_context,
    run_supervised,
)

__all__ = [
    "ParallelTaskError",
    "RetryPolicy",
    "TaskOutcome",
    "resolve_workers",
    "run_tasks",
]

#: Environment variable giving the default worker count (``workers=None``).
WORKERS_ENV = "REPRO_WORKERS"


def resolve_workers(workers: int | None = None) -> int:
    """Resolve a worker count: ``None`` means ``$REPRO_WORKERS`` or 1.

    Inside a pool worker the answer is always 1 (nested fan-out would
    oversubscribe and risk recursive process creation).
    """
    if os.environ.get(_IN_WORKER_ENV):
        return 1
    if workers is None:
        raw = os.environ.get(WORKERS_ENV, "").strip()
        workers = int(raw) if raw else 1
    workers = int(workers)
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    return workers


def _worker_init() -> None:
    """Runs once in every worker: neutralize inherited process state."""
    os.environ[_IN_WORKER_ENV] = "1"
    # A fork-started worker inherits the parent's installed telemetry
    # factory; spans recorded there would never reach the parent's
    # exporter.  Workers are telemetry-free by contract (docs/performance.md).
    from repro.obs import provider

    provider.uninstall()


def _call(payload):
    index, label, fn, args, base_seed = payload
    try:
        return fn(*args)
    except Exception as exc:
        tb = traceback.format_exc()
        raise ParallelTaskError(
            f"{_task_context(label, index, args, base_seed)} failed in "
            f"worker with {type(exc).__name__}: {exc}\n{tb}"
        ) from exc


def _pickle_diagnostic(fn: Callable, tasks: Sequence[tuple]) -> str | None:
    """Reason ``fn``/``tasks`` cannot cross a process boundary, or ``None``."""
    try:
        pickle.dumps(fn)
    except Exception as exc:
        return f"callable {fn!r} is not picklable ({type(exc).__name__}: {exc})"
    try:
        pickle.dumps(tasks)
    except Exception as exc:
        return f"task arguments are not picklable ({type(exc).__name__}: {exc})"
    return None


def _refuse_telemetry_fanout(workers: int) -> None:
    from repro.obs import provider

    provider.ensure_fanout_compatible(workers, context="run_tasks")


def run_tasks(
    fn: Callable,
    tasks: Iterable[tuple],
    *,
    workers: int | None = None,
    chunksize: int | None = None,
    label: str = "task",
    timeout: float | None = None,
    retries: int = 0,
    backoff: float = 0.05,
    salvage: bool = False,
    base_seed: int | None = None,
    journal: Any = None,
    on_result: Callable[[TaskOutcome], None] | None = None,
) -> list:
    """Run ``fn(*task)`` for every task, fanning across processes.

    Parameters
    ----------
    fn:
        Callable applied to each task's positional arguments.  Must be
        picklable (module-level function or bound method of a picklable
        object) for true parallelism; otherwise the serial fallback runs
        with a diagnostic warning.
    tasks:
        Iterable of positional-argument tuples, one per run.
    workers:
        Process count; ``None`` reads ``$REPRO_WORKERS`` (default 1).
        ``1`` is the exact sequential loop — no pool, no wrapping.
    chunksize:
        Tasks shipped per worker dispatch on the plain-pool path;
        default balances ~4 chunks per worker.  Ignored under
        supervision (each attempt is its own process).
    label:
        Human name used in error messages ("sweep point", "replication").
    timeout:
        Per-task deadline in seconds (supervised; requires
        ``workers >= 2`` to be enforceable — a stalled attempt is
        terminated and counts as ``"timed-out"``).
    retries:
        Bounded retries per task (supervised).  Backoff between attempts
        is exponential from ``backoff`` with deterministic jitter drawn
        via :mod:`repro.parallel.seeding` from ``base_seed`` — and since
        tasks are deterministic functions of their arguments, a retry
        can only reproduce what the first attempt would have returned.
    backoff:
        Initial retry backoff in seconds (see :class:`RetryPolicy`).
    salvage:
        Return a list of :class:`TaskOutcome` envelopes — including
        failures — instead of raising on the first exhausted task
        (supervised).
    base_seed:
        The experiment's base seed, used to (a) derive retry-jitter
        streams and (b) name the failing task's derived seed in
        :class:`ParallelTaskError` messages.  Never alters results.
    journal:
        A :class:`repro.experiments.store.RunJournal` (or duck-typed
        equivalent): completed tasks replay from it, fresh results are
        durably appended as they arrive (supervised).
    on_result:
        Progress callback invoked in *this* process with each task's
        final :class:`TaskOutcome` the moment it settles (journal
        replay, success, or exhausted failure) — completion order, not
        task order.  Supervised path only; lifecycle streaming for
        :mod:`repro.service`.  Callback exceptions propagate (they
        indicate a broken observer, not a broken task).

    Returns
    -------
    list
        ``fn(*tasks[i])`` results in task order — bit-identical to the
        sequential loop for any worker count, because nothing about the
        computation depends on scheduling.  With ``salvage=True``, a
        list of :class:`TaskOutcome` in task order instead.

    Raises
    ------
    ParallelTaskError
        If a task fails in a worker (named by index, args and derived
        seed, traceback attached) and ``salvage`` is off.  On the plain
        serial path the task's original exception propagates unwrapped.
    repro.obs.provider.TelemetryFanoutError
        If ``workers > 1`` while a telemetry factory is installed —
        fan-out would silently drop every span recorded in the workers;
        run with ``workers=1`` or uninstall telemetry first.  (A
        ``ValueError`` *and* ``RuntimeError`` subclass.)
    """
    tasks = [tuple(t) for t in tasks]
    workers = resolve_workers(workers)
    supervised = (
        timeout is not None
        or retries > 0
        or salvage
        or journal is not None
        or on_result is not None
    )
    if workers > 1:
        _refuse_telemetry_fanout(workers)

    if not supervised:
        if workers == 1 or len(tasks) <= 1:
            return [fn(*t) for t in tasks]
        diagnostic = _pickle_diagnostic(fn, tasks)
        if diagnostic is not None:
            warnings.warn(
                f"run_tasks falling back to serial execution: {diagnostic}. "
                "Pass a module-level function (or a bound method of a "
                "picklable object) to enable process parallelism.",
                RuntimeWarning,
                stacklevel=2,
            )
            return [fn(*t) for t in tasks]
        workers = min(workers, len(tasks))
        if chunksize is None:
            chunksize = max(1, len(tasks) // (workers * 4))
        payloads = [(i, label, fn, t, base_seed) for i, t in enumerate(tasks)]
        with ProcessPoolExecutor(
            max_workers=workers, initializer=_worker_init
        ) as pool:
            return list(pool.map(_call, payloads, chunksize=chunksize))

    # Supervised path: timeouts / retries / salvage / journal.
    policy = RetryPolicy(retries=retries, timeout=timeout, backoff=backoff)
    if workers > 1 and tasks:
        diagnostic = _pickle_diagnostic(fn, tasks)
        if diagnostic is not None:
            warnings.warn(
                f"run_tasks falling back to serial execution: {diagnostic}. "
                "Pass a module-level function (or a bound method of a "
                "picklable object) to enable process parallelism.",
                RuntimeWarning,
                stacklevel=2,
            )
            workers = 1
    outcomes = run_supervised(
        fn,
        tasks,
        workers=min(workers, max(1, len(tasks))),
        policy=policy,
        label=label,
        base_seed=base_seed,
        journal=journal,
        fail_fast=not salvage,
        on_result=on_result,
    )
    if salvage:
        return outcomes
    return [o.result for o in outcomes]
