"""Chaos injection and the crash-safety self-test harness.

The paper's edge sites fail partially and heterogeneously; PR 6 makes
the *harness that runs the experiments* survive the same shapes.  This
module is the proof: controlled fault injection plus an executable
self-test (``python -m repro.parallel.chaos``) that kills workers
mid-task, SIGINTs an in-flight journaled run, and asserts salvage,
resume bit-identity, and that no worker processes are orphaned.

Injection is environment-triggered so it needs no cooperation from the
task under test — the supervised executor (:mod:`repro.parallel.supervise`)
calls :func:`chaos_point` at the start of every task attempt:

* ``REPRO_CHAOS_KILL="2,5"`` — task indices whose attempt dies instantly
  via ``os._exit`` (no cleanup, no exception: exactly an OOM-kill);
* ``REPRO_CHAOS_ONCE_DIR=/tmp/x`` — crash-once markers: each targeted
  index dies only the first time it is attempted (across retries *and*
  across resumed runs), so recovery paths can be exercised end to end.

With the variables unset, :func:`chaos_point` is a single dictionary
lookup — the production overhead of the chaos machinery is one
``os.environ.get`` per supervised task attempt, and zero on the
unsupervised fast path (which never calls it).
"""

from __future__ import annotations

import os
import sys
import time

import numpy as np

from repro.parallel.seeding import derive_rng

__all__ = [
    "CHAOS_KILL_ENV",
    "CHAOS_ONCE_DIR_ENV",
    "CHAOS_EXIT_CODE",
    "chaos_point",
    "synthetic_point",
    "slow_point",
    "beacon_point",
    "main",
]

#: Comma-separated task indices whose attempts die via ``os._exit``.
CHAOS_KILL_ENV = "REPRO_CHAOS_KILL"

#: Directory of crash-once markers; with it set, each targeted index
#: dies only on its first attempt (markers persist across resumes).
CHAOS_ONCE_DIR_ENV = "REPRO_CHAOS_ONCE_DIR"

#: Exit code of a chaos-killed process (distinctive in ``ps``/logs).
CHAOS_EXIT_CODE = 57


def chaos_point(index: int) -> None:
    """Die here iff chaos injection targets task ``index``.

    Called by the supervised executor at the start of every task attempt
    (worker process or serial loop).  A hit is ``os._exit`` — no stack
    unwinding, no ``finally`` blocks, indistinguishable from a SIGKILL —
    which is the failure shape the journal must survive.
    """
    spec = os.environ.get(CHAOS_KILL_ENV)
    if not spec:
        return
    try:
        targets = {int(x) for x in spec.replace(",", " ").split()}
    except ValueError:
        raise ValueError(
            f"{CHAOS_KILL_ENV} must be comma-separated task indices, got {spec!r}"
        ) from None
    if int(index) not in targets:
        return
    once_dir = os.environ.get(CHAOS_ONCE_DIR_ENV)
    if once_dir:
        marker = os.path.join(once_dir, f"crashed-{int(index)}")
        try:
            fd = os.open(marker, os.O_CREAT | os.O_EXCL | os.O_WRONLY, 0o644)
        except FileExistsError:
            return  # already died here once; let the retry/resume succeed
        os.close(fd)
    os._exit(CHAOS_EXIT_CODE)


# ---------------------------------------------------------------------------
# Deterministic synthetic workload for the self-test
# ---------------------------------------------------------------------------

def synthetic_point(seed: int, rate: float) -> tuple[float, float]:
    """A cheap stand-in for one sweep point: deterministic in its args.

    Returns the sample mean and p95 of 4 000 exponential "latencies" at
    ``rate`` — enough structure that a journal replay mismatch (wrong
    key, wrong pickle, wrong seed) cannot pass by accident.
    """
    rng = np.random.default_rng(int(seed))
    sample = rng.exponential(1.0 / float(rate), 4000)
    return float(sample.mean()), float(np.quantile(sample, 0.95))


def slow_point(seed: int, rate: float, delay: float) -> tuple[float, float]:
    """:func:`synthetic_point` with a wall-clock stall (timeout/SIGINT prey)."""
    time.sleep(float(delay))
    return synthetic_point(seed, rate)


def beacon_point(
    seed: int, rate: float, delay: float, beacon_dir: str
) -> tuple[float, float]:
    """:func:`slow_point` that first records its worker PID on disk.

    The self-test's orphan check: after the supervising process is
    interrupted, every PID recorded here must be dead.
    """
    path = os.path.join(beacon_dir, f"pid-{os.getpid()}")
    fd = os.open(path, os.O_CREAT | os.O_WRONLY, 0o644)
    os.close(fd)
    return slow_point(seed, rate, delay)


# ---------------------------------------------------------------------------
# The self-test harness
# ---------------------------------------------------------------------------

def _selftest_tasks(n: int = 6, delay: float = 0.0, beacon_dir: str | None = None):
    """The self-test's sweep: n points with SeedSequence-derived seeds."""
    from repro.parallel.seeding import derive_seed

    tasks = []
    for i in range(n):
        rate = 6.0 + i
        args: tuple = (derive_seed(2021, i), rate)
        if beacon_dir is not None:
            args += (delay, beacon_dir)
        elif delay:
            args += (delay,)
        tasks.append(args)
    return tasks


def _check(label: str, condition: bool, detail: str = "") -> None:
    if not condition:
        raise AssertionError(f"chaos self-test: {label} FAILED {detail}".rstrip())
    print(f"chaos self-test: {label} ok")


def _sigint_child(journal_path: str, beacon_dir: str) -> int:
    """Child mode: a journaled 2-worker run meant to be interrupted."""
    from repro.parallel.pool import run_tasks

    from repro.experiments.store import RunJournal

    with RunJournal(journal_path, scope="chaos-sigint") as journal:
        run_tasks(
            beacon_point,
            _selftest_tasks(n=6, delay=0.4, beacon_dir=beacon_dir),
            workers=2,
            label="chaos point",
            journal=journal,
        )
    return 0


def _scenario_crash_retry(tmp: str, baseline: list) -> None:
    """Worker crash mid-task; bounded retries recover within one run."""
    from repro.parallel.pool import run_tasks

    from repro.experiments.store import RunJournal

    once = os.path.join(tmp, "once-retry")
    os.makedirs(once, exist_ok=True)
    os.environ[CHAOS_KILL_ENV] = "2"
    os.environ[CHAOS_ONCE_DIR_ENV] = once
    try:
        with RunJournal(os.path.join(tmp, "retry.journal"), scope="chaos-retry") as j:
            outcomes = run_tasks(
                synthetic_point,
                _selftest_tasks(),
                workers=2,
                label="chaos point",
                retries=2,
                salvage=True,
                base_seed=2021,
                journal=j,
            )
    finally:
        del os.environ[CHAOS_KILL_ENV], os.environ[CHAOS_ONCE_DIR_ENV]
    _check("crash+retry: all outcomes ok", all(o.ok for o in outcomes))
    _check("crash+retry: task 2 retried", outcomes[2].retried >= 1,
           f"(attempts={outcomes[2].attempts})")
    _check("crash+retry: bit-identical to baseline",
           [o.result for o in outcomes] == baseline)


def _scenario_crash_resume(tmp: str, baseline: list) -> None:
    """Worker crash with no retries: salvage partials, resume bit-identically."""
    from repro.parallel.pool import run_tasks

    from repro.experiments.store import RunJournal

    once = os.path.join(tmp, "once-resume")
    os.makedirs(once, exist_ok=True)
    path = os.path.join(tmp, "resume.journal")
    os.environ[CHAOS_KILL_ENV] = "1,4"
    os.environ[CHAOS_ONCE_DIR_ENV] = once
    try:
        with RunJournal(path, scope="chaos-resume") as j:
            first = run_tasks(
                synthetic_point, _selftest_tasks(), workers=2,
                label="chaos point", salvage=True, journal=j,
            )
    finally:
        del os.environ[CHAOS_KILL_ENV], os.environ[CHAOS_ONCE_DIR_ENV]
    failed = [o.index for o in first if not o.ok]
    _check("crash+resume: crashed tasks salvaged as failures",
           failed == [1, 4], f"(failed={failed})")
    # Resume: completed tasks replay from disk, crashed ones rerun.
    with RunJournal(path, scope="chaos-resume") as j:
        second = run_tasks(
            synthetic_point, _selftest_tasks(), workers=2,
            label="chaos point", salvage=True, journal=j,
        )
    _check("crash+resume: resumed run complete", all(o.ok for o in second))
    _check("crash+resume: replayed from journal",
           sorted(o.index for o in second if o.from_journal)
           == [i for i in range(6) if i not in failed])
    _check("crash+resume: bit-identical to baseline",
           [o.result for o in second] == baseline)


def _scenario_sigint(tmp: str) -> None:
    """SIGINT an in-flight journaled run; no orphans; resume is exact."""
    import signal
    import subprocess

    from repro.parallel.pool import run_tasks

    from repro.experiments.store import RunJournal

    journal_path = os.path.join(tmp, "sigint.journal")
    beacon_dir = os.path.join(tmp, "beacons")
    os.makedirs(beacon_dir, exist_ok=True)
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(p for p in sys.path if p)
    child = subprocess.Popen(
        [sys.executable, "-m", "repro.parallel.chaos",
         "--sigint-child", journal_path, beacon_dir],
        env=env,
    )
    # Interrupt once at least one task has been journaled (header + 1).
    deadline = time.monotonic() + 30.0  # repro: noqa[RPR001] -- harness wall-clock, not simulation time
    while time.monotonic() < deadline:  # repro: noqa[RPR001] -- harness wall-clock, not simulation time
        if os.path.exists(journal_path):
            with open(journal_path, "rb") as fh:
                if fh.read().count(b"\n") >= 2:
                    break
        if child.poll() is not None:
            raise AssertionError(
                f"chaos self-test: child exited early (rc={child.returncode})"
            )
        time.sleep(0.02)
    child.send_signal(signal.SIGINT)
    rc = child.wait(timeout=30)
    _check("sigint: interrupted run exits nonzero", rc != 0, f"(rc={rc})")
    pids = [int(name.split("-", 1)[1]) for name in os.listdir(beacon_dir)]
    _check("sigint: workers were spawned", len(pids) >= 1)
    time.sleep(0.2)  # allow the kernel to reap terminated workers
    orphans = []
    for pid in set(pids):
        try:
            os.kill(pid, 0)
        except ProcessLookupError:
            continue
        orphans.append(pid)
    _check("sigint: no orphaned workers", not orphans, f"(alive={orphans})")
    # The journal must be mid-run (some but not all tasks) and resumable.
    with RunJournal(journal_path, scope="chaos-sigint") as j:
        done_before = len(j)
        resumed = run_tasks(
            beacon_point,
            _selftest_tasks(n=6, delay=0.4, beacon_dir=beacon_dir),
            workers=2,
            label="chaos point",
            journal=j,
        )
    _check("sigint: journal was resumable mid-run", 0 < done_before,
           f"(journaled={done_before})")
    expected = [synthetic_point(s, r) for (s, r, *_rest) in
                _selftest_tasks(n=6, delay=0.4, beacon_dir=beacon_dir)]
    _check("sigint: resumed results bit-identical", resumed == expected)


def _scenario_timeout(tmp: str) -> None:
    """A stalled task is terminated at its deadline and reported as such."""
    from repro.parallel.pool import run_tasks

    t0 = time.monotonic()  # repro: noqa[RPR001] -- harness wall-clock, not simulation time
    outcomes = run_tasks(
        slow_point,
        _selftest_tasks(n=3, delay=30.0),
        workers=2,
        label="chaos point",
        timeout=0.5,
        salvage=True,
    )
    elapsed = time.monotonic() - t0  # repro: noqa[RPR001] -- harness wall-clock, not simulation time
    _check("timeout: all attempts timed out",
           all(o.status == "timed-out" for o in outcomes))
    _check("timeout: stalled workers were killed, not awaited",
           elapsed < 15.0, f"(elapsed={elapsed:.1f}s)")


def main(argv: list[str] | None = None) -> int:
    """Run the chaos self-test (or the internal ``--sigint-child`` mode)."""
    argv = sys.argv[1:] if argv is None else argv
    if argv[:1] == ["--sigint-child"]:
        return _sigint_child(argv[1], argv[2])
    if argv:
        print(f"usage: python -m repro.parallel.chaos  (got {argv})", file=sys.stderr)
        return 2

    import tempfile

    from repro.parallel.pool import run_tasks

    with tempfile.TemporaryDirectory(prefix="repro-chaos-") as tmp:
        baseline = run_tasks(
            synthetic_point, _selftest_tasks(), workers=2, label="chaos point"
        )
        _scenario_crash_retry(tmp, baseline)
        _scenario_crash_resume(tmp, baseline)
        _scenario_sigint(tmp)
        _scenario_timeout(tmp)
    print("chaos self-test: PASS (crash+retry, crash+resume, sigint, timeout)")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised by CI chaos-smoke
    sys.exit(main())
