"""Supervised task execution: timeouts, retries, salvage and journaling.

The plain pool (:mod:`repro.parallel.pool`) is all-or-nothing: one
worker crash in a 500-point sweep raises and discards every completed
result.  This module is the fault-tolerant alternative that
``run_tasks`` switches to when the caller asks for any supervision
feature (``timeout=`` / ``retries=`` / ``salvage=`` / ``journal=``):

* **Process-per-task supervision.**  Each attempt runs in its own
  ``multiprocessing.Process`` with a dedicated pipe; the supervisor
  multiplexes completions with ``connection.wait`` and keeps a sliding
  window of ``workers`` attempts in flight.  A crashed worker (EOF on
  the pipe, nonzero exit) or a blown deadline (terminate + join) costs
  exactly one task, never the batch.
* **Deterministic retries.**  Backoff jitter is drawn from
  ``derive_rng(base_seed, _RETRY_STREAM, index, attempt)`` so a retry
  *schedule* is as reproducible as the results themselves — and because
  every task is a deterministic function of its arguments, a retry can
  only ever re-produce the result the first attempt would have returned.
* **:class:`TaskOutcome` envelopes.**  ``salvage=True`` returns one
  outcome per task (ok / failed / timed-out, traceback attached,
  attempt count, replay provenance) instead of raising, so a campaign
  keeps the 499 finished points when point 500 dies.
* **Journal integration.**  With a journal attached (duck-typed —
  :class:`repro.experiments.store.RunJournal` in practice; this module
  deliberately does not import ``repro.experiments``), completed tasks
  are replayed from disk before any process is spawned and fresh results
  are durably appended as they arrive, making any run killed at an
  arbitrary point resumable bit-identically.

``workers=1`` keeps sequential semantics: tasks run in-process, in
order, with retries and journaling but no preemption (a per-task
``timeout`` cannot be enforced without a worker process and is warned
about).  See ``docs/robustness.md``.
"""

from __future__ import annotations

import os
import signal
import time
import traceback
import warnings
from dataclasses import dataclass
from multiprocessing import Pipe, Process
from multiprocessing.connection import Connection, wait as _conn_wait
from collections.abc import Callable, Sequence
from typing import Any

from repro.parallel.seeding import derive_rng, derive_seed

__all__ = [
    "ParallelTaskError",
    "RetryPolicy",
    "SupervisionStats",
    "TaskOutcome",
    "run_supervised",
    "supervision_stats",
]

#: Set in worker processes so nested ``run_tasks`` calls stay serial.
_IN_WORKER_ENV = "REPRO_IN_WORKER"

#: Seed-derivation stream reserved for retry backoff jitter; disjoint
#: from task-index streams, so retrying never perturbs task seeds.
_RETRY_STREAM = 0x5EED

#: Characters of ``repr(args)`` carried in error messages and outcomes.
_ARGS_REPR_LIMIT = 200


def _truncate(text: str, limit: int = _ARGS_REPR_LIMIT) -> str:
    if len(text) <= limit:
        return text
    return text[: limit - 3] + "..."


def _task_context(label: str, index: int, args: tuple, base_seed: int | None) -> str:
    """``"sweep point #3 (args=(9.5, 3), seed=...)"`` — enough to rerun it."""
    ctx = f"{label} #{index} (args={_truncate(repr(args))}"
    if base_seed is not None:
        ctx += f", seed=derive_seed({base_seed}, ...)={derive_seed(base_seed, index)}"
    return ctx + ")"


class ParallelTaskError(RuntimeError):
    """One task of a parallel batch failed.

    The message names the failing task (label and index), carries the
    truncated args repr and — when the caller passed ``base_seed=`` —
    the task's derived seed, so a crashed sweep point is reproducible
    from the error text alone.  The worker-side traceback is embedded;
    the original exception is chained as ``__cause__`` on in-process
    paths (worker processes can only ship the formatted text).

    Structured fields (``task_index``, ``label``, ``args_repr``,
    ``seed``) are available when raised by the supervised path; they
    default to ``None`` on messages that crossed a process boundary.
    """

    def __init__(
        self,
        message: str,
        *,
        task_index: int | None = None,
        label: str | None = None,
        args_repr: str | None = None,
        seed: int | None = None,
    ):
        super().__init__(message)
        self.task_index = task_index
        self.label = label
        self.args_repr = args_repr
        self.seed = seed


@dataclass
class TaskOutcome:
    """What happened to one task under supervision.

    ``result`` is meaningful only when ``status == "ok"``; ``error`` is
    a one-line ``"ExcType: message"`` (or a crash/timeout description)
    and ``traceback`` the full worker-side text when one exists.
    """

    index: int
    label: str
    status: str  # "ok" | "failed" | "timed-out"
    result: Any = None
    error: str | None = None
    traceback: str | None = None
    attempts: int = 1
    from_journal: bool = False
    seed: int | None = None
    args_repr: str = "()"

    @property
    def ok(self) -> bool:
        return self.status == "ok"

    @property
    def retried(self) -> int:
        """How many retries this task consumed (0 = first attempt stood)."""
        return max(0, self.attempts - 1)

    def to_error(self, base_seed: int | None = None) -> ParallelTaskError:
        """The enriched exception this (non-ok) outcome corresponds to."""
        ctx = f"{self.label} #{self.index} (args={self.args_repr}"
        if self.seed is not None:
            ctx += f", seed=derive_seed({base_seed}, ...)={self.seed}"
        ctx += ")"
        noun = "timed out" if self.status == "timed-out" else "failed"
        msg = f"{ctx} {noun} after {self.attempts} attempt(s): {self.error}"
        if self.traceback:
            msg += "\n" + self.traceback
        return ParallelTaskError(
            msg,
            task_index=self.index,
            label=self.label,
            args_repr=self.args_repr,
            seed=self.seed,
        )


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retries with deterministically-jittered exponential backoff.

    ``delay(base_seed, index, attempt)`` for attempt ``n`` (1-based) is
    ``backoff * backoff_factor**(n-1)`` capped at ``max_backoff`` and
    stretched by up to ``jitter`` (uniform), with the jitter drawn from
    a :func:`repro.parallel.seeding.derive_rng` stream keyed by
    ``(base_seed, _RETRY_STREAM, index, attempt)`` — the schedule is a
    pure function of the experiment's seed, never of wall-clock state.
    """

    retries: int = 0
    timeout: float | None = None
    backoff: float = 0.05
    backoff_factor: float = 2.0
    max_backoff: float = 5.0
    jitter: float = 0.5

    def __post_init__(self) -> None:
        if self.retries < 0:
            raise ValueError(f"retries must be >= 0, got {self.retries}")
        if self.timeout is not None and self.timeout <= 0:
            raise ValueError(f"timeout must be > 0, got {self.timeout}")
        if self.backoff < 0 or self.max_backoff < 0 or self.jitter < 0:
            raise ValueError("backoff, max_backoff and jitter must be >= 0")
        if self.backoff_factor < 1.0:
            raise ValueError(f"backoff_factor must be >= 1, got {self.backoff_factor}")

    def delay(self, base_seed: int | None, index: int, attempt: int) -> float:
        """Seconds to wait before retry ``attempt`` (1 = first retry)."""
        base = min(self.max_backoff, self.backoff * self.backoff_factor ** (attempt - 1))
        if base <= 0 or self.jitter <= 0:
            return base
        rng = derive_rng(
            0 if base_seed is None else base_seed, _RETRY_STREAM, index, attempt
        )
        return base * (1.0 + self.jitter * float(rng.random()))


@dataclass
class SupervisionStats:
    """Process-wide counters for the supervised executor.

    Conforms to the ``observables()`` protocol (rule RPR004), so the
    live telemetry layer can export the counters as gauges:
    ``telemetry.register_observables("parallel", supervision_stats())``.
    """

    completed: int = 0
    failures: int = 0
    timeouts: int = 0
    crashes: int = 0
    retries: int = 0
    journal_hits: int = 0
    salvaged: int = 0

    def observables(self) -> dict[str, Callable[[], int]]:
        return {
            "completed": lambda: self.completed,
            "failures": lambda: self.failures,
            "timeouts": lambda: self.timeouts,
            "crashes": lambda: self.crashes,
            "retries": lambda: self.retries,
            "journal_hits": lambda: self.journal_hits,
            "salvaged": lambda: self.salvaged,
        }

    def snapshot(self) -> dict[str, int]:
        return {name: reader() for name, reader in self.observables().items()}

    def reset(self) -> None:
        for name in self.snapshot():
            setattr(self, name, 0)


_STATS = SupervisionStats()


def supervision_stats() -> SupervisionStats:
    """The process-wide :class:`SupervisionStats` singleton."""
    return _STATS


# ---------------------------------------------------------------------------
# Worker side
# ---------------------------------------------------------------------------

def _worker_main(conn: Connection, index: int, fn: Callable, args: tuple) -> None:
    """Run one task attempt in a dedicated process; ship the outcome."""
    # Ctrl-C is the *supervisor's* signal: it terminates workers
    # deliberately during cleanup.  Letting SIGINT hit workers directly
    # would race that shutdown and corrupt in-flight pipe messages.
    signal.signal(signal.SIGINT, signal.SIG_IGN)
    os.environ[_IN_WORKER_ENV] = "1"
    from repro.obs import provider

    provider.uninstall()
    from repro.parallel.chaos import chaos_point

    chaos_point(index)
    try:
        result = fn(*args)
    except BaseException as exc:  # ship *any* failure, incl. SystemExit
        conn.send(
            ("error", type(exc).__name__, str(exc), traceback.format_exc())
        )
    else:
        try:
            conn.send(("ok", result))
        except Exception as exc:
            conn.send(
                (
                    "error",
                    type(exc).__name__,
                    f"task result is not picklable: {exc}",
                    traceback.format_exc(),
                )
            )
    conn.close()


@dataclass
class _InFlight:
    index: int
    attempt: int
    process: Process
    conn: Connection
    deadline: float | None


# ---------------------------------------------------------------------------
# Supervisor
# ---------------------------------------------------------------------------

def run_supervised(
    fn: Callable,
    tasks: Sequence[tuple],
    *,
    workers: int,
    policy: RetryPolicy,
    label: str = "task",
    base_seed: int | None = None,
    journal: Any = None,
    fail_fast: bool = True,
    on_result: Callable[[TaskOutcome], None] | None = None,
) -> list[TaskOutcome]:
    """Run every task under supervision; return one outcome per task.

    ``journal`` is duck-typed: anything with ``key(label=, index=,
    args=, fn=)``, ``get(key) -> (hit, result)`` and ``put(key, result,
    label=, index=, args=)`` — completed tasks replay from it, fresh
    results are appended to it the moment they arrive (before the next
    dispatch), so an interrupt at any point leaves it resumable.

    With ``fail_fast=True`` the first task to exhaust its attempts
    raises its :meth:`TaskOutcome.to_error`; with ``fail_fast=False``
    (``salvage=``) failures are returned in their envelopes instead.

    ``on_result`` (optional) is invoked in the supervisor process with
    each task's final :class:`TaskOutcome` as it settles — journal
    replays first, then live completions/failures in completion order.
    Per-attempt events (retries in flight) are not reported; a task
    settles exactly once.
    """
    tasks = [tuple(t) for t in tasks]
    outcomes: list[TaskOutcome | None] = [None] * len(tasks)
    keys: list[str | None] = [None] * len(tasks)
    todo: list[int] = []
    for i, args in enumerate(tasks):
        if journal is not None:
            keys[i] = journal.key(label=label, index=i, args=args, fn=fn)
            hit, result = journal.get(keys[i])
            if hit:
                outcomes[i] = _outcome(i, label, args, base_seed, "ok",
                                       result=result, from_journal=True)
                _STATS.journal_hits += 1
                if on_result is not None:
                    on_result(outcomes[i])
                continue
        todo.append(i)

    if workers > 1 and len(todo) > 1:
        _run_parallel(fn, tasks, todo, keys, outcomes, workers=workers,
                      policy=policy, label=label, base_seed=base_seed,
                      journal=journal, fail_fast=fail_fast,
                      on_result=on_result)
    else:
        _run_serial(fn, tasks, todo, keys, outcomes, policy=policy,
                    label=label, base_seed=base_seed, journal=journal,
                    fail_fast=fail_fast, on_result=on_result)

    if not fail_fast:
        _STATS.salvaged += sum(
            1 for o in outcomes if o is not None and not o.ok
        )
    return [o for o in outcomes if o is not None]


def _outcome(
    index: int,
    label: str,
    args: tuple,
    base_seed: int | None,
    status: str,
    *,
    result: Any = None,
    error: str | None = None,
    tb: str | None = None,
    attempts: int = 1,
    from_journal: bool = False,
) -> TaskOutcome:
    return TaskOutcome(
        index=index,
        label=label,
        status=status,
        result=result,
        error=error,
        traceback=tb,
        attempts=attempts,
        from_journal=from_journal,
        seed=None if base_seed is None else derive_seed(base_seed, index),
        args_repr=_truncate(repr(args)),
    )


def _record_ok(outcomes, keys, journal, tasks, label, base_seed, index,
               result, attempts, on_result=None) -> None:
    """Journal first (durability), then publish the outcome."""
    if journal is not None:
        journal.put(keys[index], result, label=label, index=index,
                    args=tasks[index])
    outcomes[index] = _outcome(index, label, tasks[index], base_seed, "ok",
                               result=result, attempts=attempts)
    _STATS.completed += 1
    if on_result is not None:
        on_result(outcomes[index])


def _run_serial(fn, tasks, todo, keys, outcomes, *, policy, label,
                base_seed, journal, fail_fast, on_result=None) -> None:
    """In-process, in-order execution: retries + journal, no preemption."""
    if policy.timeout is not None:
        warnings.warn(
            "run_tasks: per-task timeout is not enforced with workers=1 "
            "(there is no worker process to terminate); use workers >= 2 "
            "for timeout supervision",
            RuntimeWarning,
            stacklevel=4,
        )
    from repro.parallel.chaos import chaos_point

    for i in todo:
        attempt = 1
        while True:
            chaos_point(i)
            try:
                result = fn(*tasks[i])
            except Exception as exc:
                if attempt <= policy.retries:
                    _STATS.retries += 1
                    time.sleep(policy.delay(base_seed, i, attempt))
                    attempt += 1
                    continue
                _STATS.failures += 1
                outcomes[i] = _outcome(
                    i, label, tasks[i], base_seed, "failed",
                    error=f"{type(exc).__name__}: {exc}",
                    tb=traceback.format_exc(), attempts=attempt,
                )
                if on_result is not None:
                    on_result(outcomes[i])
                if fail_fast:
                    raise outcomes[i].to_error(base_seed) from exc
                break
            else:
                _record_ok(outcomes, keys, journal, tasks, label, base_seed,
                           i, result, attempt, on_result)
                break


def _spawn(fn, tasks, index, attempt, policy, now) -> _InFlight:
    recv_end, send_end = Pipe(duplex=False)
    proc = Process(
        target=_worker_main, args=(send_end, index, fn, tasks[index]),
        daemon=True,
    )
    # Mask SIGINT across the fork.  A Ctrl-C landing mid-``start()``
    # raises KeyboardInterrupt inside an ``os.register_at_fork``
    # callback (e.g. logging's lock release), where CPython reports it
    # as "Exception ignored" and DROPS it — the interrupt is silently
    # lost and the run completes as if never signalled.  Deferring
    # delivery until the mask is restored lands it in the supervisor
    # loop, whose cleanup path terminates workers and re-raises.
    if hasattr(signal, "pthread_sigmask"):
        mask = signal.pthread_sigmask(signal.SIG_BLOCK, {signal.SIGINT})
        try:
            proc.start()
        finally:
            signal.pthread_sigmask(signal.SIG_SETMASK, mask)
    else:  # pragma: no cover - Windows: no fork, no at-fork window
        proc.start()
    # Close the parent's copy of the write end so a dead child reads as
    # EOF on recv_end instead of a hang.
    send_end.close()
    deadline = None if policy.timeout is None else now + policy.timeout
    return _InFlight(index, attempt, proc, recv_end, deadline)


def _reap(flight: _InFlight) -> None:
    flight.process.join()
    flight.conn.close()


def _run_parallel(fn, tasks, todo, keys, outcomes, *, workers, policy,
                  label, base_seed, journal, fail_fast,
                  on_result=None) -> None:
    """Sliding-window process-per-task supervisor."""
    # (index, attempt, not_before): attempts waiting to be dispatched.
    pending: list[tuple[int, int, float]] = [(i, 1, 0.0) for i in todo]
    running: dict[Connection, _InFlight] = {}

    def finalize(flight: _InFlight, status: str, error: str,
                 tb: str | None) -> None:
        """Retry if attempts remain, else record (and maybe raise) failure."""
        now = time.monotonic()  # repro: noqa[RPR001] -- supervision deadlines are wall-clock, not simulation time
        if flight.attempt <= policy.retries:
            _STATS.retries += 1
            backoff = policy.delay(base_seed, flight.index, flight.attempt)
            pending.append((flight.index, flight.attempt + 1, now + backoff))
            return
        _STATS.failures += 1
        outcomes[flight.index] = _outcome(
            flight.index, label, tasks[flight.index], base_seed, status,
            error=error, tb=tb, attempts=flight.attempt,
        )
        if on_result is not None:
            on_result(outcomes[flight.index])
        if fail_fast:
            raise outcomes[flight.index].to_error(base_seed)

    try:
        while pending or running:
            now = time.monotonic()  # repro: noqa[RPR001] -- supervision deadlines are wall-clock, not simulation time
            # Dispatch every eligible pending attempt into free slots.
            while len(running) < workers:
                slot = next(
                    (k for k, (_, _, nb) in enumerate(pending) if nb <= now),
                    None,
                )
                if slot is None:
                    break
                index, attempt, _ = pending.pop(slot)
                flight = _spawn(fn, tasks, index, attempt, policy, now)
                running[flight.conn] = flight
            if not running:
                # Every remaining attempt is backing off; sleep to the
                # earliest eligibility.
                time.sleep(max(0.0, min(nb for _, _, nb in pending) - now))
                continue
            # Block until a worker reports, a deadline expires, or a
            # backed-off retry becomes dispatchable.
            wakeups = [f.deadline for f in running.values()
                       if f.deadline is not None]
            # Only *future* eligibility counts: an already-eligible retry
            # is waiting on a slot, which only a completion can free.
            wakeups += [nb for _, _, nb in pending if nb > now]
            timeout = None if not wakeups else max(0.0, min(wakeups) - now)
            ready = _conn_wait(list(running), timeout=timeout)
            for conn in ready:
                flight = running.pop(conn)
                try:
                    message = conn.recv()
                except EOFError:
                    _reap(flight)
                    _STATS.crashes += 1
                    finalize(
                        flight, "failed",
                        "worker crashed (killed or exited) with exit code "
                        f"{flight.process.exitcode}", None,
                    )
                    continue
                _reap(flight)
                if message[0] == "ok":
                    _record_ok(outcomes, keys, journal, tasks, label,
                               base_seed, flight.index, message[1],
                               flight.attempt, on_result)
                else:
                    _, etype, emsg, tb = message
                    finalize(flight, "failed", f"{etype}: {emsg}", tb)
            # Enforce deadlines on whatever is still in flight.
            now = time.monotonic()  # repro: noqa[RPR001] -- supervision deadlines are wall-clock, not simulation time
            for conn, flight in list(running.items()):
                if flight.deadline is None or now < flight.deadline:
                    continue
                del running[conn]
                flight.process.terminate()
                _reap(flight)
                _STATS.timeouts += 1
                finalize(
                    flight, "timed-out",
                    f"exceeded per-task timeout of {policy.timeout}s", None,
                )
    except BaseException:
        # Fail-fast error, KeyboardInterrupt, anything: leave no orphans.
        # Journaled results are already durable, so the run is resumable.
        for flight in running.values():
            flight.process.terminate()
        for flight in running.values():
            _reap(flight)
        raise
