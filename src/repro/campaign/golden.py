"""Golden-result regression: pin a campaign's summaries, diff drift.

The pinned matrix (``scenarios/golden/``) is the repo's answer to the
quiet-regression problem: a refactor that shifts a latency percentile
by a few percent breaks no unit test, but it silently moves the
edge-vs-cloud crossovers the paper's claims hang on.  The golden file
commits every scenario's full metric mapping; CI re-runs the campaign
and :func:`diff_golden` compares value-by-value under explicit
tolerances, reporting *which metric of which scenario drifted by how
much* — not just "files differ".

The default tolerances are near-exact (``rtol=1e-9``) because the
simulator is deterministic per seed: legitimate changes to golden
numbers should be rare, reviewed events (``repro campaign FILE
--update-golden EXPECTED``), not noise to be absorbed.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass
from pathlib import Path

from repro.campaign.runner import CampaignResult
from repro.campaign.spec import GoldenTolerance

from repro.experiments import schema as wire

__all__ = ["GoldenDrift", "golden_summary", "write_golden", "load_golden", "diff_golden"]

#: Legacy golden-file markers, re-exported for back-compat.  New files
#: carry the unified envelope (``schema_version``/``kind``) *and* these
#: markers — see :mod:`repro.experiments.schema`.
GOLDEN_MAGIC = wire.GOLDEN_MAGIC
GOLDEN_VERSION = wire.GOLDEN_LEGACY_VERSION


@dataclass(frozen=True)
class GoldenDrift:
    """One divergence between a campaign run and its pinned summary."""

    scenario: str
    metric: str
    expected: float | None
    actual: float | None
    delta: float | None

    def render(self) -> str:
        if self.expected is None:
            return f"{self.scenario}: unexpected metric/scenario {self.metric!r} (not pinned)"
        if self.actual is None:
            return f"{self.scenario}: missing pinned metric/scenario {self.metric!r}"
        return (
            f"{self.scenario}: {self.metric} drifted "
            f"{self.expected!r} -> {self.actual!r} (delta {self.delta:+.6g})"
        )


def golden_summary(result: CampaignResult) -> dict:
    """JSON-safe pinnable summary of a campaign run.

    An enveloped ``golden-summary`` document dual-stamped with the
    legacy ``magic``/``version`` markers (older checkouts keep reading
    files this build writes).
    """
    return wire.dump_golden_summary(result)


def write_golden(result: CampaignResult, path: str | Path) -> Path:
    """Pin ``result`` as the expected summary at ``path``."""
    return wire.dump(golden_summary(result), path)


def load_golden(path: str | Path) -> dict:
    """Load a pinned summary (enveloped or legacy), refusing unknown
    formats loudly with a :class:`ValueError` naming the file."""
    path = Path(path)
    data = json.loads(path.read_text(encoding="utf-8"))
    try:
        return wire.load_golden_summary(data)
    except wire.WireFormatError as exc:
        raise ValueError(f"{path} is not a golden campaign summary: {exc}") from exc


def diff_golden(
    result: CampaignResult,
    expected: dict,
    tolerance: GoldenTolerance | None = None,
) -> list[GoldenDrift]:
    """Compare a run to its pinned summary; return the drifts.

    Every drift names the scenario, the metric, both values and the
    delta.  Structural differences (scenario present on one side only,
    quarantine-set changes) are reported as drifts with a ``None`` side.
    The comparison passes when ``abs(actual - expected) <= atol +
    rtol * abs(expected)`` per metric.
    """
    tol = tolerance or GoldenTolerance()
    drifts: list[GoldenDrift] = []
    pinned = expected.get("scenarios", {})

    for name, run in result.runs.items():
        if name not in pinned:
            drifts.append(GoldenDrift(name, "<scenario>", None, None, None))
            continue
        want = pinned[name].get("metrics", {})
        for metric, actual in run.metrics.items():
            if metric not in want:
                drifts.append(GoldenDrift(name, metric, None, actual, None))
                continue
            exp = float(want[metric])
            if not math.isclose(actual, exp, rel_tol=tol.rtol, abs_tol=tol.atol):
                drifts.append(GoldenDrift(name, metric, exp, actual, actual - exp))
        for metric in want:
            if metric not in run.metrics:
                drifts.append(GoldenDrift(name, metric, float(want[metric]), None, None))
    for name in pinned:
        if name not in result.runs:
            drifts.append(GoldenDrift(name, "<scenario>",
                                      float(len(pinned[name].get("metrics", {}))),
                                      None, None))

    want_q = {(n, r) for n, r in expected.get("quarantined", [])}
    have_q = {(q.name, q.reason) for q in result.quarantined}
    for name, reason in sorted(have_q - want_q):
        drifts.append(GoldenDrift(name, f"<quarantined:{reason}>", None, None, None))
    for name, reason in sorted(want_q - have_q):
        drifts.append(GoldenDrift(name, f"<quarantined:{reason}>", 1.0, None, None))
    return drifts
