"""Campaign file loading: YAML/JSON parsing with line-level diagnostics.

Two front-ends feed :func:`repro.campaign.spec.compile_campaign`:

* **JSON** — always available (stdlib).  Parse errors carry the line
  and column from :class:`json.JSONDecodeError`; schema/semantic issues
  carry field paths only (stdlib ``json`` has no node positions).
* **YAML** — used when PyYAML is importable; the import is *gated* so
  the package (and JSON campaigns) work on minimal installs, and a
  ``.yaml`` file on such an install fails with an actionable message
  rather than an ImportError traceback.  YAML documents are composed
  into a node tree first (``yaml.compose`` with the safe loader — rule
  RPR010 bans ``yaml.load`` and the Full/Unsafe loaders here) and then
  converted manually, recording the source line of every field into a
  path→line map, so schema issues render as
  ``campaign.yaml:14: scenarios[3].rate_per_site: must be > 0``.

Loading never executes document content: scalars are resolved by their
implicit tag against a fixed table (null/bool/int/float/str) — there is
deliberately no object construction, no anchors-to-Python types, no
``eval`` anywhere on this path.
"""

from __future__ import annotations

import json
import math
import re
from pathlib import Path
from typing import Any

from repro.campaign.spec import CampaignSpec, CampaignValidationError, ValidationIssue, compile_campaign

try:  # optional dependency: JSON campaigns work without it
    import yaml as _yaml
except ImportError:  # pragma: no cover - exercised only on minimal installs
    _yaml = None

__all__ = ["yaml_available", "parse_document", "load_campaign", "loads_campaign"]


def yaml_available() -> bool:
    """True when PyYAML is importable (YAML campaigns supported)."""
    return _yaml is not None


# Implicit-tag scalar resolution (the YAML 1.1 core schema subset that
# the safe loader emits).  Patterns mirror pyyaml's resolver for the
# values that actually appear in campaign files.
_BOOL = {"true": True, "True": True, "false": False, "False": False}
_INT_RE = re.compile(r"^[-+]?(0|[1-9][0-9_]*)$")
_FLOAT_RE = re.compile(
    r"^[-+]?(\.[0-9]+|[0-9][0-9_]*(\.[0-9_]*)?)([eE][-+]?[0-9]+)?$"
)


def _scalar_value(node: Any) -> Any:
    tag = node.tag
    text = node.value
    if tag.endswith(":null"):
        return None
    if tag.endswith(":bool"):
        return _BOOL.get(text, text.lower() in ("yes", "on"))
    if tag.endswith(":int"):
        return int(text.replace("_", ""), 0) if text.lower().startswith(("0x", "0o", "-0x", "-0o")) else int(text.replace("_", ""))
    if tag.endswith(":float"):
        low = text.lower().replace("_", "")
        if low.endswith(".inf"):
            return -math.inf if low.startswith("-") else math.inf
        if low.endswith(".nan"):
            return math.nan
        return float(low)
    return text


def _convert_node(node: Any, path: str, lines: dict[str, int],
                  issues: list[ValidationIssue]) -> Any:
    """Convert one composed YAML node, recording line numbers by path."""
    lines.setdefault(path, node.start_mark.line + 1)
    if _yaml is not None and isinstance(node, _yaml.ScalarNode):
        return _scalar_value(node)
    if _yaml is not None and isinstance(node, _yaml.SequenceNode):
        return [
            _convert_node(child, f"{path}[{i}]" if path else f"[{i}]", lines, issues)
            for i, child in enumerate(node.value)
        ]
    if _yaml is not None and isinstance(node, _yaml.MappingNode):
        out: dict[Any, Any] = {}
        for key_node, value_node in node.value:
            if not isinstance(key_node, _yaml.ScalarNode):
                issues.append(ValidationIssue(
                    path, "mapping keys must be plain scalars",
                    key_node.start_mark.line + 1))
                continue
            key = _scalar_value(key_node)
            key_path = f"{path}.{key}" if path else str(key)
            if key in out:
                issues.append(ValidationIssue(
                    key_path, f"duplicate mapping key {key!r}",
                    key_node.start_mark.line + 1))
            lines.setdefault(key_path, key_node.start_mark.line + 1)
            out[key] = _convert_node(value_node, key_path, lines, issues)
        return out
    issues.append(ValidationIssue(  # pragma: no cover - exotic node kinds
        path, f"unsupported YAML node {type(node).__name__}",
        node.start_mark.line + 1))
    return None


def _parse_yaml(text: str, source: str) -> tuple[Any, dict[str, int]]:
    if _yaml is None:
        raise CampaignValidationError(
            "parse",
            [ValidationIssue(
                "", "PyYAML is not installed — install pyyaml or convert "
                    "the campaign file to JSON (.json)")],
            source,
        )
    try:
        # Compose (not load): we get the raw node tree with source marks
        # and do the python-object conversion ourselves, line-tracked.
        node = _yaml.compose(text, Loader=_yaml.SafeLoader)
    except _yaml.YAMLError as exc:
        mark = getattr(exc, "problem_mark", None)
        line = mark.line + 1 if mark is not None else None
        raise CampaignValidationError(
            "parse", [ValidationIssue("", f"invalid YAML: {exc}", line)], source
        ) from exc
    if node is None:
        raise CampaignValidationError(
            "parse", [ValidationIssue("", "empty document")], source)
    lines: dict[str, int] = {}
    issues: list[ValidationIssue] = []
    data = _convert_node(node, "", lines, issues)
    if issues:
        raise CampaignValidationError("parse", issues, source)
    return data, lines


def _parse_json(text: str, source: str) -> Any:
    try:
        return json.loads(text)
    except json.JSONDecodeError as exc:
        raise CampaignValidationError(
            "parse",
            [ValidationIssue("", f"invalid JSON: {exc.msg} (column {exc.colno})", exc.lineno)],
            source,
        ) from exc


def parse_document(text: str, *, fmt: str,
                   source: str = "<campaign>") -> tuple[Any, dict[str, int]]:
    """Parse campaign text into (data, path→line map).

    ``fmt`` is ``"yaml"`` or ``"json"``.  The line map is empty for
    JSON.  Raises :class:`CampaignValidationError` (kind ``parse``).
    """
    if fmt == "yaml":
        return _parse_yaml(text, source)
    if fmt == "json":
        return _parse_json(text, source), {}
    raise ValueError(f"unknown campaign format {fmt!r} (expected 'yaml' or 'json')")


def _format_for(path: Path) -> str:
    return "json" if path.suffix.lower() == ".json" else "yaml"


def loads_campaign(text: str, *, fmt: str = "yaml",
                   source: str = "<campaign>") -> CampaignSpec:
    """Parse + compile campaign text (see :func:`load_campaign`)."""
    data, lines = parse_document(text, fmt=fmt, source=source)
    return compile_campaign(data, lines=lines, source=source)


def load_campaign(path: str | Path) -> CampaignSpec:
    """Load, validate and expand a campaign file.

    The format is chosen by suffix (``.json`` → JSON, anything else →
    YAML).  Raises :class:`CampaignValidationError` with kind
    ``parse``/``schema``/``semantic``; per-scenario semantic issues are
    *collected* on the returned spec instead (see
    :meth:`CampaignSpec.require_valid`).
    """
    path = Path(path)
    try:
        text = path.read_text(encoding="utf-8")
    except OSError as exc:
        raise CampaignValidationError(
            "parse", [ValidationIssue("", f"cannot read campaign file: {exc}")], str(path)
        ) from exc
    return loads_campaign(text, fmt=_format_for(path), source=str(path))
