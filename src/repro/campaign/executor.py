"""Scenario execution: one :class:`ScenarioSpec` → one :class:`ScenarioRun`.

The executor is the bridge from the declarative campaign format to the
simulator: it materializes the scenario's axes (arrival process,
service CoV, RTT placement, queue discipline, admission control,
resilience policy, outage schedule) into a paired edge/cloud run — the
paper's comparison — and reduces both runs to a flat ``{metric: float}``
mapping that the golden differ can compare value-by-value.

Everything here is deterministic per ``(spec, seed)``: the edge and
cloud simulations get independent derived seeds, and the optional
``max_events`` budget (``Simulation.run(max_events=)``) trips at a
seed-deterministic event count, so a budget-exceeding scenario fails
identically in sequential and parallel campaign runs.

:func:`scenario_task` is module-level and takes only picklable
arguments, so the campaign runner can hand it to the supervised
:func:`repro.parallel.run_tasks` path (process-per-task, RPR005).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.campaign.spec import ScenarioSpec
from repro.mitigation.admission import (
    AdaptiveAdmission,
    AIMDConcurrencyLimit,
    OccupancyAdmission,
)
from repro.parallel.seeding import derive_seed
from repro.queueing.distributions import (
    Deterministic,
    Distribution,
    Exponential,
    HyperExponential,
    Uniform,
    fit_two_moments,
)
from repro.sim.client import OpenLoopSource
from repro.sim.engine import Simulation
from repro.sim.failures import FailureInjector
from repro.sim.network import ConstantLatency
from repro.sim.overload import AdaptiveLIFODiscipline, CoDelDiscipline
from repro.sim.resilience import BreakerConfig, ResilientClient, RetryPolicy
from repro.sim.topology import CloudDeployment, EdgeDeployment, EdgeSite
from repro.stats.summary import summarize
from repro.workload.service import DNNInferenceModel

__all__ = ["ScenarioRun", "run_scenario", "scenario_task"]

#: Deployment-kind seed streams (matches ``run_comparison``'s pairing).
_EDGE_STREAM = 0
_CLOUD_STREAM = 1


@dataclass(frozen=True)
class ScenarioRun:
    """Result of one executed scenario: identity + flat metrics.

    ``metrics`` maps metric names to floats (milliseconds for latency
    entries, raw counts otherwise) — a shape the golden differ can walk
    without knowing scenario internals.  Two runs of the same spec are
    bit-identical, so equality of the whole object is meaningful.
    """

    name: str
    seed: int
    metrics: dict[str, float] = field(default_factory=dict)

    def __post_init__(self):
        # Frozen dataclass with a mutable mapping: normalize to plain
        # floats so equality/pickling round-trips are exact.
        object.__setattr__(
            self, "metrics", {k: float(v) for k, v in self.metrics.items()}
        )


def _interarrival(spec: ScenarioSpec, rate: float) -> Distribution:
    """Inter-arrival gap distribution of one site's source."""
    gap = 1.0 / rate
    if spec.arrival == "poisson":
        return Exponential(gap)
    if spec.arrival == "deterministic":
        return Deterministic(gap)
    if spec.arrival == "uniform":
        return Uniform(0.5 * gap, 1.5 * gap)
    if spec.arrival == "bursty":
        return HyperExponential.balanced(gap, spec.arrival_cv2)
    raise ValueError(f"unknown arrival process {spec.arrival!r}")  # pragma: no cover


def _discipline_factory(spec: ScenarioSpec):
    """Zero-arg factory for a fresh per-station discipline (or None)."""
    if spec.discipline == "fifo":
        return None  # station default
    if spec.discipline == "adaptive-lifo":
        return AdaptiveLIFODiscipline
    target = spec.codel_target
    return lambda: CoDelDiscipline(target)


def _admission_factory(spec: ScenarioSpec):
    """Zero-arg factory for a fresh per-station admission (or None)."""
    if spec.admission == "none":
        return None
    if spec.admission == "occupancy":
        limit = spec.admission_limit
        return lambda: OccupancyAdmission(limit)
    latency_target = spec.latency_target
    return lambda: AdaptiveAdmission(AIMDConcurrencyLimit(latency_target))


def _wrap_client(spec: ScenarioSpec, sim: Simulation, deployment):
    """Wrap a deployment in the scenario's resilience policy, if any."""
    if spec.resilience == "none":
        return deployment
    return ResilientClient(
        sim,
        deployment,
        timeout=spec.client_timeout,
        slo_deadline=spec.deadline,
        retry=RetryPolicy(max_attempts=spec.max_attempts),
        breaker=BreakerConfig() if spec.resilience == "retry+breaker" else None,
    )


def _run_one(spec: ScenarioSpec, kind: str, seed: int,
             max_events: int | None) -> dict[str, float]:
    """Run one deployment of the pair; return its metric entries."""
    model = DNNInferenceModel(cv2=spec.service_cv2)
    servers_per_site = model.servers_for_machines(spec.machines_per_site)
    service_dist = fit_two_moments(model.mean_service_time, spec.service_cv2)
    rate = (
        spec.rate_per_site
        if spec.rate_per_site is not None
        else spec.implied_utilization * spec.machines_per_site * model.saturation_rate
    )
    make_disc = _discipline_factory(spec)
    make_adm = _admission_factory(spec)

    sim = Simulation(seed)
    if kind == "edge":
        latency = ConstantLatency.from_ms(spec.edge_rtt_ms)
        sites = [
            EdgeSite(
                sim, f"site-{i}", servers_per_site, latency, service_dist,
                queue_capacity=spec.queue_capacity,
                discipline=None if make_disc is None else make_disc(),
                admission=None if make_adm is None else make_adm(),
            )
            for i in range(spec.sites)
        ]
        deployment = EdgeDeployment(sim, sites)
        if spec.failures:
            stations = [s.station for s in sites]
            injector = FailureInjector(
                sim, stations, mtbf=None, mttr=None, stop_time=spec.duration
            )
            for win in spec.failures:
                targets = (
                    None if win.sites is None
                    else [stations[i] for i in win.sites]
                )
                injector.schedule_outage(win.start, win.duration, targets)
    else:
        latency = ConstantLatency.from_ms(spec.cloud_rtt_ms)
        deployment = CloudDeployment(
            sim,
            servers=spec.sites * servers_per_site,
            latency=latency,
            service_dist=service_dist,
            queue_capacity=spec.queue_capacity,
            discipline=make_disc,
            admission=make_adm,
        )

    target = _wrap_client(spec, sim, deployment)
    gap = _interarrival(spec, rate)
    for i in range(spec.sites):
        OpenLoopSource(
            sim, target, gap,
            site=f"site-{i}" if kind == "edge" else f"client-{i}",
            stop_time=spec.duration,
        )

    # EventBudgetExceeded propagates: the campaign runner's supervised
    # task sees a failure and (deterministically) quarantines the
    # scenario after its bounded retries.
    sim.run(max_events=max_events)

    log = target.log if target is not deployment else deployment.log
    bd = log.breakdown().after(spec.duration * spec.warmup_fraction)
    out: dict[str, float] = {f"{kind}_count": float(bd.end_to_end.size)}
    if bd.end_to_end.size:
        ms = summarize(bd.end_to_end).as_ms()
        out[f"{kind}_mean_ms"] = ms["mean"]
        out[f"{kind}_p50_ms"] = ms["p50"]
        out[f"{kind}_p95_ms"] = ms["p95"]
    else:
        out[f"{kind}_mean_ms"] = 0.0
        out[f"{kind}_p50_ms"] = 0.0
        out[f"{kind}_p95_ms"] = 0.0
    refusals = deployment.refusal_counts
    out[f"{kind}_refused"] = float(refusals.total + deployment.lost)
    if target is not deployment:
        out[f"{kind}_failed_ops"] = float(len(target.failed))
    return out


def run_scenario(spec: ScenarioSpec, *, max_events: int | None = None) -> ScenarioRun:
    """Execute one scenario (paired edge + cloud runs).

    The pair is seeded like :func:`repro.sim.runner.run_comparison`:
    edge on ``derive_seed(seed, 0) == seed``'s stream position 0 and
    cloud on stream 1 — independent but reproducible from the
    scenario's resolved seed alone.
    """
    if spec.seed is None:
        raise ValueError(
            f"scenario {spec.name!r} has no resolved seed; load it through "
            "compile_campaign (or set seed explicitly)"
        )
    metrics: dict[str, float] = {}
    metrics.update(_run_one(spec, "edge", derive_seed(spec.seed, _EDGE_STREAM), max_events))
    metrics.update(_run_one(spec, "cloud", derive_seed(spec.seed, _CLOUD_STREAM), max_events))
    metrics["delta_mean_ms"] = metrics["cloud_mean_ms"] - metrics["edge_mean_ms"]
    metrics["delta_p95_ms"] = metrics["cloud_p95_ms"] - metrics["edge_p95_ms"]
    return ScenarioRun(name=spec.name, seed=spec.seed, metrics=metrics)


def scenario_task(spec: ScenarioSpec, max_events: int | None) -> ScenarioRun:
    """Picklable task trampoline for the supervised campaign runner."""
    return run_scenario(spec, max_events=max_events)
