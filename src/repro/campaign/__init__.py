"""Declarative scenario campaigns (PR 7).

Layers:

* :mod:`repro.campaign.spec` — campaign/scenario schema, dependency-free
  validation (field-path + line diagnostics, parse/schema/semantic exit
  codes), deterministic ``matrix:`` expansion and per-scenario seed
  derivation;
* :mod:`repro.campaign.loader` — YAML (line-tracked, safe-composed) and
  JSON front-ends;
* :mod:`repro.campaign.executor` — one scenario → one paired edge/cloud
  simulation → flat metrics;
* :mod:`repro.campaign.runner` — resource-governed supervised execution
  with quarantine, salvage reports and journaled resume;
* :mod:`repro.campaign.golden` — pinned expected summaries and the
  tolerance-aware drift differ.

See ``docs/campaigns.md`` for the file-format reference and workflow.
"""

from repro.campaign.executor import ScenarioRun, run_scenario
from repro.campaign.golden import (
    GoldenDrift,
    diff_golden,
    golden_summary,
    load_golden,
    write_golden,
)
from repro.campaign.loader import load_campaign, loads_campaign, yaml_available
from repro.campaign.runner import (
    CampaignResult,
    CampaignStats,
    QuarantineRecord,
    campaign_stats,
    run_campaign,
)
from repro.campaign.spec import (
    EXIT_OK,
    EXIT_PARSE,
    EXIT_SCHEMA,
    EXIT_SEMANTIC,
    BudgetSpec,
    CampaignSpec,
    CampaignValidationError,
    GoldenTolerance,
    OutageSpec,
    ScenarioSpec,
    ValidationIssue,
    compile_campaign,
    dump_campaign,
    scenario_seed,
)

__all__ = [
    "EXIT_OK",
    "EXIT_PARSE",
    "EXIT_SCHEMA",
    "EXIT_SEMANTIC",
    "BudgetSpec",
    "CampaignResult",
    "CampaignSpec",
    "CampaignStats",
    "CampaignValidationError",
    "GoldenDrift",
    "GoldenTolerance",
    "OutageSpec",
    "QuarantineRecord",
    "ScenarioRun",
    "ScenarioSpec",
    "ValidationIssue",
    "campaign_stats",
    "compile_campaign",
    "diff_golden",
    "dump_campaign",
    "golden_summary",
    "load_campaign",
    "load_golden",
    "loads_campaign",
    "run_campaign",
    "run_scenario",
    "scenario_seed",
    "write_golden",
    "yaml_available",
]
