"""Resource-governed campaign execution with quarantine and resume.

:func:`run_campaign` drives a compiled :class:`CampaignSpec` through
the supervised parallel substrate (PR 6): every scenario is one
process-per-task attempt under the campaign's budgets (wall-clock
``timeout``, simulator ``max_events``, bounded ``retries``), journaled
for kill-anywhere resume, and — crucially — *quarantined* rather than
fatal when it persistently fails.  A 300-scenario sweep with three bad
configurations finishes with 297 results and a salvage report naming
the three, instead of dying at the first.

Quarantine has three entry points, in order:

1. **invalid-config** — the scenario carried semantic validation issues
   (:attr:`CampaignSpec.scenario_issues`); it is never executed.
2. **failed** — every attempt raised (including the deterministic
   :class:`repro.sim.engine.EventBudgetExceeded` when the event budget
   trips, and worker crashes detected via pipe EOF).
3. **timed-out** — every attempt exceeded the wall-clock budget.

Scenario results are deterministic functions of ``(spec, seed)``, so a
:class:`CampaignResult` is bit-identical across worker counts, across
resume boundaries and across quarantine-inducing chaos — the property
:meth:`CampaignResult.fingerprint` condenses for tests and the golden
differ builds on.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from collections.abc import Callable

from repro.campaign.executor import ScenarioRun, scenario_task
from repro.campaign.spec import CampaignSpec
from repro.experiments.result import ExperimentResult
from repro.experiments.store import open_journal
from repro.parallel import run_tasks
from repro.parallel.pool import resolve_workers
from repro.parallel.supervise import TaskOutcome

__all__ = [
    "QuarantineRecord",
    "CampaignStats",
    "campaign_stats",
    "CampaignResult",
    "run_campaign",
]


@dataclass(frozen=True)
class QuarantineRecord:
    """One scenario the campaign set aside instead of aborting on."""

    name: str
    reason: str          # "invalid-config" | "failed" | "timed-out"
    detail: str
    attempts: int = 0

    def as_dict(self) -> dict:
        return {
            "name": self.name,
            "reason": self.reason,
            "detail": self.detail,
            "attempts": self.attempts,
        }


@dataclass
class CampaignStats:
    """Process-wide campaign progress counters.

    Conforms to the ``observables()`` protocol (rule RPR004):
    ``telemetry.register_observables("campaign", campaign_stats())``
    exports the counters as pull-model gauges.
    """

    scenarios: int = 0
    executed: int = 0
    succeeded: int = 0
    quarantined: int = 0
    journal_replayed: int = 0

    def observables(self) -> dict[str, Callable[[], int]]:
        return {
            "scenarios": lambda: self.scenarios,
            "executed": lambda: self.executed,
            "succeeded": lambda: self.succeeded,
            "quarantined": lambda: self.quarantined,
            "journal_replayed": lambda: self.journal_replayed,
        }

    def snapshot(self) -> dict[str, int]:
        return {name: reader() for name, reader in self.observables().items()}

    def reset(self) -> None:
        self.scenarios = self.executed = self.succeeded = 0
        self.quarantined = self.journal_replayed = 0


_STATS = CampaignStats()


def campaign_stats() -> CampaignStats:
    """The process-wide :class:`CampaignStats` singleton."""
    return _STATS


@dataclass
class CampaignResult:
    """Everything one campaign run produced.

    ``runs`` holds successful scenarios in campaign (expansion) order;
    ``outcomes`` the raw supervised :class:`TaskOutcome` envelopes for
    executed scenarios (same order, quarantined-before-execution
    scenarios excluded); ``quarantined`` the salvage records.
    """

    campaign: str
    seed: int
    digest: str
    runs: dict[str, ScenarioRun] = field(default_factory=dict)
    outcomes: list[TaskOutcome] = field(default_factory=list)
    quarantined: list[QuarantineRecord] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.quarantined

    def fingerprint(self) -> str:
        """Stable hash of the campaign's observable outcome.

        Covers every successful scenario's full metric mapping and every
        quarantine's (name, reason) — but not wall-clock facts like
        attempt counts or journal hits, which legitimately differ across
        resumes.  Two runs of the same campaign (any worker count, with
        or without a resume boundary) must fingerprint identically.
        """
        doc = {
            "campaign": self.campaign,
            "seed": self.seed,
            "digest": self.digest,
            "runs": {
                name: {"seed": run.seed, "metrics": run.metrics}
                for name, run in self.runs.items()
            },
            "quarantined": sorted((q.name, q.reason) for q in self.quarantined),
        }
        blob = json.dumps(doc, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(blob.encode("utf-8")).hexdigest()

    def salvage_report(self) -> dict:
        """JSON-safe report of what was set aside (CI artifact shape).

        An enveloped ``salvage-report`` document (see
        :mod:`repro.experiments.schema`) — the same shape the service's
        status endpoint serves.
        """
        from repro.experiments import schema as wire

        return wire.dump_salvage_report(self)

    def to_experiment_result(self) -> ExperimentResult:
        """Project into the standard experiment envelope (PR 3)."""
        rows = [
            {"scenario": name, "seed": run.seed} | run.metrics
            for name, run in self.runs.items()
        ]
        qrows = [q.as_dict() for q in self.quarantined]
        lines = [
            f"campaign {self.campaign!r}: {len(self.runs)} scenario(s) ok, "
            f"{len(qrows)} quarantined",
        ]
        for q in self.quarantined:
            lines.append(f"  quarantined {q.name!r} ({q.reason}): {q.detail}")
        return ExperimentResult(
            name=f"campaign:{self.campaign}",
            text="\n".join(lines),
            tables={"scenarios": rows, "quarantined": qrows},
            metadata={
                "campaign": self.campaign,
                "seed": self.seed,
                "digest": self.digest,
                "fingerprint": self.fingerprint(),
            },
            raw=self,
        )


def run_campaign(
    spec: CampaignSpec,
    *,
    workers: int | None = None,
    checkpoint=None,
    resume: bool = False,
    progress: Callable[[str, TaskOutcome], None] | None = None,
) -> CampaignResult:
    """Execute a compiled campaign under its budgets.

    Parameters
    ----------
    spec:
        Compiled campaign (:func:`repro.campaign.loader.load_campaign`).
        Scenarios named in :attr:`CampaignSpec.scenario_issues` are
        quarantined as ``invalid-config`` without executing.
    workers:
        Worker processes for the supervised fan-out (``None`` reads
        ``$REPRO_WORKERS``; results are identical for any value).
    checkpoint:
        Journal path (or open :class:`~repro.experiments.store.RunJournal`)
        for crash-safe resume.  The journal scope binds the campaign
        name, seed *and* content digest, so a checkpoint file can never
        replay results for an edited campaign.
    resume:
        Require the checkpoint to exist (fail loudly on a typo'd path
        instead of silently starting over).
    progress:
        Optional per-scenario lifecycle callback, invoked in this
        process as ``progress(scenario_name, outcome)`` the moment each
        scenario settles (journal replay, success or exhausted failure)
        — completion order, not campaign order.  ``repro.service``
        bridges this to its SSE event stream.

    Raises
    ------
    repro.obs.provider.TelemetryFanoutError
        If ``workers > 1`` while a telemetry factory is installed —
        the same API-layer guardrail ``run_tasks`` and the CLI apply
        (a ``ValueError`` naming ``--telemetry`` and ``--workers``).
    """
    from repro.obs import provider

    provider.ensure_fanout_compatible(resolve_workers(workers),
                                      context="run_campaign")
    stats = campaign_stats()
    stats.scenarios += len(spec.scenarios)

    quarantined: list[QuarantineRecord] = []
    bad = {}
    for name, issues in spec.scenario_issues:
        detail = "; ".join(i.render() for i in issues)
        bad[name] = detail
    runnable = [s for s in spec.scenarios if s.name not in bad]
    # Quarantine invalid scenarios in campaign order, like everything else.
    for s in spec.scenarios:
        if s.name in bad:
            quarantined.append(QuarantineRecord(s.name, "invalid-config", bad[s.name]))

    digest = spec.digest()
    journal, owned = open_journal(
        checkpoint,
        scope=f"campaign|{spec.name}|{spec.seed}|{digest}",
        resume=resume,
    )
    # A wall-clock timeout needs a worker process to terminate; with a
    # single in-process worker run_tasks would only warn, so drop it.
    timeout = spec.budgets.timeout if resolve_workers(workers) > 1 else None
    on_result = None
    if progress is not None:
        names = [s.name for s in runnable]
        on_result = lambda outcome: progress(names[outcome.index], outcome)
    try:
        outcomes: list[TaskOutcome] = run_tasks(
            scenario_task,
            [(s, spec.budgets.max_events) for s in runnable],
            workers=workers,
            timeout=timeout,
            retries=spec.budgets.retries,
            salvage=True,
            base_seed=spec.seed,
            journal=journal,
            label="scenario",
            on_result=on_result,
        )
    finally:
        if owned and journal is not None:
            journal.close()

    runs: dict[str, ScenarioRun] = {}
    for s, outcome in zip(runnable, outcomes, strict=True):
        stats.executed += 1
        if outcome.from_journal:
            stats.journal_replayed += 1
        if outcome.ok:
            runs[s.name] = outcome.result
            stats.succeeded += 1
        else:
            quarantined.append(
                QuarantineRecord(
                    s.name,
                    outcome.status,
                    outcome.error or "unknown failure",
                    attempts=outcome.attempts,
                )
            )
    stats.quarantined += len(quarantined)

    return CampaignResult(
        campaign=spec.name,
        seed=spec.seed,
        digest=digest,
        runs=runs,
        outcomes=outcomes,
        quarantined=quarantined,
    )
