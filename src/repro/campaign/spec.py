"""Declarative scenario campaigns: schema, validation, matrix expansion.

The paper's inversion claims rest on a *cross product* of scenario axes
(arrival process × service CoV × RTT placement × queue discipline ×
admission × resilience policy × failure schedule).  Hand-written CLI
invocations cannot cover that space reliably; this module gives it a
declarative file format with validation strong enough that a malformed
scenario is caught *before* it poisons a multi-hundred-run sweep.

A campaign document (YAML or JSON — :mod:`repro.campaign.loader`) is::

    campaign: crossover-grid
    seed: 2021
    defaults:            # merged under every scenario
      duration: 120.0
    scenarios:           # explicit scenarios (optional)
      - name: typical-base
        rtt: typical
        utilization: 0.6
    matrix:              # cross-multiplied template blocks (optional)
      - name: grid
        axes:
          rtt: [typical, distant]
          utilization: [0.5, 0.7, 0.9]
        base:
          arrival: poisson
    budgets:             # per-scenario resource governors (optional)
      timeout: 120.0     # wall-clock seconds per scenario
      max_events: 2000000
      retries: 1

Validation is **dependency-free** (no jsonschema) and staged, with each
stage mapped to its own exit code for scripting (see
:data:`EXIT_PARSE` / :data:`EXIT_SCHEMA` / :data:`EXIT_SEMANTIC`):

1. *parse* — the file is not YAML/JSON at all;
2. *schema* — wrong shapes: unknown keys, wrong types, out-of-range
   single-field values.  Issues carry the field path
   (``scenarios[3].rate_per_site``) and, for YAML sources, the line;
3. *semantic* — cross-field and cross-scenario problems: an unstable
   open-loop rate with nothing bounding the queue, overlapping outage
   windows, duplicate scenario names.  Per-scenario semantic issues are
   additionally kept on :attr:`CampaignSpec.scenario_issues` so the
   campaign runner can *quarantine* the bad scenarios and still run the
   rest (``repro validate`` stays fail-fast).

Matrix expansion is deterministic: axes cross-multiply in declaration
order (row-major, first axis outermost), generated names are
``block/axis=value,...``, and every scenario's seed is derived from the
campaign seed and the scenario's *name* via
:mod:`repro.parallel.seeding` — re-loading, re-ordering sibling blocks,
or changing the worker count can never change a scenario's stream.
"""

from __future__ import annotations

import hashlib
import json
import math
from dataclasses import dataclass, field, fields, replace
from typing import Any

from repro.parallel.seeding import derive_seed

__all__ = [
    "EXIT_OK",
    "EXIT_PARSE",
    "EXIT_SCHEMA",
    "EXIT_SEMANTIC",
    "ARRIVALS",
    "DISCIPLINES",
    "ADMISSIONS",
    "RESILIENCE_MODES",
    "RTT_PRESETS",
    "ValidationIssue",
    "CampaignValidationError",
    "OutageSpec",
    "ScenarioSpec",
    "BudgetSpec",
    "GoldenTolerance",
    "CampaignSpec",
    "scenario_seed",
    "compile_campaign",
    "dump_campaign",
]

#: Process exit codes of ``repro validate`` (0 = valid; 1 is reserved
#: for unexpected crashes, 2 for argparse usage errors).
EXIT_OK = 0
EXIT_PARSE = 3
EXIT_SCHEMA = 4
EXIT_SEMANTIC = 5

_EXIT_BY_KIND = {"parse": EXIT_PARSE, "schema": EXIT_SCHEMA, "semantic": EXIT_SEMANTIC}

#: Named RTT placements (the paper's Section 4.1 deployments), mapped to
#: their cloud RTTs in milliseconds; the edge is 1 ms in all of them.
RTT_PRESETS = {
    "nearby": 15.0,
    "typical": 24.0,
    "distant": 54.0,
    "transcontinental": 80.0,
}

#: Arrival-process axis: Poisson (M), deterministic (D), uniform spread,
#: and a bursty hyper-exponential with configurable ``arrival_cv2``.
ARRIVALS = ("poisson", "deterministic", "uniform", "bursty")

#: Queue-discipline axis (PR 2's overload controls).
DISCIPLINES = ("fifo", "adaptive-lifo", "codel")

#: Admission-control axis.
ADMISSIONS = ("none", "occupancy", "aimd")

#: Client resilience axis (PR 1's request-level policies).
RESILIENCE_MODES = ("none", "retry", "retry+breaker")

#: Saturation rate of the calibrated DNN application model
#: (req/s/machine) — used only for the open-loop stability check;
#: the executor takes the authoritative value from the service model.
_SATURATION_RATE = 13.0

#: Seed-derivation stream reserved for campaign scenarios; disjoint from
#: task-index streams and the supervisor's retry stream.
_SCENARIO_STREAM = 0x5CE2


@dataclass(frozen=True)
class ValidationIssue:
    """One validation problem, addressed by field path (and line)."""

    path: str
    message: str
    line: int | None = None

    def render(self, source: str = "") -> str:
        where = f"{source}:" if source else ""
        if self.line is not None:
            where += f"{self.line}:"
        return f"{where} {self.path}: {self.message}" if self.path else f"{where} {self.message}"


class CampaignValidationError(ValueError):
    """A campaign document failed validation.

    ``kind`` is one of ``"parse"``, ``"schema"``, ``"semantic"`` —
    :attr:`exit_code` maps it to the ``repro validate`` exit code, so
    scripts can distinguish a typo'd file from a physically impossible
    scenario without parsing the message.
    """

    def __init__(self, kind: str, issues: list[ValidationIssue], source: str = ""):
        if kind not in _EXIT_BY_KIND:
            raise ValueError(f"unknown validation kind {kind!r}")
        self.kind = kind
        self.issues = list(issues)
        self.source = source
        lines = [issue.render(source) for issue in self.issues]
        super().__init__(
            f"{kind} error in campaign {source or 'document'} "
            f"({len(self.issues)} issue(s)):\n  " + "\n  ".join(lines)
        )

    @property
    def exit_code(self) -> int:
        return _EXIT_BY_KIND[self.kind]


def scenario_seed(campaign_seed: int, name: str) -> int:
    """Deterministic per-scenario seed: campaign seed × scenario name.

    The name is hashed (SHA-256) into two 32-bit path components under a
    dedicated SeedSequence stream, so a scenario's stream depends only
    on ``(campaign seed, name)`` — never on its position in the file,
    the expansion order of sibling matrix blocks, or the worker count.
    """
    digest = hashlib.sha256(name.encode("utf-8")).digest()
    h0 = int.from_bytes(digest[:4], "big")
    h1 = int.from_bytes(digest[4:8], "big")
    return derive_seed(campaign_seed, _SCENARIO_STREAM, h0, h1)


# ---------------------------------------------------------------------------
# Specs
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class OutageSpec:
    """One forced outage window on the edge deployment.

    ``sites`` are edge-site indices (``None`` = every site, the
    correlated shared-cause regime).  Windows on one site must be
    disjoint — the same contract
    :meth:`repro.sim.failures.FailureInjector.schedule_outage` enforces
    at injection time, checked here at validation time instead so a bad
    outage plan never reaches the simulator.
    """

    start: float
    duration: float
    sites: tuple[int, ...] | None = None

    @property
    def end(self) -> float:
        return self.start + self.duration


@dataclass(frozen=True)
class ScenarioSpec:
    """One fully-resolved scenario: every axis of the cross product.

    Instances come out of :func:`compile_campaign` with defaults merged,
    matrix axes substituted and ``seed`` resolved; the executor
    (:mod:`repro.campaign.executor`) consumes them as-is.
    """

    name: str
    rtt: str | None = "typical"          # preset name, or None with explicit RTTs
    cloud_rtt_ms: float = 24.0
    edge_rtt_ms: float = 1.0
    arrival: str = "poisson"
    arrival_cv2: float = 4.0             # bursty arrivals only
    service_cv2: float = 0.25
    sites: int = 5
    machines_per_site: int = 1
    rate_per_site: float | None = None
    utilization: float | None = None     # exactly one of the two is set
    duration: float = 300.0
    warmup_fraction: float = 0.2
    discipline: str = "fifo"
    codel_target: float = 0.25
    queue_capacity: int | None = None
    admission: str = "none"
    admission_limit: float = 3.0         # occupancy admission
    latency_target: float = 0.5          # AIMD admission
    resilience: str = "none"
    client_timeout: float = 1.5
    deadline: float = 6.0
    max_attempts: int = 3
    failures: tuple[OutageSpec, ...] = ()
    seed: int | None = None              # resolved by compile_campaign

    @property
    def implied_utilization(self) -> float:
        """Per-site utilization implied by the load fields."""
        if self.utilization is not None:
            return self.utilization
        assert self.rate_per_site is not None
        return self.rate_per_site / (self.machines_per_site * _SATURATION_RATE)

    @property
    def bounded(self) -> bool:
        """True when some mechanism bounds the queue under overload."""
        return (
            self.queue_capacity is not None
            or self.admission != "none"
            or self.discipline == "codel"
            or self.resilience != "none"
        )

    def to_mapping(self) -> dict[str, Any]:
        """Canonical JSON-safe mapping (full form, stable key order)."""
        out: dict[str, Any] = {"name": self.name}
        if self.rtt is not None:
            out["rtt"] = self.rtt
        else:
            out["cloud_rtt_ms"] = self.cloud_rtt_ms
            out["edge_rtt_ms"] = self.edge_rtt_ms
        out["arrival"] = self.arrival
        if self.arrival == "bursty":
            out["arrival_cv2"] = self.arrival_cv2
        out["service_cv2"] = self.service_cv2
        out["sites"] = self.sites
        out["machines_per_site"] = self.machines_per_site
        if self.rate_per_site is not None:
            out["rate_per_site"] = self.rate_per_site
        if self.utilization is not None:
            out["utilization"] = self.utilization
        out["duration"] = self.duration
        out["warmup_fraction"] = self.warmup_fraction
        out["discipline"] = self.discipline
        if self.discipline == "codel":
            out["codel_target"] = self.codel_target
        if self.queue_capacity is not None:
            out["queue_capacity"] = self.queue_capacity
        out["admission"] = self.admission
        if self.admission == "occupancy":
            out["admission_limit"] = self.admission_limit
        if self.admission == "aimd":
            out["latency_target"] = self.latency_target
        out["resilience"] = self.resilience
        if self.resilience != "none":
            out["client_timeout"] = self.client_timeout
            out["deadline"] = self.deadline
            out["max_attempts"] = self.max_attempts
        if self.failures:
            out["failures"] = [
                {"start": w.start, "duration": w.duration}
                | ({} if w.sites is None else {"sites": list(w.sites)})
                for w in self.failures
            ]
        if self.seed is not None:
            out["seed"] = self.seed
        return out


@dataclass(frozen=True)
class BudgetSpec:
    """Per-scenario resource governors for the campaign runner."""

    timeout: float | None = None     # wall-clock seconds per scenario attempt
    max_events: int | None = None    # simulator events per scenario
    retries: int = 1                 # bounded retries before quarantine


@dataclass(frozen=True)
class GoldenTolerance:
    """Tolerances of the golden-result differ (per metric, in ms units)."""

    rtol: float = 1e-9
    atol: float = 1e-12


@dataclass(frozen=True)
class CampaignSpec:
    """A compiled campaign: expanded scenarios plus run governance.

    ``scenarios`` is the full deterministic expansion (explicit list
    first, then matrix blocks in declaration order).  ``scenario_issues``
    maps scenario names to their *semantic* validation issues — empty
    for a fully valid campaign; the runner quarantines the named
    scenarios, while :meth:`require_valid` (the ``repro validate``
    contract) refuses the whole document.
    """

    name: str
    seed: int = 2021
    description: str = ""
    budgets: BudgetSpec = field(default_factory=BudgetSpec)
    tolerance: GoldenTolerance = field(default_factory=GoldenTolerance)
    scenarios: tuple[ScenarioSpec, ...] = ()
    scenario_issues: tuple[tuple[str, tuple[ValidationIssue, ...]], ...] = ()
    source: str = "<campaign>"

    @property
    def invalid_names(self) -> tuple[str, ...]:
        return tuple(name for name, _ in self.scenario_issues)

    def require_valid(self) -> "CampaignSpec":
        """Raise ``semantic`` if any scenario carries semantic issues."""
        if self.scenario_issues:
            issues = [i for _, group in self.scenario_issues for i in group]
            raise CampaignValidationError("semantic", issues, self.source)
        return self

    def digest(self) -> str:
        """Content hash of the expanded campaign (checkpoint scoping)."""
        doc = json.dumps(dump_campaign(self), sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(doc.encode("utf-8")).hexdigest()[:16]


# ---------------------------------------------------------------------------
# Schema validation machinery (dependency-free)
# ---------------------------------------------------------------------------

class _Check:
    """Issue collector bound to one source document (and its line map)."""

    def __init__(self, lines: dict[str, int] | None):
        self.lines = lines or {}
        self.issues: list[ValidationIssue] = []

    def add(self, path: str, message: str) -> None:
        self.issues.append(ValidationIssue(path, message, self.lines.get(path)))

    def raise_if_any(self, kind: str, source: str) -> None:
        if self.issues:
            raise CampaignValidationError(kind, self.issues, source)


def _is_number(value: Any) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def _join(prefix: str, key: str) -> str:
    return f"{prefix}.{key}" if prefix else key


_SCENARIO_FIELDS = {f.name for f in fields(ScenarioSpec)}


def _check_number(check: _Check, path: str, value: Any, *, lo: float | None = None,
                  hi: float | None = None, lo_open: bool = False,
                  hi_open: bool = False, integer: bool = False) -> bool:
    """Type/range check one numeric field; True when usable."""
    if integer and not (isinstance(value, int) and not isinstance(value, bool)):
        check.add(path, f"expected an integer, got {value!r}")
        return False
    if not integer and not _is_number(value):
        check.add(path, f"expected a number, got {value!r}")
        return False
    if not math.isfinite(value):
        check.add(path, f"must be finite, got {value!r}")
        return False
    if lo is not None and (value <= lo if lo_open else value < lo):
        op = ">" if lo_open else ">="
        check.add(path, f"must be {op} {lo:g}, got {value!r}")
        return False
    if hi is not None and (value >= hi if hi_open else value > hi):
        op = "<" if hi_open else "<="
        check.add(path, f"must be {op} {hi:g}, got {value!r}")
        return False
    return True


def _check_enum(check: _Check, path: str, value: Any, allowed: tuple[str, ...]) -> bool:
    if not isinstance(value, str) or value not in allowed:
        check.add(path, f"must be one of {list(allowed)}, got {value!r}")
        return False
    return True


def _schema_scenario(check: _Check, raw: Any, path: str) -> dict[str, Any] | None:
    """Schema-check one scenario mapping; return normalized kwargs."""
    if not isinstance(raw, dict):
        check.add(path, f"scenario must be a mapping, got {type(raw).__name__}")
        return None
    before = len(check.issues)
    kwargs: dict[str, Any] = {}
    for key in raw:
        if not isinstance(key, str):
            check.add(path, f"scenario keys must be strings, got {key!r}")
            return None
        if key not in _SCENARIO_FIELDS:
            hint = ""
            close = [f for f in _SCENARIO_FIELDS if f.startswith(key[:3])]
            if close:
                hint = f" (did you mean one of {sorted(close)}?)"
            check.add(_join(path, key), f"unknown scenario field{hint}")

    name = raw.get("name")
    if not isinstance(name, str) or not name or name != name.strip() or "\n" in name:
        check.add(_join(path, "name"),
                  f"scenario name must be a non-empty string without "
                  f"surrounding whitespace, got {name!r}")
    else:
        kwargs["name"] = name

    if "rtt" in raw:
        if _check_enum(check, _join(path, "rtt"), raw["rtt"], tuple(RTT_PRESETS)):
            kwargs["rtt"] = raw["rtt"]
            kwargs["cloud_rtt_ms"] = RTT_PRESETS[raw["rtt"]]
            kwargs["edge_rtt_ms"] = 1.0
        if "cloud_rtt_ms" in raw or "edge_rtt_ms" in raw:
            check.add(_join(path, "rtt"),
                      "give either a named rtt preset or explicit "
                      "cloud_rtt_ms/edge_rtt_ms, not both")
    elif "cloud_rtt_ms" in raw or "edge_rtt_ms" in raw:
        kwargs["rtt"] = None
        if "cloud_rtt_ms" not in raw:
            check.add(_join(path, "cloud_rtt_ms"),
                      "cloud_rtt_ms is required with explicit RTTs")
        else:
            if _check_number(check, _join(path, "cloud_rtt_ms"), raw["cloud_rtt_ms"],
                             lo=0.0, lo_open=True):
                kwargs["cloud_rtt_ms"] = float(raw["cloud_rtt_ms"])
        if "edge_rtt_ms" in raw:
            if _check_number(check, _join(path, "edge_rtt_ms"), raw["edge_rtt_ms"], lo=0.0):
                kwargs["edge_rtt_ms"] = float(raw["edge_rtt_ms"])

    if "arrival" in raw and _check_enum(check, _join(path, "arrival"), raw["arrival"], ARRIVALS):
        kwargs["arrival"] = raw["arrival"]
    if "arrival_cv2" in raw and _check_number(
            check, _join(path, "arrival_cv2"), raw["arrival_cv2"], lo=1.0, lo_open=True):
        kwargs["arrival_cv2"] = float(raw["arrival_cv2"])
    if "service_cv2" in raw and _check_number(
            check, _join(path, "service_cv2"), raw["service_cv2"], lo=0.0):
        kwargs["service_cv2"] = float(raw["service_cv2"])
    if "sites" in raw and _check_number(check, _join(path, "sites"), raw["sites"],
                                        lo=1, integer=True):
        kwargs["sites"] = raw["sites"]
    if "machines_per_site" in raw and _check_number(
            check, _join(path, "machines_per_site"), raw["machines_per_site"],
            lo=1, integer=True):
        kwargs["machines_per_site"] = raw["machines_per_site"]
    if "rate_per_site" in raw and _check_number(
            check, _join(path, "rate_per_site"), raw["rate_per_site"], lo=0.0, lo_open=True):
        kwargs["rate_per_site"] = float(raw["rate_per_site"])
    if "utilization" in raw and _check_number(
            check, _join(path, "utilization"), raw["utilization"],
            lo=0.0, hi=1.0, lo_open=True, hi_open=True):
        kwargs["utilization"] = float(raw["utilization"])
    if "duration" in raw and _check_number(check, _join(path, "duration"),
                                           raw["duration"], lo=0.0, lo_open=True):
        kwargs["duration"] = float(raw["duration"])
    if "warmup_fraction" in raw and _check_number(
            check, _join(path, "warmup_fraction"), raw["warmup_fraction"],
            lo=0.0, hi=1.0, hi_open=True):
        kwargs["warmup_fraction"] = float(raw["warmup_fraction"])
    if "discipline" in raw and _check_enum(check, _join(path, "discipline"),
                                           raw["discipline"], DISCIPLINES):
        kwargs["discipline"] = raw["discipline"]
    if "codel_target" in raw and _check_number(
            check, _join(path, "codel_target"), raw["codel_target"], lo=0.0, lo_open=True):
        kwargs["codel_target"] = float(raw["codel_target"])
    if "queue_capacity" in raw and raw["queue_capacity"] is not None:
        if _check_number(check, _join(path, "queue_capacity"), raw["queue_capacity"],
                         lo=0, integer=True):
            kwargs["queue_capacity"] = raw["queue_capacity"]
    if "admission" in raw and _check_enum(check, _join(path, "admission"),
                                          raw["admission"], ADMISSIONS):
        kwargs["admission"] = raw["admission"]
    if "admission_limit" in raw and _check_number(
            check, _join(path, "admission_limit"), raw["admission_limit"],
            lo=0.0, lo_open=True):
        kwargs["admission_limit"] = float(raw["admission_limit"])
    if "latency_target" in raw and _check_number(
            check, _join(path, "latency_target"), raw["latency_target"],
            lo=0.0, lo_open=True):
        kwargs["latency_target"] = float(raw["latency_target"])
    if "resilience" in raw and _check_enum(check, _join(path, "resilience"),
                                           raw["resilience"], RESILIENCE_MODES):
        kwargs["resilience"] = raw["resilience"]
    if "client_timeout" in raw and _check_number(
            check, _join(path, "client_timeout"), raw["client_timeout"],
            lo=0.0, lo_open=True):
        kwargs["client_timeout"] = float(raw["client_timeout"])
    if "deadline" in raw and _check_number(check, _join(path, "deadline"),
                                           raw["deadline"], lo=0.0, lo_open=True):
        kwargs["deadline"] = float(raw["deadline"])
    if "max_attempts" in raw and _check_number(
            check, _join(path, "max_attempts"), raw["max_attempts"], lo=1, integer=True):
        kwargs["max_attempts"] = raw["max_attempts"]
    if "seed" in raw and raw["seed"] is not None and _check_number(
            check, _join(path, "seed"), raw["seed"], lo=0, integer=True):
        kwargs["seed"] = raw["seed"]

    if "failures" in raw:
        windows = raw["failures"]
        if not isinstance(windows, list):
            check.add(_join(path, "failures"),
                      f"expected a list of outage windows, got {type(windows).__name__}")
        else:
            parsed: list[OutageSpec] = []
            for i, win in enumerate(windows):
                wpath = f"{_join(path, 'failures')}[{i}]"
                if not isinstance(win, dict):
                    check.add(wpath, "outage window must be a mapping "
                                     "{start, duration, sites?}")
                    continue
                unknown = sorted(set(win) - {"start", "duration", "sites"})
                for key in unknown:
                    check.add(_join(wpath, str(key)), "unknown outage-window field")
                ok = _check_number(check, _join(wpath, "start"), win.get("start"), lo=0.0)
                ok &= _check_number(check, _join(wpath, "duration"),
                                    win.get("duration"), lo=0.0, lo_open=True)
                site_sel: tuple[int, ...] | None = None
                if "sites" in win:
                    sel = win["sites"]
                    if (not isinstance(sel, list) or not sel
                            or not all(isinstance(s, int) and not isinstance(s, bool)
                                       and s >= 0 for s in sel)):
                        check.add(_join(wpath, "sites"),
                                  f"must be a non-empty list of site indices, got {sel!r}")
                        ok = False
                    else:
                        site_sel = tuple(sel)
                if ok:
                    parsed.append(OutageSpec(float(win["start"]),
                                             float(win["duration"]), site_sel))
            kwargs["failures"] = tuple(parsed)

    if len(check.issues) > before:
        return None
    return kwargs


def _semantic_scenario(spec: ScenarioSpec, check: _Check, path: str) -> None:
    """Cross-field checks for one scenario (collected, not raised)."""
    if spec.rate_per_site is not None and spec.utilization is not None:
        check.add(path, "give rate_per_site or utilization, not both")
    if spec.arrival != "bursty" and "arrival_cv2" == "":  # pragma: no cover - guard
        pass
    rho = spec.implied_utilization
    if spec.rate_per_site is not None and rho >= 1.0 and not spec.bounded:
        check.add(
            _join(path, "rate_per_site"),
            f"rate {spec.rate_per_site:g} req/s/site implies utilization "
            f"{rho:.2f} >= 1 with an unbounded FIFO queue — the scenario "
            "diverges; lower the rate or bound it (queue_capacity, "
            "admission, codel, or a resilience deadline)",
        )
    if spec.resilience != "none" and spec.client_timeout >= spec.deadline:
        check.add(
            _join(path, "client_timeout"),
            f"per-attempt timeout {spec.client_timeout:g}s must be below the "
            f"operation deadline {spec.deadline:g}s",
        )
    # Outage windows: inside the run, valid site indices, disjoint per
    # site — the same contract FailureInjector.schedule_outage enforces,
    # surfaced at validation time with field paths.
    per_site: dict[int, list[tuple[float, float, int]]] = {}
    for i, win in enumerate(spec.failures):
        wpath = f"{_join(path, 'failures')}[{i}]"
        if win.start >= spec.duration:
            check.add(_join(wpath, "start"),
                      f"outage starts at {win.start:g}s, at or past the run "
                      f"duration {spec.duration:g}s — it would never be injected")
            continue
        targets = win.sites if win.sites is not None else tuple(range(spec.sites))
        for s in targets:
            if s >= spec.sites:
                check.add(_join(wpath, "sites"),
                          f"site index {s} out of range (scenario has "
                          f"{spec.sites} sites)")
                continue
            for s0, e0, j in per_site.get(s, ()):
                if win.start <= e0 and s0 <= win.end:
                    check.add(
                        wpath,
                        f"outage window [{win.start:g}, {win.end:g}) overlaps "
                        f"window [{s0:g}, {e0:g}) (failures[{j}]) on site "
                        f"{s}; windows per site must be disjoint",
                    )
            per_site.setdefault(s, []).append((win.start, win.end, i))


# ---------------------------------------------------------------------------
# Matrix expansion
# ---------------------------------------------------------------------------

def _fmt_axis_value(value: Any) -> str:
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, float):
        return f"{value:g}"
    return str(value)


def _expand_matrix_block(block: Any, index: int, check: _Check,
                         path: str) -> list[dict[str, Any]]:
    """Cross-multiply one matrix block into raw scenario mappings."""
    if not isinstance(block, dict):
        check.add(path, f"matrix block must be a mapping, got {type(block).__name__}")
        return []
    unknown = sorted(set(block) - {"name", "axes", "base"})
    for key in unknown:
        check.add(_join(path, str(key)), "unknown matrix-block field "
                                         "(expected name/axes/base)")
    name = block.get("name", f"matrix{index}")
    if not isinstance(name, str) or not name:
        check.add(_join(path, "name"), f"block name must be a non-empty string, got {name!r}")
        return []
    axes = block.get("axes")
    if not isinstance(axes, dict) or not axes:
        check.add(_join(path, "axes"), "matrix block needs a non-empty "
                                       "`axes` mapping of field -> value list")
        return []
    base = block.get("base", {})
    if not isinstance(base, dict):
        check.add(_join(path, "base"), f"base must be a mapping, got {type(base).__name__}")
        return []
    # Axes expand in declaration order (mapping insertion order is the
    # document order — rule RPR010 keeps unordered collections out of
    # this path), first axis outermost: row-major, reproducibly.
    axis_items: list[tuple[str, list[Any]]] = []
    for axis, values in axes.items():
        apath = _join(_join(path, "axes"), str(axis))
        if not isinstance(axis, str) or (axis not in _SCENARIO_FIELDS or axis in
                                         ("name", "seed", "failures")):
            check.add(apath, f"axis must name a scalar scenario field, got {axis!r}")
            return []
        if not isinstance(values, list) or not values:
            check.add(apath, f"axis values must be a non-empty list, got {values!r}")
            return []
        for v in values:
            if isinstance(v, (dict, list)):
                check.add(apath, f"axis values must be scalars, got {v!r}")
                return []
        axis_items.append((axis, values))

    combos: list[dict[str, Any]] = [{}]
    for axis, values in axis_items:
        combos = [combo | {axis: v} for combo in combos for v in values]
    out = []
    for combo in combos:
        label = ",".join(f"{a}={_fmt_axis_value(combo[a])}" for a, _ in axis_items)
        out.append(dict(base) | combo | {"name": f"{name}/{label}"})
    return out


# ---------------------------------------------------------------------------
# Campaign compilation
# ---------------------------------------------------------------------------

_CAMPAIGN_KEYS = {"campaign", "description", "seed", "defaults", "scenarios",
                  "matrix", "budgets", "golden"}

#: Largest allowed expansion — a typo'd axis list should fail, not OOM.
MAX_SCENARIOS = 10_000


def compile_campaign(
    data: Any,
    *,
    lines: dict[str, int] | None = None,
    source: str = "<campaign>",
) -> CampaignSpec:
    """Validate and expand a parsed campaign document.

    Raises :class:`CampaignValidationError` with ``kind="schema"`` for
    structural problems and ``kind="semantic"`` for campaign-level
    semantic ones (duplicate names, empty expansion).  Per-scenario
    semantic issues do **not** raise — they are recorded on
    :attr:`CampaignSpec.scenario_issues` so the runner can quarantine
    just those scenarios; call :meth:`CampaignSpec.require_valid` for
    the fail-fast contract.
    """
    check = _Check(lines)
    if not isinstance(data, dict):
        check.add("", f"campaign document must be a mapping, got {type(data).__name__}")
        check.raise_if_any("schema", source)
    for key in data:
        if key not in _CAMPAIGN_KEYS:
            check.add(str(key), "unknown campaign field")

    name = data.get("campaign")
    if not isinstance(name, str) or not name:
        check.add("campaign", f"campaign name must be a non-empty string, got {name!r}")
        name = "<invalid>"
    description = data.get("description", "")
    if not isinstance(description, str):
        check.add("description", f"must be a string, got {description!r}")
        description = ""
    seed = data.get("seed", 2021)
    if not (isinstance(seed, int) and not isinstance(seed, bool)) or seed < 0:
        check.add("seed", f"must be an integer >= 0, got {seed!r}")
        seed = 2021

    budgets = BudgetSpec()
    if "budgets" in data:
        braw = data["budgets"]
        if not isinstance(braw, dict):
            check.add("budgets", f"must be a mapping, got {type(braw).__name__}")
        else:
            for key in sorted(set(braw) - {"timeout", "max_events", "retries"}):
                check.add(_join("budgets", str(key)), "unknown budget field")
            kw: dict[str, Any] = {}
            if braw.get("timeout") is not None and _check_number(
                    check, "budgets.timeout", braw["timeout"], lo=0.0, lo_open=True):
                kw["timeout"] = float(braw["timeout"])
            if braw.get("max_events") is not None and _check_number(
                    check, "budgets.max_events", braw["max_events"], lo=1, integer=True):
                kw["max_events"] = braw["max_events"]
            if "retries" in braw and _check_number(
                    check, "budgets.retries", braw["retries"], lo=0, integer=True):
                kw["retries"] = braw["retries"]
            budgets = BudgetSpec(**kw)

    tolerance = GoldenTolerance()
    if "golden" in data:
        graw = data["golden"]
        if not isinstance(graw, dict):
            check.add("golden", f"must be a mapping, got {type(graw).__name__}")
        else:
            for key in sorted(set(graw) - {"rtol", "atol"}):
                check.add(_join("golden", str(key)), "unknown golden field")
            kw = {}
            if "rtol" in graw and _check_number(check, "golden.rtol", graw["rtol"], lo=0.0):
                kw["rtol"] = float(graw["rtol"])
            if "atol" in graw and _check_number(check, "golden.atol", graw["atol"], lo=0.0):
                kw["atol"] = float(graw["atol"])
            tolerance = GoldenTolerance(**kw)

    defaults = data.get("defaults", {})
    if not isinstance(defaults, dict):
        check.add("defaults", f"must be a mapping, got {type(defaults).__name__}")
        defaults = {}
    elif "name" in defaults:
        check.add("defaults.name", "defaults cannot set the scenario name")
        defaults = {k: v for k, v in defaults.items() if k != "name"}

    raw_scenarios: list[tuple[dict[str, Any] | Any, str]] = []
    explicit = data.get("scenarios", [])
    if not isinstance(explicit, list):
        check.add("scenarios", f"must be a list, got {type(explicit).__name__}")
    else:
        for i, raw in enumerate(explicit):
            raw_scenarios.append((raw, f"scenarios[{i}]"))

    matrix = data.get("matrix", [])
    if isinstance(matrix, dict):
        matrix = [matrix]
    if not isinstance(matrix, list):
        check.add("matrix", f"must be a mapping or list of mappings, "
                            f"got {type(matrix).__name__}")
        matrix = []
    for i, block in enumerate(matrix):
        for generated in _expand_matrix_block(block, i, check, f"matrix[{i}]"):
            raw_scenarios.append((generated, f"matrix[{i}]"))

    if len(raw_scenarios) > MAX_SCENARIOS:
        check.add("matrix", f"expansion produced {len(raw_scenarios)} scenarios "
                            f"(cap {MAX_SCENARIOS}); split the campaign")
    if "scenarios" not in data and not matrix:
        check.add("", "campaign has neither `scenarios` nor `matrix`")
    check.raise_if_any("schema", source)

    specs: list[ScenarioSpec] = []
    for raw, spath in raw_scenarios:
        merged = (dict(defaults) | raw) if isinstance(raw, dict) else raw
        kwargs = _schema_scenario(check, merged, spath)
        if kwargs is not None:
            specs.append(ScenarioSpec(**kwargs))
    check.raise_if_any("schema", source)

    # Campaign-level semantics: names must be unique (they key golden
    # summaries, quarantine records and seed derivation).
    seen: dict[str, str] = {}
    for spec, (_, spath) in zip(specs, raw_scenarios, strict=True):
        if spec.name in seen:
            check.add(_join(spath, "name"),
                      f"duplicate scenario name {spec.name!r} "
                      f"(first defined at {seen[spec.name]})")
        else:
            seen[spec.name] = spath
    if not specs:
        check.add("", "campaign expands to zero scenarios")
    check.raise_if_any("semantic", source)

    # Per-scenario semantics: collected per name so the runner can
    # quarantine precisely; the default load seeds scenarios too.
    issue_groups: list[tuple[str, tuple[ValidationIssue, ...]]] = []
    resolved: list[ScenarioSpec] = []
    for spec, (_, spath) in zip(specs, raw_scenarios, strict=True):
        local = _Check(lines)
        _semantic_scenario(spec, local, spath)
        if local.issues:
            issue_groups.append((spec.name, tuple(local.issues)))
        if spec.seed is None:
            spec = replace(spec, seed=scenario_seed(seed, spec.name))
        resolved.append(spec)

    return CampaignSpec(
        name=name,
        seed=seed,
        description=description,
        budgets=budgets,
        tolerance=tolerance,
        scenarios=tuple(resolved),
        scenario_issues=tuple(issue_groups),
        source=source,
    )


def dump_campaign(spec: CampaignSpec) -> dict[str, Any]:
    """Canonical JSON-safe document for a compiled campaign.

    The dump is fully expanded (matrix blocks become explicit
    scenarios, seeds resolved), so ``compile_campaign(dump_campaign(c))``
    reproduces the same scenarios in the same order with bit-identical
    seeds — the round-trip property the regression tests pin.
    """
    doc: dict[str, Any] = {"campaign": spec.name, "seed": spec.seed}
    if spec.description:
        doc["description"] = spec.description
    if spec.budgets != BudgetSpec():
        b: dict[str, Any] = {}
        if spec.budgets.timeout is not None:
            b["timeout"] = spec.budgets.timeout
        if spec.budgets.max_events is not None:
            b["max_events"] = spec.budgets.max_events
        if spec.budgets.retries != 1:
            b["retries"] = spec.budgets.retries
        doc["budgets"] = b
    if spec.tolerance != GoldenTolerance():
        doc["golden"] = {"rtol": spec.tolerance.rtol, "atol": spec.tolerance.atol}
    doc["scenarios"] = [s.to_mapping() for s in spec.scenarios]
    return doc
