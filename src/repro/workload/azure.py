"""Synthetic Azure-serverless-like workload traces.

The paper replays the Azure Public Dataset (Shahrad et al., ATC'20):
per-minute invocation counts per function, plus coarse execution-time
distributions, grouped into k mutually exclusive function sets that are
each mapped to one edge site (Section 4.1, "Azure Trace Workload").

That dataset is not redistributable here, so this module generates
traces with the same statistical signature — the three properties that
drive Figures 8–10:

1. **Heavy-tailed function popularity** (Zipf): a few functions dominate
   invocations, so grouping functions into sites yields *spatially
   skewed* per-site load.
2. **Diurnal + bursty temporal dynamics**: per-minute intensity follows
   a day-night sinusoid with per-function phase, multiplied by gamma
   noise and occasional multi-minute spikes — matching the dataset's
   highly variable per-minute counts (inter-arrival :math:`c^2 > 1`).
3. **Log-normal execution times**: per-function mean execution times are
   themselves log-normally spread across functions, as reported for the
   Azure dataset.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.queueing.distributions import LogNormal
from repro.workload.trace import RequestTrace

__all__ = ["AzureTraceConfig", "FunctionTrace", "generate_azure_workload", "group_functions_into_sites"]


@dataclass(frozen=True)
class AzureTraceConfig:
    """Knobs of the synthetic Azure workload generator.

    Attributes
    ----------
    n_functions:
        Number of serverless functions.
    duration:
        Trace length in seconds.
    total_rate:
        Aggregate mean invocation rate across all functions (req/s).
    popularity_s:
        Zipf exponent of function popularity (≈1.1 fits the dataset's
        heavy skew).
    diurnal_amplitude:
        Relative amplitude of the day-night sinusoid in [0, 1).
    diurnal_period:
        Period of the sinusoid in seconds (86400 = one day).
    noise_cv2:
        Squared CoV of the per-minute gamma intensity noise.
    spike_prob:
        Per-minute probability a function enters a burst.
    spike_factor:
        Intensity multiplier during a burst minute.
    exec_mean / exec_spread_cv2:
        The across-function log-normal of mean execution times (seconds).
    exec_cv2:
        Within-function squared CoV of execution times.
    minute:
        Count bucketing granularity in seconds (the dataset uses 60).
    """

    n_functions: int = 40
    duration: float = 4 * 3600.0
    total_rate: float = 40.0
    popularity_s: float = 1.1
    diurnal_amplitude: float = 0.5
    diurnal_period: float = 86_400.0
    noise_cv2: float = 0.5
    spike_prob: float = 0.01
    spike_factor: float = 6.0
    exec_mean: float = 0.3
    exec_spread_cv2: float = 1.0
    exec_cv2: float = 0.6
    minute: float = 60.0

    def __post_init__(self):
        if self.n_functions < 1:
            raise ValueError(f"n_functions must be >= 1, got {self.n_functions}")
        if self.duration <= 0 or self.total_rate <= 0:
            raise ValueError("duration and total_rate must be > 0")
        if not 0.0 <= self.diurnal_amplitude < 1.0:
            raise ValueError(f"diurnal_amplitude must be in [0, 1), got {self.diurnal_amplitude}")
        if not 0.0 <= self.spike_prob <= 1.0:
            raise ValueError(f"spike_prob must be a probability, got {self.spike_prob}")
        if self.spike_factor < 1.0:
            raise ValueError(f"spike_factor must be >= 1, got {self.spike_factor}")
        if min(self.noise_cv2, self.exec_spread_cv2, self.exec_cv2) < 0:
            raise ValueError("CoV parameters must be >= 0")
        if self.minute <= 0:
            raise ValueError(f"minute must be > 0, got {self.minute}")


@dataclass(frozen=True)
class FunctionTrace:
    """Invocations of one serverless function."""

    function_id: int
    trace: RequestTrace
    mean_exec: float
    popularity: float = field(default=0.0)

    def __len__(self) -> int:
        return len(self.trace)


def _zipf_popularity(n: int, s: float, rng: np.random.Generator) -> np.ndarray:
    """Zipf weights over a random permutation of function ids."""
    ranks = np.arange(1, n + 1, dtype=float)
    weights = ranks**-s
    weights /= weights.sum()
    return rng.permutation(weights)


def generate_azure_workload(
    config: AzureTraceConfig, rng: np.random.Generator
) -> list[FunctionTrace]:
    """Generate the full per-function workload.

    Returns one :class:`FunctionTrace` per function; each trace carries
    per-request service times sampled from that function's execution-time
    distribution (the paper's coarse-distribution sampling step).
    """
    popularity = _zipf_popularity(config.n_functions, config.popularity_s, rng)
    n_minutes = int(np.ceil(config.duration / config.minute))
    minute_starts = np.arange(n_minutes) * config.minute
    # Across-function spread of mean execution times.
    exec_means = LogNormal(config.exec_mean, config.exec_spread_cv2).sample(
        rng, config.n_functions
    )
    phases = rng.uniform(0.0, 2.0 * np.pi, config.n_functions)
    out: list[FunctionTrace] = []
    for f in range(config.n_functions):
        base_rate = config.total_rate * popularity[f]
        diurnal = 1.0 + config.diurnal_amplitude * np.sin(
            2.0 * np.pi * minute_starts / config.diurnal_period + phases[f]
        )
        if config.noise_cv2 > 0:
            shape = 1.0 / config.noise_cv2
            noise = rng.gamma(shape, 1.0 / shape, n_minutes)
        else:
            noise = np.ones(n_minutes)
        spikes = np.where(rng.random(n_minutes) < config.spike_prob, config.spike_factor, 1.0)
        intensity = base_rate * diurnal * noise * spikes  # req/s per minute bucket
        counts = rng.poisson(intensity * config.minute)
        times = _counts_to_times(counts, minute_starts, config.minute, config.duration, rng)
        services = LogNormal(float(exec_means[f]), config.exec_cv2).sample(rng, times.size)
        out.append(
            FunctionTrace(
                function_id=f,
                trace=RequestTrace(times, np.asarray(services, dtype=float)),
                mean_exec=float(exec_means[f]),
                popularity=float(popularity[f]),
            )
        )
    return out


def _counts_to_times(
    counts: np.ndarray,
    starts: np.ndarray,
    minute: float,
    duration: float,
    rng: np.random.Generator,
) -> np.ndarray:
    """Expand per-minute counts into uniform timestamps within each minute."""
    total = int(counts.sum())
    if total == 0:
        return np.empty(0)
    offsets = rng.random(total) * minute
    bases = np.repeat(starts, counts)
    times = np.sort(bases + offsets)
    return times[times < duration]


def group_functions_into_sites(
    functions: list[FunctionTrace],
    k: int,
    rng: np.random.Generator,
) -> list[RequestTrace]:
    """Partition functions into ``k`` mutually exclusive sets, one per site.

    This is the paper's construction: "choose a set of functions ...
    and group them into k mutually exclusive sets.  The request traces
    for each grouping ... is then mapped onto one edge site."  Functions
    are dealt round-robin in random order, so sites get equal function
    *counts* but — because popularity is Zipf — very unequal *load*,
    which is exactly the spatial skew of Figure 8.

    Returns per-site merged traces (with service times).
    """
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    if len(functions) < k:
        raise ValueError(f"need at least k={k} functions, got {len(functions)}")
    order = rng.permutation(len(functions))
    groups: list[list[RequestTrace]] = [[] for _ in range(k)]
    for pos, idx in enumerate(order):
        groups[pos % k].append(functions[idx].trace)
    return [RequestTrace.merge(g) for g in groups]
