"""Arrival processes (the Gatling stand-in).

Generators for the request streams the paper drives its experiments
with: Poisson (the Section 3.1.1 model), deterministic, renewal
processes with tunable burstiness (Gamma and hyperexponential — used for
the CoV ablations of Corollary 3.2.1) and a two-state Markov-modulated
Poisson process for flash-crowd-like on/off bursts.

Each process generates a :class:`~repro.workload.trace.RequestTrace`
over a fixed horizon or with a fixed request count.  ``interarrival()``
exposes the matching gap distribution for plugging directly into an
:class:`~repro.sim.client.OpenLoopSource`.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from repro.queueing.distributions import (
    Deterministic,
    Distribution,
    Erlang,
    Exponential,
    HyperExponential,
)
from repro.workload.trace import RequestTrace

__all__ = [
    "ArrivalProcess",
    "PoissonArrivals",
    "DeterministicArrivals",
    "GammaRenewalArrivals",
    "HyperExpArrivals",
    "MMPPArrivals",
    "NonHomogeneousPoisson",
    "merge_traces",
]


class ArrivalProcess(ABC):
    """A stationary arrival process with a known mean rate."""

    def __init__(self, rate: float):
        if rate <= 0:
            raise ValueError(f"rate must be > 0, got {rate}")
        self.rate = float(rate)

    @abstractmethod
    def generate(
        self, rng: np.random.Generator, *, horizon: float | None = None, n: int | None = None
    ) -> RequestTrace:
        """Generate arrivals over ``[0, horizon)`` or exactly ``n`` of them."""

    @staticmethod
    def _resolve_count(rate: float, horizon: float | None, n: int | None) -> tuple[float, int]:
        if (horizon is None) == (n is None):
            raise ValueError("specify exactly one of horizon or n")
        if n is not None:
            if n < 1:
                raise ValueError(f"n must be >= 1, got {n}")
            return np.inf, int(n)
        if horizon <= 0:
            raise ValueError(f"horizon must be > 0, got {horizon}")
        # Generous over-draw, trimmed after cumsum.
        return float(horizon), int(rate * horizon + 6.0 * np.sqrt(rate * horizon) + 16)

    def _from_gaps(self, gaps: np.ndarray, horizon: float, n_exact: int | None) -> RequestTrace:
        times = np.cumsum(gaps)
        if n_exact is not None:
            return RequestTrace(times[:n_exact])
        return RequestTrace(times[times < horizon])


class _RenewalArrivals(ArrivalProcess):
    """Renewal process driven by an i.i.d. gap distribution."""

    def __init__(self, rate: float, gap_dist: Distribution):
        super().__init__(rate)
        self.gap_dist = gap_dist

    def interarrival(self) -> Distribution:
        """The gap distribution (mean ``1/rate``)."""
        return self.gap_dist

    @property
    def cv2(self) -> float:
        """Squared CoV of the inter-arrival gaps."""
        return self.gap_dist.cv2

    def generate(self, rng, *, horizon=None, n=None):
        hz, count = self._resolve_count(self.rate, horizon, n)
        gaps = np.asarray(self.gap_dist.sample(rng, count), dtype=float)
        # Top up in the (rare) under-draw case for horizon mode.
        while n is None and gaps.sum() < hz:
            gaps = np.concatenate([gaps, np.asarray(self.gap_dist.sample(rng, count))])
        return self._from_gaps(gaps, hz, n)


def _require_positive_rate(rate: float) -> float:
    if rate <= 0:
        raise ValueError(f"rate must be > 0, got {rate}")
    return float(rate)


class PoissonArrivals(_RenewalArrivals):
    """Poisson arrivals at ``rate`` req/s (:math:`c_A^2 = 1`)."""

    def __init__(self, rate: float):
        rate = _require_positive_rate(rate)
        super().__init__(rate, Exponential(1.0 / rate))


class DeterministicArrivals(_RenewalArrivals):
    """Perfectly paced arrivals (:math:`c_A^2 = 0`)."""

    def __init__(self, rate: float):
        rate = _require_positive_rate(rate)
        super().__init__(rate, Deterministic(1.0 / rate))


class GammaRenewalArrivals(_RenewalArrivals):
    """Gamma-gap renewal process with sub-Poisson burstiness.

    ``cv2`` must be in (0, 1]; the gap distribution is Erlang with shape
    ``round(1/cv2)`` (exact CoV at integer reciprocals).
    """

    def __init__(self, rate: float, cv2: float):
        rate = _require_positive_rate(rate)
        if not 0.0 < cv2 <= 1.0:
            raise ValueError(f"GammaRenewalArrivals needs 0 < cv2 <= 1, got {cv2}")
        if cv2 == 1.0:
            gap: Distribution = Exponential(1.0 / rate)
        else:
            gap = Erlang(max(1, round(1.0 / cv2)), 1.0 / rate)
        super().__init__(rate, gap)


class HyperExpArrivals(_RenewalArrivals):
    """Bursty renewal arrivals with :math:`c_A^2 > 1` (balanced H2 gaps).

    The knob for the burstiness ablation: Corollary 3.2.1 says inversion
    likelihood grows with the inter-arrival CoV.
    """

    def __init__(self, rate: float, cv2: float):
        rate = _require_positive_rate(rate)
        if cv2 <= 1.0:
            raise ValueError(f"HyperExpArrivals needs cv2 > 1, got {cv2}")
        super().__init__(rate, HyperExponential.balanced(1.0 / rate, cv2))


class MMPPArrivals(ArrivalProcess):
    """Two-state Markov-modulated Poisson process (on/off bursts).

    Alternates between a *base* state with rate ``base_rate`` and a
    *burst* state with rate ``burst_rate``; dwell times in each state are
    exponential.  Models flash crowds (Section 2.1's workload spikes).

    Parameters
    ----------
    base_rate / burst_rate:
        Poisson rates in each state (req/s).
    base_dwell / burst_dwell:
        Mean sojourn times in each state (seconds).
    """

    def __init__(self, base_rate: float, burst_rate: float, base_dwell: float, burst_dwell: float):
        if min(base_rate, burst_rate) <= 0:
            raise ValueError("state rates must be > 0")
        if min(base_dwell, burst_dwell) <= 0:
            raise ValueError("dwell times must be > 0")
        p_burst = burst_dwell / (base_dwell + burst_dwell)
        super().__init__((1.0 - p_burst) * base_rate + p_burst * burst_rate)
        self.base_rate = float(base_rate)
        self.burst_rate = float(burst_rate)
        self.base_dwell = float(base_dwell)
        self.burst_dwell = float(burst_dwell)

    def generate(self, rng, *, horizon=None, n=None):
        if horizon is None:
            if n is None:
                raise ValueError("specify exactly one of horizon or n")
            # Simulate by horizon until enough arrivals accumulate.
            horizon_guess = 1.5 * n / self.rate
            while True:
                trace = self.generate(rng, horizon=horizon_guess)
                if len(trace) >= n:
                    return RequestTrace(trace.arrival_times[:n])
                horizon_guess *= 2.0
        if horizon <= 0:
            raise ValueError(f"horizon must be > 0, got {horizon}")
        times = []
        t = 0.0
        in_burst = rng.random() < self.burst_dwell / (self.base_dwell + self.burst_dwell)
        while t < horizon:
            dwell = rng.exponential(self.burst_dwell if in_burst else self.base_dwell)
            rate = self.burst_rate if in_burst else self.base_rate
            end = min(t + dwell, horizon)
            count = rng.poisson(rate * (end - t))
            if count:
                times.append(np.sort(rng.uniform(t, end, count)))
            t = end
            in_burst = not in_burst
        if not times:
            return RequestTrace(np.empty(0))
        return RequestTrace(np.concatenate(times))


class NonHomogeneousPoisson(ArrivalProcess):
    """Poisson process with a time-varying rate function (thinning).

    Models diurnal envelopes and ramps directly: ``rate_fn(t)`` gives
    the instantaneous rate (req/s) at virtual time ``t``; arrivals are
    generated by Lewis–Shedler thinning against ``max_rate``.

    Parameters
    ----------
    rate_fn:
        Callable ``t -> rate``; must satisfy ``0 <= rate_fn(t) <= max_rate``.
    max_rate:
        A hard upper bound on ``rate_fn`` over the horizon.
    mean_rate:
        The long-run average rate (reported as ``self.rate``); pass the
        analytic mean of ``rate_fn`` when known, else an estimate.
    """

    def __init__(self, rate_fn, max_rate: float, mean_rate: float | None = None):
        if max_rate <= 0:
            raise ValueError(f"max_rate must be > 0, got {max_rate}")
        super().__init__(mean_rate if mean_rate is not None else max_rate / 2.0)
        self.rate_fn = rate_fn
        self.max_rate = float(max_rate)

    def generate(self, rng, *, horizon=None, n=None):
        if horizon is None:
            raise ValueError("NonHomogeneousPoisson supports horizon mode only")
        if n is not None:
            raise ValueError("specify exactly one of horizon or n")
        if horizon <= 0:
            raise ValueError(f"horizon must be > 0, got {horizon}")
        # Lewis-Shedler thinning: candidates at max_rate, accept with
        # probability rate_fn(t)/max_rate.
        expected = self.max_rate * horizon
        count = int(expected + 6.0 * np.sqrt(expected) + 16)
        candidates = np.cumsum(rng.exponential(1.0 / self.max_rate, count))
        while candidates.size and candidates[-1] < horizon:
            extra = np.cumsum(rng.exponential(1.0 / self.max_rate, count)) + candidates[-1]
            candidates = np.concatenate([candidates, extra])
        candidates = candidates[candidates < horizon]
        rates = np.asarray([self.rate_fn(float(t)) for t in candidates], dtype=float)
        if np.any(rates < 0) or np.any(rates > self.max_rate * (1 + 1e-9)):
            raise ValueError("rate_fn must stay within [0, max_rate] over the horizon")
        keep = rng.random(candidates.size) < rates / self.max_rate
        return RequestTrace(candidates[keep])


def merge_traces(traces: list[RequestTrace]) -> RequestTrace:
    """Superpose several traces (alias of :meth:`RequestTrace.merge`)."""
    return RequestTrace.merge(traces)
