"""Workload characterization: the inputs the inversion bounds need.

Before applying Lemma 3.2 or 3.3 to a real workload an operator must
estimate its parameters: the mean rate, the inter-arrival and service
squared CoVs, the burstiness beyond renewal structure, and the spatial
skew across sites.  This module computes all of them from a
:class:`~repro.workload.trace.RequestTrace` (or a set of per-site
traces) with the estimators standard in the teletraffic literature.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.workload.trace import RequestTrace

__all__ = ["WorkloadProfile", "characterize", "spatial_skew_profile", "index_of_dispersion"]


@dataclass(frozen=True)
class WorkloadProfile:
    """Summary parameters of one request trace.

    Attributes
    ----------
    requests / duration / mean_rate:
        Basic volume figures (rate in req/s).
    interarrival_cv2:
        Squared CoV of gaps — the :math:`c_A^2` of Lemma 3.2.
    service_cv2:
        Squared CoV of service demands (:math:`c_B^2`), ``None`` when
        the trace carries no service times.
    mean_service:
        Mean service demand in seconds (``None`` without service times).
    peak_to_mean:
        Max windowed rate over mean rate (flash-crowd indicator).
    dispersion:
        Index of dispersion for counts at the analysis window —
        1 for Poisson, > 1 for bursty/correlated arrivals (captures
        correlation that :math:`c_A^2` alone misses).
    window:
        Analysis window (seconds) used for the windowed statistics.
    """

    requests: int
    duration: float
    mean_rate: float
    interarrival_cv2: float
    service_cv2: float | None
    mean_service: float | None
    peak_to_mean: float
    dispersion: float
    window: float

    def suggests_poisson(self, tolerance: float = 0.2) -> bool:
        """True when both c_A² and the dispersion are near 1."""
        return (
            abs(self.interarrival_cv2 - 1.0) <= tolerance
            and abs(self.dispersion - 1.0) <= 2 * tolerance
        )


def index_of_dispersion(trace: RequestTrace, window: float) -> float:
    """Variance-to-mean ratio of per-window counts (IDC at ``window``).

    Equals 1 for a Poisson process at any window; sustained values
    above 1 indicate burstiness/correlation at that timescale.
    """
    if window <= 0:
        raise ValueError(f"window must be > 0, got {window}")
    if len(trace) < 2:
        raise ValueError("need at least 2 arrivals")
    # Only complete windows: a trailing partial window would add spurious
    # variance (its count is low purely because it is short).
    n_full = int(trace.arrival_times[-1] // window)
    if n_full < 2:
        raise ValueError(
            f"trace spans fewer than 2 complete windows of {window} s; "
            "use a smaller window"
        )
    _, rates = trace.windowed_rates(window, horizon=n_full * window)
    counts = rates * window
    mean = counts.mean()
    if mean == 0:
        return 0.0
    return float(counts.var() / mean)


def characterize(trace: RequestTrace, window: float = 60.0) -> WorkloadProfile:
    """Compute a :class:`WorkloadProfile` from a trace.

    Raises
    ------
    ValueError
        For traces with fewer than 3 arrivals (no meaningful CoV).
    """
    if len(trace) < 3:
        raise ValueError(f"need at least 3 arrivals, got {len(trace)}")
    _, rates = trace.windowed_rates(window)
    valid = rates[~np.isnan(rates)]
    mean_rate = trace.mean_rate
    peak_to_mean = float(valid.max() / mean_rate) if mean_rate > 0 else 0.0
    service_cv2 = None
    mean_service = None
    if trace.service_times is not None and trace.service_times.size:
        s = trace.service_times
        mean_service = float(s.mean())
        service_cv2 = float(s.var() / mean_service**2) if mean_service > 0 else 0.0
    return WorkloadProfile(
        requests=len(trace),
        duration=trace.duration,
        mean_rate=mean_rate,
        interarrival_cv2=trace.interarrival_cv2(),
        service_cv2=service_cv2,
        mean_service=mean_service,
        peak_to_mean=peak_to_mean,
        dispersion=index_of_dispersion(trace, window),
        window=window,
    )


def spatial_skew_profile(site_traces: list[RequestTrace]) -> dict[str, float]:
    """Spatial-skew summary across per-site traces.

    Returns the per-site demand weights' CoV, max/mean ratio, and the
    weight vector's deviation from balance measured as the ratio of
    Lemma 3.3's weighted wait factor to the balanced one at a reference
    mean utilization of 0.5 — a single "how much worse does skew make
    the edge" number.  Per-site utilizations are capped at 0.95 so a
    site that would outright overload at the reference point saturates
    the factor instead of blowing it up.
    """
    if not site_traces:
        raise ValueError("need at least one site trace")
    rates = np.array([t.mean_rate for t in site_traces], dtype=float)
    total = rates.sum()
    if total <= 0:
        raise ValueError("total rate must be positive")
    w = rates / total
    k = len(site_traces)
    rho_ref = 0.5
    # Weighted mean of 1/(1 - rho_i) with rho_i proportional to weights,
    # normalized so balanced weights give exactly 1/(1 - rho_ref).
    rho_i = np.minimum(0.95, rho_ref * k * w)
    weighted = float(np.dot(w, 1.0 / (1.0 - rho_i)))
    balanced = 1.0 / (1.0 - rho_ref)
    return {
        "site_cv": float(rates.std() / rates.mean()),
        "max_over_mean": float(rates.max() / rates.mean()),
        "skew_wait_factor": weighted / balanced,
    }
