"""Spatial workload-skew models.

Three generators for the paper's spatial dynamics:

* :func:`zipf_weights` — static Zipf split of the aggregate load across
  k sites (the standard popularity-skew model; ``s = 0`` is balanced).
* :func:`time_varying_weights` — weights that rotate around the sites
  over a diurnal period, modeling the day/night migration of load the
  paper cites (González et al.'s human-mobility result).
* :class:`HotspotGrid` — the Figure 2 stand-in: a hexagonal grid of
  1 km-radius edge cells under a Gaussian-mixture mobility intensity
  whose hotspots drift over the day, reproducing the skewed per-cell
  load box plot derived from the San Francisco taxi GPS traces.
"""

from __future__ import annotations

import numpy as np

__all__ = ["zipf_weights", "time_varying_weights", "HotspotGrid"]


def zipf_weights(k: int, s: float) -> np.ndarray:
    """Normalized Zipf weights :math:`w_i \\propto i^{-s}` for k sites.

    ``s = 0`` gives the balanced split :math:`1/k`; larger ``s``
    concentrates load on the first sites.
    """
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    if s < 0:
        raise ValueError(f"s must be >= 0, got {s}")
    w = np.arange(1, k + 1, dtype=float) ** -s
    return w / w.sum()


def time_varying_weights(k: int, s: float, t: float, period: float) -> np.ndarray:
    """Zipf weights whose hot site rotates smoothly over ``period`` seconds.

    At time ``t`` the weight vector is the base Zipf vector circularly
    shifted by ``k·t/period`` positions, with linear interpolation
    between adjacent integer shifts — load moves continuously from site
    to site the way diurnal mobility shifts urban hotspots.
    """
    if period <= 0:
        raise ValueError(f"period must be > 0, got {period}")
    base = zipf_weights(k, s)
    shift = (t / period) * k
    lo = int(np.floor(shift)) % k
    frac = shift - np.floor(shift)
    rolled_lo = np.roll(base, lo)
    rolled_hi = np.roll(base, (lo + 1) % k)
    return (1.0 - frac) * rolled_lo + frac * rolled_hi


class HotspotGrid:
    """Gaussian-mixture mobility intensity over a hex grid of edge cells.

    Parameters
    ----------
    rows / cols:
        Grid dimensions; cells sit at offset hex centers with unit pitch
        (≈2 km for the paper's 1 km-radius cells).
    hotspots:
        Number of Gaussian intensity bumps (city centers, districts).
    hotspot_sigma:
        Spatial std-dev of each bump, in cell pitches.
    drift_radius:
        How far bump centers move over a diurnal cycle, in cell pitches.
    baseline:
        Uniform background intensity fraction in [0, 1).
    seed:
        Seed for hotspot placement.
    """

    def __init__(
        self,
        rows: int = 10,
        cols: int = 10,
        hotspots: int = 3,
        hotspot_sigma: float = 1.0,
        drift_radius: float = 2.0,
        baseline: float = 0.05,
        seed: int = 0,
    ):
        if rows < 1 or cols < 1:
            raise ValueError("grid must have at least one cell")
        if hotspots < 1:
            raise ValueError(f"hotspots must be >= 1, got {hotspots}")
        if hotspot_sigma <= 0:
            raise ValueError(f"hotspot_sigma must be > 0, got {hotspot_sigma}")
        if not 0.0 <= baseline < 1.0:
            raise ValueError(f"baseline must be in [0, 1), got {baseline}")
        self.rows, self.cols = int(rows), int(cols)
        self.hotspot_sigma = float(hotspot_sigma)
        self.drift_radius = float(drift_radius)
        self.baseline = float(baseline)
        rng = np.random.default_rng(seed)
        # Offset (hex-like) cell centers with unit pitch.
        r, c = np.meshgrid(np.arange(rows), np.arange(cols), indexing="ij")
        self.centers = np.stack(
            [c + 0.5 * (r % 2), r * np.sqrt(3.0) / 2.0], axis=-1
        ).reshape(-1, 2)
        span = np.array([cols, rows * np.sqrt(3.0) / 2.0])
        self.hotspot_homes = rng.uniform(0.2, 0.8, (hotspots, 2)) * span
        self.hotspot_weights = rng.dirichlet(np.full(hotspots, 2.0))
        self.hotspot_phases = rng.uniform(0.0, 2.0 * np.pi, hotspots)

    @property
    def n_cells(self) -> int:
        """Number of edge cells in the grid."""
        return self.centers.shape[0]

    def cell_weights(self, t: float, period: float = 86_400.0) -> np.ndarray:
        """Per-cell load fractions at time ``t`` (sums to 1).

        Hotspot centers orbit their home positions with the diurnal
        phase, shifting which cells are hot between day and night.
        """
        if period <= 0:
            raise ValueError(f"period must be > 0, got {period}")
        angle = 2.0 * np.pi * t / period
        offsets = self.drift_radius * np.stack(
            [np.cos(angle + self.hotspot_phases), np.sin(angle + self.hotspot_phases)],
            axis=-1,
        )
        centers = self.hotspot_homes + offsets
        d2 = ((self.centers[:, None, :] - centers[None, :, :]) ** 2).sum(axis=-1)
        bumps = np.exp(-d2 / (2.0 * self.hotspot_sigma**2)) @ self.hotspot_weights
        intensity = self.baseline / self.n_cells + (1.0 - self.baseline) * bumps
        return intensity / intensity.sum()

    def sample_cell_loads(
        self,
        rng: np.random.Generator,
        total_rate: float,
        times: np.ndarray,
        window: float,
        period: float = 86_400.0,
    ) -> np.ndarray:
        """Per-cell request counts in windows at each of ``times``.

        Returns an array of shape ``(n_cells, len(times))`` — the data
        behind Figure 2's per-cell load box plot (cells × time samples).
        """
        if total_rate <= 0 or window <= 0:
            raise ValueError("total_rate and window must be > 0")
        times = np.asarray(times, dtype=float)
        out = np.empty((self.n_cells, times.size))
        for j, t in enumerate(times):
            w = self.cell_weights(float(t), period)
            out[:, j] = rng.poisson(total_rate * window * w)
        return out

    def skew_statistics(self, loads: np.ndarray) -> dict[str, float]:
        """Summary of per-cell load imbalance (Figure 2's takeaway).

        Returns the max/mean and p95/median load ratios across cells and
        the coefficient of variation of mean per-cell loads.
        """
        if loads.ndim != 2 or loads.shape[0] != self.n_cells:
            raise ValueError(f"loads must be (n_cells={self.n_cells}, T), got {loads.shape}")
        per_cell = loads.mean(axis=1)
        mean = per_cell.mean()
        median = np.median(per_cell)
        return {
            "max_over_mean": float(per_cell.max() / mean) if mean > 0 else 0.0,
            "p95_over_median": float(np.quantile(per_cell, 0.95) / median)
            if median > 0
            else float("inf"),
            "cell_cv": float(per_cell.std() / mean) if mean > 0 else 0.0,
        }
