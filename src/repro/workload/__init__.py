"""Workload generation substrate.

Replaces the paper's workload inputs with synthetic equivalents that
preserve the statistical properties the evaluation depends on:

* :mod:`repro.workload.arrivals` — renewal and Markov-modulated arrival
  processes (the Gatling stand-in).
* :mod:`repro.workload.service` — service-time models, including the
  DNN-inference application model calibrated to the paper's measured
  13 req/s saturation on a c5a.xlarge.
* :mod:`repro.workload.trace` — :class:`RequestTrace` containers with
  merge/split/window operations.
* :mod:`repro.workload.azure` — synthetic Azure-serverless-like traces
  (diurnal, bursty, Zipf-skewed function popularity) and the paper's
  function-to-edge-site grouping.
* :mod:`repro.workload.spatial` — spatial skew models: Zipf site
  weights, time-varying skew rotation, and the Gaussian-hotspot hex-cell
  model standing in for the San Francisco taxi trace of Figure 2.
"""

from repro.workload.arrivals import (
    ArrivalProcess,
    DeterministicArrivals,
    GammaRenewalArrivals,
    HyperExpArrivals,
    MMPPArrivals,
    NonHomogeneousPoisson,
    PoissonArrivals,
    merge_traces,
)
from repro.workload.characterize import (
    WorkloadProfile,
    characterize,
    index_of_dispersion,
    spatial_skew_profile,
)
from repro.workload.io import (
    load_trace_csv,
    load_trace_npz,
    save_trace_csv,
    save_trace_npz,
)
from repro.workload.azure import (
    AzureTraceConfig,
    FunctionTrace,
    generate_azure_workload,
    group_functions_into_sites,
)
from repro.workload.service import (
    DNNInferenceModel,
    ImageClassifierService,
)
from repro.workload.spatial import (
    HotspotGrid,
    time_varying_weights,
    zipf_weights,
)
from repro.workload.trace import RequestTrace

__all__ = [
    "ArrivalProcess",
    "PoissonArrivals",
    "DeterministicArrivals",
    "GammaRenewalArrivals",
    "HyperExpArrivals",
    "MMPPArrivals",
    "NonHomogeneousPoisson",
    "merge_traces",
    "save_trace_csv",
    "load_trace_csv",
    "save_trace_npz",
    "load_trace_npz",
    "WorkloadProfile",
    "characterize",
    "index_of_dispersion",
    "spatial_skew_profile",
    "RequestTrace",
    "DNNInferenceModel",
    "ImageClassifierService",
    "AzureTraceConfig",
    "FunctionTrace",
    "generate_azure_workload",
    "group_functions_into_sites",
    "HotspotGrid",
    "zipf_weights",
    "time_varying_weights",
]
