"""Application service-time models.

The paper's application is a Keras/TensorFlow image-classification web
service on a 4-vCPU ``c5a.xlarge``: compute-bound, saturating one
machine at 13 req/s (Section 4.2).  :class:`DNNInferenceModel` captures
exactly the properties the latency results depend on:

* a machine is ``cores`` parallel workers, each taking
  ``cores / saturation_rate`` seconds per request on average;
* inference times are low-variability (configurable CoV, default
  Erlang-4, :math:`c^2 = 0.25` — DNN forward passes on same-sized inputs
  are near-deterministic, with OS/framework noise on top).

:class:`ImageClassifierService` adds the image-size mechanism used for
the Azure-trace replay: "an image of an appropriate size is chosen to
generate a request with the appropriate service time" (Section 4.1) —
service time is an affine function of input size, inverted to choose an
image for a target execution time.
"""

from __future__ import annotations

import numpy as np

from repro.queueing.distributions import Distribution, fit_two_moments

__all__ = ["DNNInferenceModel", "ImageClassifierService"]


class DNNInferenceModel:
    """Service model of the paper's DNN-inference application.

    Parameters
    ----------
    saturation_rate:
        Request rate (req/s) at which one machine reaches 100%
        utilization; the paper measures 13 req/s on a ``c5a.xlarge``.
    cores:
        Effective concurrency lanes per machine: requests served in
        parallel by one machine.  A ``c5a.xlarge`` has 4 vCPUs, but a
        TF-Serving-style stack overlaps decode/infer/respond stages, so
        effective concurrency exceeds the vCPU count; the default of 8
        is calibrated so the simulated typical-cloud crossover lands on
        the paper's measured 8 req/s (§4.2; DESIGN.md §6).
    cv2:
        Squared CoV of a single inference's duration (near-deterministic
        forward passes + OS/framework noise).

    Notes
    -----
    A machine is modeled as ``cores`` servers each at rate
    ``saturation_rate / cores`` — this makes a machine saturate at
    exactly ``saturation_rate`` while letting requests overlap, which is
    what positions the inversion crossovers where the paper reports
    them.
    """

    def __init__(self, saturation_rate: float = 13.0, cores: int = 8, cv2: float = 0.25):
        if saturation_rate <= 0:
            raise ValueError(f"saturation_rate must be > 0, got {saturation_rate}")
        if cores < 1:
            raise ValueError(f"cores must be >= 1, got {cores}")
        if cv2 < 0:
            raise ValueError(f"cv2 must be >= 0, got {cv2}")
        self.saturation_rate = float(saturation_rate)
        self.cores = int(cores)
        self.cv2 = float(cv2)

    @property
    def mean_service_time(self) -> float:
        """Mean wall-clock duration of one inference (seconds)."""
        return self.cores / self.saturation_rate

    @property
    def core_service_rate(self) -> float:
        """Per-core service rate :math:`\\mu` (req/s)."""
        return self.saturation_rate / self.cores

    def service_dist(self) -> Distribution:
        """Per-request service-time distribution."""
        return fit_two_moments(self.mean_service_time, self.cv2)

    def servers_for_machines(self, machines: int) -> int:
        """Total queueing servers presented by ``machines`` machines."""
        if machines < 1:
            raise ValueError(f"machines must be >= 1, got {machines}")
        return machines * self.cores

    def utilization(self, rate: float, machines: int = 1) -> float:
        """Utilization of ``machines`` machines at ``rate`` req/s total."""
        if rate < 0:
            raise ValueError(f"rate must be >= 0, got {rate}")
        return rate / (machines * self.saturation_rate)

    def max_stable_rate(self, machines: int = 1, headroom: float = 0.0) -> float:
        """Highest sustainable rate, optionally with utilization headroom.

        The paper uses 12 req/s — about 92% of the 13 req/s saturation —
        as the maximum practical workload.
        """
        if not 0.0 <= headroom < 1.0:
            raise ValueError(f"headroom must be in [0, 1), got {headroom}")
        return machines * self.saturation_rate * (1.0 - headroom)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"DNNInferenceModel(saturation_rate={self.saturation_rate}, "
            f"cores={self.cores}, cv2={self.cv2})"
        )


class ImageClassifierService:
    """Image-size–driven service times for trace replay.

    Service time of an image of ``size`` megapixels is
    ``base + per_mpix * size`` seconds — an affine model that is a good
    fit for convolutional classifiers, whose FLOPs scale with input area.

    Parameters
    ----------
    base:
        Fixed per-request overhead (decode, HTTP, framework), seconds.
    per_mpix:
        Marginal seconds per megapixel of input.
    mean_mpix / cv2_mpix:
        Log-normal image-size distribution of the image dataset.
    """

    def __init__(
        self,
        base: float = 0.02,
        per_mpix: float = 0.12,
        mean_mpix: float = 2.2,
        cv2_mpix: float = 0.6,
    ):
        if base < 0 or per_mpix <= 0:
            raise ValueError("need base >= 0 and per_mpix > 0")
        if mean_mpix <= 0 or cv2_mpix <= 0:
            raise ValueError("need positive image-size distribution parameters")
        self.base = float(base)
        self.per_mpix = float(per_mpix)
        self.size_dist = fit_two_moments(mean_mpix, cv2_mpix)

    def service_time_for_size(self, size_mpix):
        """Service time (s) of an image of ``size_mpix`` megapixels."""
        size = np.asarray(size_mpix, dtype=float)
        if np.any(size < 0):
            raise ValueError("image sizes must be non-negative")
        return self.base + self.per_mpix * size

    def size_for_service_time(self, service_time):
        """Image size (Mpix) whose inference takes ``service_time`` seconds.

        The paper's replay mechanism: given a target execution time from
        the Azure distribution, pick the image that produces it.  Times
        below the fixed overhead map to a zero-pixel (header-only) image.
        """
        t = np.asarray(service_time, dtype=float)
        if np.any(t < 0):
            raise ValueError("service times must be non-negative")
        return np.maximum(t - self.base, 0.0) / self.per_mpix

    def sample_service_times(self, rng: np.random.Generator, n: int) -> np.ndarray:
        """Draw ``n`` service times from the dataset's image-size mix."""
        sizes = np.asarray(self.size_dist.sample(rng, n), dtype=float)
        return self.service_time_for_size(sizes)

    @property
    def mean_service_time(self) -> float:
        """Expected inference time over the dataset (seconds)."""
        return self.base + self.per_mpix * self.size_dist.mean

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ImageClassifierService(base={self.base}, per_mpix={self.per_mpix}, "
            f"mean_service_time={self.mean_service_time:.4f})"
        )
