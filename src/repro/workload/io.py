"""Trace persistence: save and load request traces.

Two formats:

* **CSV** — one request per line (``arrival_time[,service_time]``),
  interoperable with external tooling and human-inspectable;
* **NPZ** — NumPy's compressed container, ~10× smaller and faster, the
  right choice for multi-million-request traces.

Round-tripping is lossless (float64 end to end) and property-tested.
"""

from __future__ import annotations

import csv
from pathlib import Path

import numpy as np

from repro.workload.trace import RequestTrace

__all__ = ["save_trace_csv", "load_trace_csv", "save_trace_npz", "load_trace_npz"]


def save_trace_csv(trace: RequestTrace, path: str | Path) -> None:
    """Write a trace as CSV with a header row."""
    path = Path(path)
    with path.open("w", newline="") as fh:
        writer = csv.writer(fh)
        if trace.service_times is not None:
            writer.writerow(["arrival_time", "service_time"])
            writer.writerows(zip(trace.arrival_times, trace.service_times, strict=True))
        else:
            writer.writerow(["arrival_time"])
            writer.writerows((t,) for t in trace.arrival_times)


def load_trace_csv(path: str | Path) -> RequestTrace:
    """Read a trace written by :func:`save_trace_csv`.

    Raises
    ------
    ValueError
        On an unrecognized header or malformed rows.
    """
    path = Path(path)
    with path.open(newline="") as fh:
        reader = csv.reader(fh)
        try:
            header = next(reader)
        except StopIteration:
            raise ValueError(f"{path}: empty trace file") from None
        if header == ["arrival_time", "service_time"]:
            arrivals, services = [], []
            for row in reader:
                if len(row) != 2:
                    raise ValueError(f"{path}: malformed row {row!r}")
                arrivals.append(float(row[0]))
                services.append(float(row[1]))
            return RequestTrace(np.array(arrivals), np.array(services))
        if header == ["arrival_time"]:
            arrivals = [float(row[0]) for row in reader]
            return RequestTrace(np.array(arrivals))
        raise ValueError(f"{path}: unrecognized header {header!r}")


def save_trace_npz(trace: RequestTrace, path: str | Path) -> None:
    """Write a trace as a compressed ``.npz`` archive."""
    arrays = {"arrival_times": trace.arrival_times}
    if trace.service_times is not None:
        arrays["service_times"] = trace.service_times
    np.savez_compressed(Path(path), **arrays)


def load_trace_npz(path: str | Path) -> RequestTrace:
    """Read a trace written by :func:`save_trace_npz`."""
    with np.load(Path(path)) as data:
        if "arrival_times" not in data:
            raise ValueError(f"{path}: missing 'arrival_times' array")
        return RequestTrace(
            data["arrival_times"],
            data["service_times"] if "service_times" in data else None,
        )
