"""Request-trace container and operations.

A :class:`RequestTrace` is the common currency between workload
generators and the simulators: aligned arrays of absolute arrival times
and (optional) per-request service times.  The operations mirror what
the paper does with the Azure traces: merge per-site traces into the
cloud's aggregate stream, split an aggregate across sites, and compute
windowed rates for the time-series figures.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["RequestTrace"]


@dataclass(frozen=True)
class RequestTrace:
    """Immutable request trace.

    Attributes
    ----------
    arrival_times:
        Absolute, non-decreasing request timestamps in seconds.
    service_times:
        Optional per-request service demands (seconds), aligned.
    """

    arrival_times: np.ndarray
    service_times: np.ndarray | None = None

    def __post_init__(self):
        a = np.asarray(self.arrival_times, dtype=float)
        if a.ndim != 1:
            raise ValueError("arrival_times must be 1-D")
        if a.size > 1 and np.any(np.diff(a) < 0):
            raise ValueError("arrival_times must be non-decreasing")
        object.__setattr__(self, "arrival_times", a)
        if self.service_times is not None:
            s = np.asarray(self.service_times, dtype=float)
            if s.shape != a.shape:
                raise ValueError(
                    f"service_times shape {s.shape} != arrival_times shape {a.shape}"
                )
            if s.size and s.min() < 0:
                raise ValueError("service_times must be non-negative")
            object.__setattr__(self, "service_times", s)

    def __len__(self) -> int:
        return self.arrival_times.size

    @property
    def duration(self) -> float:
        """Span from first to last arrival (0 for < 2 requests)."""
        if len(self) < 2:
            return 0.0
        return float(self.arrival_times[-1] - self.arrival_times[0])

    @property
    def mean_rate(self) -> float:
        """Average request rate over the trace duration (req/s)."""
        d = self.duration
        if d == 0.0:
            return 0.0
        return (len(self) - 1) / d

    def interarrival_cv2(self) -> float:
        """Squared CoV of the inter-arrival gaps (burstiness measure)."""
        if len(self) < 3:
            raise ValueError("need at least 3 arrivals for inter-arrival CoV")
        gaps = np.diff(self.arrival_times)
        m = gaps.mean()
        if m == 0.0:
            return 0.0
        return float(gaps.var() / m**2)

    def slice(self, start: float, end: float) -> "RequestTrace":
        """Requests with arrival time in ``[start, end)``."""
        if end < start:
            raise ValueError(f"end ({end}) must be >= start ({start})")
        mask = (self.arrival_times >= start) & (self.arrival_times < end)
        return RequestTrace(
            self.arrival_times[mask],
            None if self.service_times is None else self.service_times[mask],
        )

    def shifted(self, offset: float) -> "RequestTrace":
        """Trace with all arrival times moved by ``offset`` seconds."""
        return RequestTrace(self.arrival_times + offset, self.service_times)

    def windowed_rates(self, window: float, horizon: float | None = None):
        """Per-window request rates (req/s) over ``[0, horizon)``.

        Returns ``(window_starts, rates)``; the Figure 8 series.
        """
        if window <= 0:
            raise ValueError(f"window must be > 0, got {window}")
        end = float(self.arrival_times[-1]) if horizon is None else float(horizon)
        if end <= 0:
            return np.empty(0), np.empty(0)
        edges = np.arange(0.0, end + window, window)
        counts, _ = np.histogram(self.arrival_times, bins=edges)
        return edges[:-1], counts / window

    def split_by_weights(
        self, weights, rng: np.random.Generator
    ) -> list["RequestTrace"]:
        """Randomly partition requests across sites with given probabilities.

        This is the paper's spatial-skew construction: each request is
        routed to site ``i`` with probability ``weights[i]``; thinning a
        point process preserves its character per site.
        """
        w = np.asarray(weights, dtype=float)
        if w.ndim != 1 or w.size == 0 or np.any(w < 0):
            raise ValueError(f"weights must be non-negative and non-empty, got {w}")
        total = w.sum()
        if total <= 0:
            raise ValueError("weights must have positive sum")
        assignment = rng.choice(w.size, size=len(self), p=w / total)
        out = []
        for i in range(w.size):
            mask = assignment == i
            out.append(
                RequestTrace(
                    self.arrival_times[mask],
                    None if self.service_times is None else self.service_times[mask],
                )
            )
        return out

    @staticmethod
    def merge(traces: list["RequestTrace"]) -> "RequestTrace":
        """Superpose several traces into one time-ordered stream.

        This is the cloud's view: the aggregate of all edge-site
        workloads (Section 4.1's "cumulative request trace").
        """
        if not traces:
            raise ValueError("need at least one trace")
        has_services = [t.service_times is not None for t in traces]
        if any(has_services) and not all(has_services):
            raise ValueError("cannot merge traces with and without service times")
        times = np.concatenate([t.arrival_times for t in traces])
        order = np.argsort(times, kind="stable")
        services = None
        if all(has_services):
            services = np.concatenate([t.service_times for t in traces])[order]
        return RequestTrace(times[order], services)
