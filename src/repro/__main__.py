"""``python -m repro`` — regenerate paper experiments from the shell."""

import sys

from repro.cli import main

sys.exit(main())
