"""High-level edge-vs-cloud comparison API.

:class:`EdgeCloudComparator` is the one-stop interface the paper's
research questions map onto: given a :class:`~repro.core.scenarios.Scenario`
it *predicts* the inversion cutoff analytically (Section 3) and
*measures* it by simulation (Section 4), for both mean and tail (p95)
latency.

The measurement path uses the vectorized
:mod:`repro.sim.fastsim` (cross-validated against the full DES engine in
the integration tests) so a full Figure 7-style sweep runs in seconds.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.inversion import cutoff_utilization_exact
from repro.core.scenarios import Scenario
from repro.parallel import derive_rng, run_tasks
from repro.parallel.seeding import derive_seed
from repro.queueing.distributions import fit_two_moments
from repro.sim.fastsim import (
    simulate_edge_system,
    simulate_lb_system,
    simulate_single_queue_system,
)
from repro.sim.loadbalancer import DispatchPolicy, JoinShortestQueue, RoundRobin
from repro.stats.summary import LatencySummary, summarize
from repro.workload.trace import RequestTrace

#: Cloud dispatch models the fastsim layer can reproduce; anything else
#: (a stateful DispatchPolicy instance, DES-only hooks) needs the engine.
_FASTSIM_POLICIES = (None, "central", "round-robin", "jsq")

__all__ = ["SweepPoint", "ComparisonResult", "EdgeCloudComparator"]


@dataclass(frozen=True)
class SweepPoint:
    """Edge and cloud latency summaries at one per-site request rate."""

    rate_per_site: float
    utilization: float
    edge: LatencySummary
    cloud: LatencySummary

    def gap(self, metric: str = "mean") -> float:
        """Edge minus cloud for ``metric`` (positive = edge is worse)."""
        return getattr(self.edge, metric) - getattr(self.cloud, metric)


@dataclass(frozen=True)
class ComparisonResult:
    """A rate sweep of one scenario (a Figure 3/4/5-style series)."""

    scenario: Scenario
    points: tuple[SweepPoint, ...]

    def series(self, metric: str = "mean"):
        """Return ``(rates, edge_values, cloud_values)`` arrays for plotting."""
        rates = np.array([p.rate_per_site for p in self.points])
        edge = np.array([getattr(p.edge, metric) for p in self.points])
        cloud = np.array([getattr(p.cloud, metric) for p in self.points])
        return rates, edge, cloud

    def crossover_rate(self, metric: str = "mean") -> float | None:
        """Per-site rate where the edge first becomes worse than the cloud.

        Linearly interpolates between the bracketing sweep points;
        ``None`` if no inversion occurs in the swept range.  A sweep that
        *starts* inverted returns its first rate.
        """
        gaps = [p.gap(metric) for p in self.points]
        if gaps[0] > 0:
            return self.points[0].rate_per_site
        for i in range(1, len(gaps)):
            if gaps[i] > 0:
                r0, r1 = self.points[i - 1].rate_per_site, self.points[i].rate_per_site
                g0, g1 = gaps[i - 1], gaps[i]
                return r0 + (r1 - r0) * (-g0) / (g1 - g0)
        return None

    def crossover_utilization(self, metric: str = "mean") -> float | None:
        """Utilization at the crossover rate (the paper's cutoff ρ)."""
        rate = self.crossover_rate(metric)
        if rate is None:
            return None
        return self.scenario.utilization(rate)


class EdgeCloudComparator:
    """Analytic + simulated comparison of one scenario.

    Parameters
    ----------
    scenario:
        The deployment pair to compare.
    requests_per_site:
        Simulated requests per edge site per sweep point (the cloud sees
        ``sites ×`` this).  10⁵ gives stable p95s.
    arrival_cv2:
        Squared CoV of inter-arrival gaps (1 = Poisson).
    seed:
        Base RNG seed; each sweep point derives independent streams.
    warmup_fraction:
        Leading fraction of requests dropped before summarizing.
    cloud_policy:
        Cloud dispatch model: ``None``/``"central"`` (the paper's ideal
        central queue, the default), ``"round-robin"`` or ``"jsq"``
        (HAProxy-style load balancing, reproducible by the fastsim
        layer), or any :class:`~repro.sim.loadbalancer.DispatchPolicy`
        instance (DES only).
    cloud_backends:
        Backend count behind the load balancer (default: one per cloud
        machine).  Ignored for the central queue.
    lb_overhead:
        Extra one-way delay through the balancer, seconds.
    hooks:
        DES-only deployment hooks forwarded to
        :func:`repro.sim.runner.run_deployment` (e.g. ``router=`` for
        geographic load balancing).  Any non-empty mapping forces the
        DES engine — the fastsim recursion cannot express
        resilience/overload/failure behaviour.
    engine:
        ``"auto"`` (default) selects the vectorized fastsim whenever the
        configuration has no DES-only hooks and a fastsim-capable cloud
        policy, falling back to the event engine otherwise; ``"fastsim"``
        and ``"des"`` force one side (``"fastsim"`` raises if the
        configuration needs the DES).  The fastsim and DES paths are
        cross-validated in the integration tests.
    """

    def __init__(
        self,
        scenario: Scenario,
        *,
        requests_per_site: int = 100_000,
        arrival_cv2: float = 1.0,
        seed: int = 0,
        warmup_fraction: float = 0.1,
        cloud_policy: "str | DispatchPolicy | None" = None,
        cloud_backends: int | None = None,
        lb_overhead: float = 0.0,
        hooks: dict | None = None,
        engine: str = "auto",
    ):
        if requests_per_site < 100:
            raise ValueError(f"requests_per_site too small: {requests_per_site}")
        if arrival_cv2 < 0:
            raise ValueError(f"arrival_cv2 must be >= 0, got {arrival_cv2}")
        if not 0.0 <= warmup_fraction < 1.0:
            raise ValueError(f"warmup_fraction must be in [0, 1), got {warmup_fraction}")
        if engine not in ("auto", "fastsim", "des"):
            raise ValueError(f"engine must be 'auto', 'fastsim' or 'des', got {engine!r}")
        if not (cloud_policy in _FASTSIM_POLICIES or isinstance(cloud_policy, DispatchPolicy)):
            raise ValueError(
                f"cloud_policy must be one of {_FASTSIM_POLICIES} or a "
                f"DispatchPolicy instance, got {cloud_policy!r}"
            )
        if cloud_backends is not None and cloud_backends < 1:
            raise ValueError(f"cloud_backends must be >= 1, got {cloud_backends}")
        if lb_overhead < 0:
            raise ValueError(f"lb_overhead must be >= 0, got {lb_overhead}")
        self.scenario = scenario
        self.requests_per_site = int(requests_per_site)
        self.arrival_cv2 = float(arrival_cv2)
        self.seed = int(seed)
        self.warmup_fraction = float(warmup_fraction)
        self.cloud_policy = cloud_policy
        self.cloud_backends = int(cloud_backends) if cloud_backends is not None else None
        self.lb_overhead = float(lb_overhead)
        self.hooks = dict(hooks) if hooks else {}
        self.engine = engine
        fastsim_capable = not self.hooks and cloud_policy in _FASTSIM_POLICIES
        if engine == "fastsim" and not fastsim_capable:
            raise ValueError(
                "engine='fastsim' cannot express this configuration "
                "(DES-only hooks or a custom dispatch policy); use 'auto' or 'des'"
            )
        self._use_fastsim = engine != "des" and fastsim_capable

    # -- analytic side ---------------------------------------------------
    def predict_cutoff_utilization(self) -> float:
        """Cutoff utilization from the unit-consistent analytic model.

        Uses exact Erlang-C (or Allen–Cunneen for non-exponential
        components) mean waits per :func:`cutoff_utilization_exact`,
        with the scenario's per-core service rate and pool sizes.
        """
        s = self.scenario
        return cutoff_utilization_exact(
            s.delta_n,
            s.service.core_service_rate,
            s.edge_servers_per_site,
            s.cloud_servers,
            ca2=self.arrival_cv2,
            cs2=s.service.cv2,
        )

    # -- measurement side --------------------------------------------------
    def _site_workloads(self, rate: float, rng: np.random.Generator):
        """Per-site arrival/service arrays for one sweep point."""
        s = self.scenario
        gap = fit_two_moments(1.0 / rate, self.arrival_cv2)
        service = s.service_dist()
        n = self.requests_per_site
        arrivals, services = [], []
        for _ in range(s.sites):
            a = np.cumsum(np.asarray(gap.sample(rng, n), dtype=float))
            arrivals.append(a)
            services.append(np.asarray(service.sample(rng, n), dtype=float))
        return arrivals, services

    def measure_point(self, rate_per_site: float, seed_offset: int = 0) -> SweepPoint:
        """Simulate edge and cloud at one per-site rate.

        Dispatches to the fastsim recursion or the full DES according to
        the configured ``engine`` (see the class docstring); the two are
        statistically equivalent and cross-validated, but not bitwise
        identical, so the selection is a constructor-time property — one
        comparator never mixes engines across sweep points.
        """
        s = self.scenario
        if rate_per_site <= 0:
            raise ValueError(f"rate_per_site must be > 0, got {rate_per_site}")
        if s.utilization(rate_per_site) >= 1.0:
            raise ValueError(
                f"rate {rate_per_site} req/s saturates a site "
                f"(max {s.saturation_rate_per_site} req/s)"
            )
        if not self._use_fastsim:
            return self._measure_point_des(rate_per_site, seed_offset)
        # SeedSequence-derived child stream: collision-free across sweep
        # points *and* across comparators with nearby base seeds (the old
        # ``seed + 7919 * offset`` arithmetic could alias other
        # experiments' raw seeds).
        rng = derive_rng(self.seed, seed_offset)
        arrivals, services = self._site_workloads(rate_per_site, rng)

        edge = simulate_edge_system(
            arrivals, services, s.edge_servers_per_site, s.edge_latency(), rng
        )
        merged = RequestTrace.merge(
            [RequestTrace(a, sv) for a, sv in zip(arrivals, services, strict=True)]
        )
        if self.cloud_policy in (None, "central"):
            cloud = simulate_single_queue_system(
                merged.arrival_times, merged.service_times, s.cloud_servers,
                s.cloud_latency(), rng,
            )
        else:
            cloud = simulate_lb_system(
                merged.arrival_times, merged.service_times, s.cloud_servers,
                s.cloud_latency(), rng,
                policy=self.cloud_policy,
                backends=self._cloud_backend_count(),
                lb_overhead=self.lb_overhead,
            )
        horizon = float(merged.arrival_times[-1])
        cut = self.warmup_fraction * horizon
        return SweepPoint(
            rate_per_site=float(rate_per_site),
            utilization=s.utilization(rate_per_site),
            edge=summarize(edge.after(cut).end_to_end),
            cloud=summarize(cloud.after(cut).end_to_end),
        )

    def _cloud_backend_count(self) -> int:
        """Backends behind the cloud LB (default: one per cloud machine)."""
        return (
            self.cloud_backends
            if self.cloud_backends is not None
            else self.scenario.cloud_machines
        )

    def _des_cloud_policy(self) -> "DispatchPolicy | None":
        """Instantiate the DES dispatch policy for this configuration."""
        policy = self.cloud_policy
        if policy in (None, "central"):
            return None
        if policy == "round-robin":
            return RoundRobin()
        if policy == "jsq":
            return JoinShortestQueue()
        return policy  # a DispatchPolicy instance, used as-is

    def _measure_point_des(self, rate_per_site: float, seed_offset: int) -> SweepPoint:
        """One sweep point on the full event engine (the fallback path).

        Runs the same topology as the fastsim path — k edge sites, cloud
        pooling ``sites × edge_servers_per_site`` servers — as open-loop
        sources over a virtual duration sized to ``requests_per_site``.
        Edge and cloud get independent SeedSequence children of
        ``(seed, offset)``, so DES sweeps are reproducible and journaled
        exactly like fastsim ones (under a distinct journal scope).
        """
        from repro.sim.runner import run_deployment

        s = self.scenario
        duration = self.requests_per_site / rate_per_site
        interarrival = fit_two_moments(1.0, self.arrival_cv2)
        policy = self._des_cloud_policy()
        edge_hooks = dict(self.hooks)
        shared = dict(
            sites=s.sites,
            servers_per_site=s.edge_servers_per_site,
            rate_per_site=float(rate_per_site),
            service_dist=s.service_dist(),
            duration=duration,
            interarrival=interarrival,
            warmup_fraction=self.warmup_fraction,
        )
        edge = run_deployment(
            "edge",
            latency=s.edge_latency(),
            seed=derive_seed(self.seed, seed_offset, 0),
            **shared,
            **edge_hooks,
        )
        cloud = run_deployment(
            "cloud",
            latency=s.cloud_latency(),
            seed=derive_seed(self.seed, seed_offset, 1),
            policy=policy,
            backends=self._cloud_backend_count() if policy is not None else None,
            **shared,
        )
        return SweepPoint(
            rate_per_site=float(rate_per_site),
            utilization=s.utilization(rate_per_site),
            edge=summarize(edge.end_to_end),
            cloud=summarize(cloud.end_to_end),
        )

    def _journal_scope(self) -> str:
        """Identity string keying this comparator's journal entries.

        Everything that shapes a sweep point's value is included, so two
        differently-configured comparators can share one checkpoint file
        without ever replaying each other's results.  Non-default engine
        and topology knobs are appended conditionally, so checkpoints
        written by earlier versions of the default configuration replay
        unchanged.
        """
        scope = (
            f"sweep|{self.scenario!r}|seed={self.seed}"
            f"|rps={self.requests_per_site}|ca2={self.arrival_cv2}"
            f"|wf={self.warmup_fraction}"
        )
        if not self._use_fastsim:
            scope += "|engine=des"
        if self.cloud_policy not in (None, "central"):
            policy = self.cloud_policy
            tag = policy if isinstance(policy, str) else type(policy).__name__
            scope += f"|policy={tag}|backends={self._cloud_backend_count()}"
        if self.lb_overhead:
            scope += f"|lb_overhead={self.lb_overhead}"
        if self.hooks:
            scope += f"|hooks={sorted(self.hooks)}"
        return scope

    def sweep(
        self,
        rates,
        *,
        workers: int | None = None,
        checkpoint=None,
        resume: bool = False,
    ) -> ComparisonResult:
        """Measure a series of per-site rates (a full figure's series).

        Parameters
        ----------
        rates:
            Per-site request rates to measure, in order.
        workers:
            Process count for the fan-out (``None`` = ``$REPRO_WORKERS``
            or 1).  Each point's RNG stream is derived from its index, so
            the result is bit-identical for every worker count.
        checkpoint:
            Journal path (or an open
            :class:`~repro.experiments.store.RunJournal`): completed
            points replay from disk, fresh points are durably appended —
            a killed sweep resumes bit-identically.  ``None`` (default)
            adds zero overhead.
        resume:
            Require the checkpoint to already exist (fail fast on a
            mistyped path instead of silently recomputing everything).
        """
        rates = list(rates)
        if not rates:
            raise ValueError("rates must be non-empty")
        from repro.experiments.store import open_journal

        journal, owned = open_journal(
            checkpoint, scope=self._journal_scope(), resume=resume
        )
        try:
            points = run_tasks(
                self.measure_point,
                [(float(r), i) for i, r in enumerate(rates)],
                workers=workers,
                label="sweep point",
                base_seed=self.seed,
                journal=journal,
            )
        finally:
            if owned:
                journal.close()
        return ComparisonResult(scenario=self.scenario, points=tuple(points))

    def find_crossover(
        self,
        metric: str = "mean",
        utilizations=None,
        *,
        workers: int | None = None,
        checkpoint=None,
        resume: bool = False,
    ) -> tuple[float | None, float | None]:
        """Locate the inversion point over a default utilization grid.

        Returns ``(rate, utilization)`` of the crossover, or
        ``(None, None)`` if the edge stays ahead below saturation.
        ``workers`` fans the underlying sweep across processes;
        ``checkpoint``/``resume`` journal it (see :meth:`sweep`).
        """
        if utilizations is None:
            utilizations = np.arange(0.1, 0.96, 0.05)
        rates = [self.scenario.rate_for_utilization(float(u)) for u in utilizations]
        result = self.sweep(
            rates, workers=workers, checkpoint=checkpoint, resume=resume
        )
        rate = result.crossover_rate(metric)
        if rate is None:
            return None, None
        return rate, self.scenario.utilization(rate)
