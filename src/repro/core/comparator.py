"""High-level edge-vs-cloud comparison API.

:class:`EdgeCloudComparator` is the one-stop interface the paper's
research questions map onto: given a :class:`~repro.core.scenarios.Scenario`
it *predicts* the inversion cutoff analytically (Section 3) and
*measures* it by simulation (Section 4), for both mean and tail (p95)
latency.

The measurement path uses the vectorized
:mod:`repro.sim.fastsim` (cross-validated against the full DES engine in
the integration tests) so a full Figure 7-style sweep runs in seconds.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.inversion import cutoff_utilization_exact
from repro.core.scenarios import Scenario
from repro.parallel import derive_rng, run_tasks
from repro.queueing.distributions import fit_two_moments
from repro.sim.fastsim import simulate_edge_system, simulate_single_queue_system
from repro.stats.summary import LatencySummary, summarize
from repro.workload.trace import RequestTrace

__all__ = ["SweepPoint", "ComparisonResult", "EdgeCloudComparator"]


@dataclass(frozen=True)
class SweepPoint:
    """Edge and cloud latency summaries at one per-site request rate."""

    rate_per_site: float
    utilization: float
    edge: LatencySummary
    cloud: LatencySummary

    def gap(self, metric: str = "mean") -> float:
        """Edge minus cloud for ``metric`` (positive = edge is worse)."""
        return getattr(self.edge, metric) - getattr(self.cloud, metric)


@dataclass(frozen=True)
class ComparisonResult:
    """A rate sweep of one scenario (a Figure 3/4/5-style series)."""

    scenario: Scenario
    points: tuple[SweepPoint, ...]

    def series(self, metric: str = "mean"):
        """Return ``(rates, edge_values, cloud_values)`` arrays for plotting."""
        rates = np.array([p.rate_per_site for p in self.points])
        edge = np.array([getattr(p.edge, metric) for p in self.points])
        cloud = np.array([getattr(p.cloud, metric) for p in self.points])
        return rates, edge, cloud

    def crossover_rate(self, metric: str = "mean") -> float | None:
        """Per-site rate where the edge first becomes worse than the cloud.

        Linearly interpolates between the bracketing sweep points;
        ``None`` if no inversion occurs in the swept range.  A sweep that
        *starts* inverted returns its first rate.
        """
        gaps = [p.gap(metric) for p in self.points]
        if gaps[0] > 0:
            return self.points[0].rate_per_site
        for i in range(1, len(gaps)):
            if gaps[i] > 0:
                r0, r1 = self.points[i - 1].rate_per_site, self.points[i].rate_per_site
                g0, g1 = gaps[i - 1], gaps[i]
                return r0 + (r1 - r0) * (-g0) / (g1 - g0)
        return None

    def crossover_utilization(self, metric: str = "mean") -> float | None:
        """Utilization at the crossover rate (the paper's cutoff ρ)."""
        rate = self.crossover_rate(metric)
        if rate is None:
            return None
        return self.scenario.utilization(rate)


class EdgeCloudComparator:
    """Analytic + simulated comparison of one scenario.

    Parameters
    ----------
    scenario:
        The deployment pair to compare.
    requests_per_site:
        Simulated requests per edge site per sweep point (the cloud sees
        ``sites ×`` this).  10⁵ gives stable p95s.
    arrival_cv2:
        Squared CoV of inter-arrival gaps (1 = Poisson).
    seed:
        Base RNG seed; each sweep point derives independent streams.
    warmup_fraction:
        Leading fraction of requests dropped before summarizing.
    """

    def __init__(
        self,
        scenario: Scenario,
        *,
        requests_per_site: int = 100_000,
        arrival_cv2: float = 1.0,
        seed: int = 0,
        warmup_fraction: float = 0.1,
    ):
        if requests_per_site < 100:
            raise ValueError(f"requests_per_site too small: {requests_per_site}")
        if arrival_cv2 < 0:
            raise ValueError(f"arrival_cv2 must be >= 0, got {arrival_cv2}")
        if not 0.0 <= warmup_fraction < 1.0:
            raise ValueError(f"warmup_fraction must be in [0, 1), got {warmup_fraction}")
        self.scenario = scenario
        self.requests_per_site = int(requests_per_site)
        self.arrival_cv2 = float(arrival_cv2)
        self.seed = int(seed)
        self.warmup_fraction = float(warmup_fraction)

    # -- analytic side ---------------------------------------------------
    def predict_cutoff_utilization(self) -> float:
        """Cutoff utilization from the unit-consistent analytic model.

        Uses exact Erlang-C (or Allen–Cunneen for non-exponential
        components) mean waits per :func:`cutoff_utilization_exact`,
        with the scenario's per-core service rate and pool sizes.
        """
        s = self.scenario
        return cutoff_utilization_exact(
            s.delta_n,
            s.service.core_service_rate,
            s.edge_servers_per_site,
            s.cloud_servers,
            ca2=self.arrival_cv2,
            cs2=s.service.cv2,
        )

    # -- measurement side --------------------------------------------------
    def _site_workloads(self, rate: float, rng: np.random.Generator):
        """Per-site arrival/service arrays for one sweep point."""
        s = self.scenario
        gap = fit_two_moments(1.0 / rate, self.arrival_cv2)
        service = s.service_dist()
        n = self.requests_per_site
        arrivals, services = [], []
        for _ in range(s.sites):
            a = np.cumsum(np.asarray(gap.sample(rng, n), dtype=float))
            arrivals.append(a)
            services.append(np.asarray(service.sample(rng, n), dtype=float))
        return arrivals, services

    def measure_point(self, rate_per_site: float, seed_offset: int = 0) -> SweepPoint:
        """Simulate edge and cloud at one per-site rate."""
        s = self.scenario
        if rate_per_site <= 0:
            raise ValueError(f"rate_per_site must be > 0, got {rate_per_site}")
        if s.utilization(rate_per_site) >= 1.0:
            raise ValueError(
                f"rate {rate_per_site} req/s saturates a site "
                f"(max {s.saturation_rate_per_site} req/s)"
            )
        # SeedSequence-derived child stream: collision-free across sweep
        # points *and* across comparators with nearby base seeds (the old
        # ``seed + 7919 * offset`` arithmetic could alias other
        # experiments' raw seeds).
        rng = derive_rng(self.seed, seed_offset)
        arrivals, services = self._site_workloads(rate_per_site, rng)

        edge = simulate_edge_system(
            arrivals, services, s.edge_servers_per_site, s.edge_latency(), rng
        )
        merged = RequestTrace.merge(
            [RequestTrace(a, sv) for a, sv in zip(arrivals, services, strict=True)]
        )
        cloud = simulate_single_queue_system(
            merged.arrival_times, merged.service_times, s.cloud_servers, s.cloud_latency(), rng
        )
        horizon = float(merged.arrival_times[-1])
        cut = self.warmup_fraction * horizon
        return SweepPoint(
            rate_per_site=float(rate_per_site),
            utilization=s.utilization(rate_per_site),
            edge=summarize(edge.after(cut).end_to_end),
            cloud=summarize(cloud.after(cut).end_to_end),
        )

    def _journal_scope(self) -> str:
        """Identity string keying this comparator's journal entries.

        Everything that shapes a sweep point's value is included, so two
        differently-configured comparators can share one checkpoint file
        without ever replaying each other's results.
        """
        return (
            f"sweep|{self.scenario!r}|seed={self.seed}"
            f"|rps={self.requests_per_site}|ca2={self.arrival_cv2}"
            f"|wf={self.warmup_fraction}"
        )

    def sweep(
        self,
        rates,
        *,
        workers: int | None = None,
        checkpoint=None,
        resume: bool = False,
    ) -> ComparisonResult:
        """Measure a series of per-site rates (a full figure's series).

        Parameters
        ----------
        rates:
            Per-site request rates to measure, in order.
        workers:
            Process count for the fan-out (``None`` = ``$REPRO_WORKERS``
            or 1).  Each point's RNG stream is derived from its index, so
            the result is bit-identical for every worker count.
        checkpoint:
            Journal path (or an open
            :class:`~repro.experiments.store.RunJournal`): completed
            points replay from disk, fresh points are durably appended —
            a killed sweep resumes bit-identically.  ``None`` (default)
            adds zero overhead.
        resume:
            Require the checkpoint to already exist (fail fast on a
            mistyped path instead of silently recomputing everything).
        """
        rates = list(rates)
        if not rates:
            raise ValueError("rates must be non-empty")
        from repro.experiments.store import open_journal

        journal, owned = open_journal(
            checkpoint, scope=self._journal_scope(), resume=resume
        )
        try:
            points = run_tasks(
                self.measure_point,
                [(float(r), i) for i, r in enumerate(rates)],
                workers=workers,
                label="sweep point",
                base_seed=self.seed,
                journal=journal,
            )
        finally:
            if owned:
                journal.close()
        return ComparisonResult(scenario=self.scenario, points=tuple(points))

    def find_crossover(
        self,
        metric: str = "mean",
        utilizations=None,
        *,
        workers: int | None = None,
        checkpoint=None,
        resume: bool = False,
    ) -> tuple[float | None, float | None]:
        """Locate the inversion point over a default utilization grid.

        Returns ``(rate, utilization)`` of the crossover, or
        ``(None, None)`` if the edge stays ahead below saturation.
        ``workers`` fans the underlying sweep across processes;
        ``checkpoint``/``resume`` journal it (see :meth:`sweep`).
        """
        if utilizations is None:
            utilizations = np.arange(0.1, 0.96, 0.05)
        rates = [self.scenario.rate_for_utilization(float(u)) for u in utilizations]
        result = self.sweep(
            rates, workers=workers, checkpoint=checkpoint, resume=resume
        )
        rate = result.crossover_rate(metric)
        if rate is None:
            return None, None
        return rate, self.scenario.utilization(rate)
