"""Economic cost of edge vs cloud deployments (the paper's future work).

The conclusion announces: "We also plan to study the economic costs of
edge deployments resulting from the need to deploy extra capacity to
prevent performance inversion."  This module implements that study's
natural first cut:

* :func:`min_servers_for_slo` — smallest M/M/c pool whose response-time
  q-quantile meets a latency SLO (exact, via the closed-form M/M/c
  response distribution);
* :func:`compare_slo_costs` — provision edge and cloud fleets to the
  *same end-to-end SLO* and price them, exposing the edge's capacity
  premium (each site provisions alone → no pooling) plus any per-site
  fixed overhead;
* :class:`CostModel` — $/server-hour at edge and cloud plus per-site
  overhead (edge sites are small, remote and amortize poorly, so
  realistic edge $/server-hour exceeds the cloud's).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.queueing.mmk import MMk

__all__ = ["CostModel", "DeploymentCost", "min_servers_for_slo", "compare_slo_costs"]


@dataclass(frozen=True)
class CostModel:
    """Hourly prices of capacity.

    Attributes
    ----------
    cloud_server_hourly:
        $/server-hour in a hyperscale data center.
    edge_server_hourly:
        $/server-hour at an edge site (typically a multiple of the
        cloud's: small sites, remote hands, worse PUE).
    site_overhead_hourly:
        Fixed $/hour per active edge site (rack, uplink, space) —
        zero for the cloud, which amortizes across tenants.
    """

    cloud_server_hourly: float = 0.10
    edge_server_hourly: float = 0.25
    site_overhead_hourly: float = 0.50

    def __post_init__(self):
        if min(self.cloud_server_hourly, self.edge_server_hourly) <= 0:
            raise ValueError("server-hour prices must be > 0")
        if self.site_overhead_hourly < 0:
            raise ValueError("site overhead must be >= 0")


@dataclass(frozen=True)
class DeploymentCost:
    """Fleet sizing and hourly price of one deployment option."""

    kind: str
    servers: int
    sites: int
    hourly_cost: float
    achieved_latency: float  # q-quantile end-to-end, seconds

    def __str__(self) -> str:
        return (
            f"{self.kind}: {self.servers} servers over {self.sites} site(s), "
            f"${self.hourly_cost:.2f}/h, q-latency {self.achieved_latency * 1e3:.1f} ms"
        )


def min_servers_for_slo(
    arrival_rate: float,
    service_rate: float,
    latency_slo: float,
    q: float = 0.95,
    max_servers: int = 10_000,
) -> int:
    """Smallest c such that the M/M/c response q-quantile ≤ ``latency_slo``.

    Raises
    ------
    ValueError
        If even a single request in an empty system misses the SLO
        (``latency_slo`` below the service-time q-quantile floor), or if
        inputs are invalid.
    """
    if arrival_rate < 0 or service_rate <= 0:
        raise ValueError("rates must be positive (arrival_rate may be 0)")
    if latency_slo <= 0:
        raise ValueError(f"latency_slo must be > 0, got {latency_slo}")
    if not 0.0 < q < 1.0:
        raise ValueError(f"q must be in (0, 1), got {q}")
    import math

    # Floor: response time is at least the service time, Exp(mu).
    floor = -math.log(1.0 - q) / service_rate
    if latency_slo < floor:
        raise ValueError(
            f"SLO {latency_slo * 1e3:.1f} ms below the service-time q-quantile "
            f"floor {floor * 1e3:.1f} ms — no pool size can meet it"
        )
    if arrival_rate == 0:
        return 1
    c = max(1, math.floor(arrival_rate / service_rate) + 1)
    while c <= max_servers:
        if MMk(arrival_rate, service_rate, c).response_time_percentile(q) <= latency_slo:
            return c
        c += 1
    raise RuntimeError(f"no pool <= {max_servers} meets the SLO")


def compare_slo_costs(
    total_rate: float,
    service_rate: float,
    sites: int,
    edge_rtt: float,
    cloud_rtt: float,
    latency_slo: float,
    *,
    q: float = 0.95,
    cost_model: CostModel | None = None,
) -> tuple[DeploymentCost, DeploymentCost]:
    """Provision edge and cloud to the same end-to-end SLO and price both.

    The edge splits ``total_rate`` evenly over ``sites`` sites, each
    provisioned independently against ``latency_slo − edge_rtt``; the
    cloud pools everything against ``latency_slo − cloud_rtt``.

    Returns ``(edge_cost, cloud_cost)``.

    Raises
    ------
    ValueError
        If the SLO is infeasible for either side (e.g. tighter than the
        cloud RTT — the regime where only the edge can play at all).
    """
    if sites < 1:
        raise ValueError(f"sites must be >= 1, got {sites}")
    if total_rate <= 0:
        raise ValueError(f"total_rate must be > 0, got {total_rate}")
    if min(edge_rtt, cloud_rtt) < 0 or cloud_rtt <= edge_rtt:
        raise ValueError("need 0 <= edge_rtt < cloud_rtt")
    cm = CostModel() if cost_model is None else cost_model

    edge_budget = latency_slo - edge_rtt
    cloud_budget = latency_slo - cloud_rtt
    if edge_budget <= 0:
        raise ValueError("SLO tighter than the edge RTT — infeasible everywhere")
    if cloud_budget <= 0:
        raise ValueError(
            "SLO tighter than the cloud RTT — only an edge deployment can meet it"
        )

    per_site = min_servers_for_slo(total_rate / sites, service_rate, edge_budget, q)
    edge_servers = per_site * sites
    edge_latency = (
        MMk(total_rate / sites, service_rate, per_site).response_time_percentile(q)
        + edge_rtt
    )
    edge = DeploymentCost(
        kind="edge",
        servers=edge_servers,
        sites=sites,
        hourly_cost=edge_servers * cm.edge_server_hourly
        + sites * cm.site_overhead_hourly,
        achieved_latency=edge_latency,
    )

    cloud_servers = min_servers_for_slo(total_rate, service_rate, cloud_budget, q)
    cloud_latency = (
        MMk(total_rate, service_rate, cloud_servers).response_time_percentile(q)
        + cloud_rtt
    )
    cloud = DeploymentCost(
        kind="cloud",
        servers=cloud_servers,
        sites=1,
        hourly_cost=cloud_servers * cm.cloud_server_hourly,
        achieved_latency=cloud_latency,
    )
    return edge, cloud
