"""Edge performance-inversion bounds (Section 3 of the paper).

This module implements every analytic result of the paper:

* **Lemma 3.1** (:func:`delta_n_threshold_mm`) — the M/M/· bound: the
  edge loses whenever the RTT advantage :math:`\\Delta n` is below
  :math:`\\sqrt2\\big(\\frac{1}{\\sqrt{k_e}(1-\\rho_e)} -
  \\frac{1}{\\sqrt{k}(1-\\rho_c)}\\big)` (Whitt conditional waits).
* **Corollary 3.1.1/3.1.2** (:func:`cutoff_utilization_paper`) — the
  cutoff utilization above which inversion occurs, and its
  :math:`k\\to\\infty` limit.
* **Corollary 3.1.3** (:func:`min_cloud_rtt_for_edge_win`) — the hard
  lower bound on cloud RTT below which the edge always loses.
* **Lemma 3.2 / Corollary 3.2.1** (:func:`delta_n_threshold_gg`) — the
  G/G/· generalization via Allen–Cunneen.
* **Lemma 3.3** (:func:`delta_n_threshold_skewed`) — spatially skewed
  workloads.

**A note on units.**  The paper's Equation 6 (Whitt's conditional wait,
:math:`\\sqrt2/((1-\\rho)\\sqrt k)`) is dimensionless — time measured in
an implicit unit — while :math:`\\Delta n` is quoted in milliseconds.
The printed formulas therefore need a time-unit calibration before they
can be compared with wall-clock RTTs.  All functions here take an
explicit ``time_unit`` (seconds per formula unit, default 1.0 =
"formula units in, formula units out").  :func:`calibrate_time_unit`
recovers the unit from one (Δn, k, cutoff) anchor; remarkably, the
paper's two §4.2 anchors (ρ*=0.64 at k=5 and ρ*=0.75 at k=10 with
2 servers/site) imply the *same* unit to within 2%, which the test
suite checks.  For unit-free engineering use, prefer
:func:`cutoff_utilization_exact`, which uses exact Erlang-C (or
Allen–Cunneen) mean waits in seconds throughout.
"""

from __future__ import annotations

import math
from collections.abc import Sequence

from scipy.optimize import brentq

from repro.queueing.ggk import allen_cunneen_wait
from repro.queueing.mmk import MMk, whitt_conditional_wait

__all__ = [
    "delta_n_threshold_mm",
    "cutoff_utilization_paper",
    "cutoff_utilization_limit",
    "min_cloud_rtt_for_edge_win",
    "delta_n_threshold_gg",
    "delta_n_threshold_gg_limit",
    "delta_n_threshold_skewed",
    "calibrate_time_unit",
    "mean_wait_difference",
    "cutoff_utilization_exact",
    "is_inverted_mm",
    "response_difference_heterogeneous",
    "inversion_rate_heterogeneous",
]


def _check_rho(rho: float, name: str = "rho") -> float:
    if not 0.0 <= rho < 1.0:
        raise ValueError(f"{name} must be in [0, 1), got {rho}")
    return float(rho)


def _check_k(k: int, name: str = "k") -> int:
    if k < 1:
        raise ValueError(f"{name} must be >= 1, got {k}")
    return int(k)


# ---------------------------------------------------------------------------
# Lemma 3.1 and corollaries (M/M/·, Whitt conditional waits)
# ---------------------------------------------------------------------------

def delta_n_threshold_mm(
    rho_edge: float,
    rho_cloud: float,
    k: int,
    *,
    edge_servers: int = 1,
    time_unit: float = 1.0,
) -> float:
    """Lemma 3.1: the Δn below which the edge yields worse latency.

    .. math::
       \\Delta n < \\sqrt2\\left(\\frac{1}{\\sqrt{k_e}(1-\\rho_{edge})}
           - \\frac{1}{\\sqrt{k}(1-\\rho_{cloud})}\\right)

    Parameters
    ----------
    rho_edge / rho_cloud:
        Utilizations of each edge site and of the cloud.
    k:
        Total cloud servers (= number of edge sites × servers per site).
    edge_servers:
        Servers per edge site :math:`k_e` (the paper's Lemma 3.1 has
        :math:`k_e = 1`; Equation 22 generalizes).
    time_unit:
        Seconds per formula time unit (see module docstring).

    Returns
    -------
    float
        The threshold, in seconds when ``time_unit`` is in seconds.
    """
    _check_rho(rho_edge, "rho_edge")
    _check_rho(rho_cloud, "rho_cloud")
    _check_k(k)
    _check_k(edge_servers, "edge_servers")
    if time_unit <= 0:
        raise ValueError(f"time_unit must be > 0, got {time_unit}")
    edge = whitt_conditional_wait(edge_servers, rho_edge)
    cloud = whitt_conditional_wait(k, rho_cloud)
    return time_unit * (edge - cloud)


def cutoff_utilization_paper(
    delta_n: float,
    k: int,
    *,
    edge_servers: int = 1,
    time_unit: float = 1.0,
) -> float:
    """Corollary 3.1.1: edge utilization above which inversion occurs.

    With balanced load (:math:`\\rho_{edge} = \\rho_{cloud} = \\rho`),
    inverting Lemma 3.1 gives

    .. math::
       \\rho^* = 1 - \\frac{\\sqrt2}{\\Delta n}
                 \\left(\\frac{1}{\\sqrt{k_e}} - \\frac{1}{\\sqrt k}\\right)

    (the paper prints the constant as 2 after rearranging; we keep the
    :math:`\\sqrt2` consistent with its own Equation 10).  Values are
    clamped to 0 — a cutoff of 0 means the edge *always* loses; the
    function returns 1.0 when inversion can never occur (``k_e >= k``,
    e.g. the single-site case discussed after Corollary 3.1.2).

    ``delta_n`` must be in the same units as ``time_unit`` converts to
    (seconds when ``time_unit`` is seconds per formula unit).
    """
    _check_k(k)
    _check_k(edge_servers, "edge_servers")
    if delta_n <= 0:
        raise ValueError(f"delta_n must be > 0, got {delta_n}")
    gap = 1.0 / math.sqrt(edge_servers) - 1.0 / math.sqrt(k)
    if gap <= 0:
        return 1.0
    cutoff = 1.0 - (math.sqrt(2.0) * time_unit / delta_n) * gap
    return max(0.0, cutoff)


def cutoff_utilization_limit(delta_n: float, *, time_unit: float = 1.0) -> float:
    """Corollary 3.1.2: the :math:`k \\to \\infty` cutoff.

    .. math:: \\rho^* = 1 - \\frac{\\sqrt2}{\\Delta n}
    """
    if delta_n <= 0:
        raise ValueError(f"delta_n must be > 0, got {delta_n}")
    return max(0.0, 1.0 - math.sqrt(2.0) * time_unit / delta_n)


def min_cloud_rtt_for_edge_win(
    rho_edge: float,
    rho_cloud: float,
    k: int,
    *,
    edge_servers: int = 1,
    time_unit: float = 1.0,
) -> float:
    """Corollary 3.1.3: cloud RTT below which the edge *always* loses.

    Setting :math:`n_{edge} = 0` (the best possible edge) in Lemma 3.1:
    any cloud closer than this threshold beats even a zero-latency edge.
    """
    return delta_n_threshold_mm(
        rho_edge, rho_cloud, k, edge_servers=edge_servers, time_unit=time_unit
    )


def calibrate_time_unit(
    delta_n: float, k: int, cutoff: float, *, edge_servers: int = 1
) -> float:
    """Solve Corollary 3.1.1 for the time unit given one anchor point.

    Given that the paper reports cutoff utilization ``cutoff`` for RTT
    difference ``delta_n`` (seconds) at ``k`` cloud servers, return the
    seconds-per-formula-unit that makes the corollary reproduce it.
    """
    _check_rho(cutoff, "cutoff")
    if delta_n <= 0:
        raise ValueError(f"delta_n must be > 0, got {delta_n}")
    gap = 1.0 / math.sqrt(edge_servers) - 1.0 / math.sqrt(_check_k(k))
    if gap <= 0:
        raise ValueError("edge pool at least as large as cloud pool: no inversion anchor")
    return (1.0 - cutoff) * delta_n / (math.sqrt(2.0) * gap)


# ---------------------------------------------------------------------------
# Lemma 3.2 (G/G/·, Allen–Cunneen)
# ---------------------------------------------------------------------------

def delta_n_threshold_gg(
    rho_edge: float,
    rho_cloud: float,
    k: int,
    mu: float,
    ca2_edge: float,
    ca2_cloud: float,
    cs2: float,
) -> float:
    """Lemma 3.2: the G/G generalization of the inversion threshold.

    .. math::
       \\Delta n < \\rho_e \\frac{1}{\\mu(1-\\rho_e)}
                   \\frac{c_{A,e}^2 + c_B^2}{2}
                 - \\frac{\\rho_c^k + \\rho_c}{2}
                   \\frac{1}{\\mu(1-\\rho_c)}
                   \\frac{c_{A,c}^2 + c_B^2}{2k}

    Uses the Allen–Cunneen waits with Bolch's high-utilization
    :math:`P_s` (the paper restricts to :math:`\\rho > 0.7`, where the
    approximation is accurate; we compute it for any :math:`\\rho` but
    the regime caveat carries over).  Units are seconds, with ``mu`` the
    per-server service rate shared by edge and cloud (the paper's
    same-hardware assumption).

    Returns the threshold in seconds: inversion occurs iff
    :math:`\\Delta n` is below it.
    """
    _check_rho(rho_edge, "rho_edge")
    _check_rho(rho_cloud, "rho_cloud")
    _check_k(k)
    if mu <= 0:
        raise ValueError(f"mu must be > 0, got {mu}")
    edge = allen_cunneen_wait(rho_edge * mu, mu, 1, ca2_edge, cs2, prob_wait="bolch")
    cloud = allen_cunneen_wait(
        rho_cloud * k * mu, mu, k, ca2_cloud, cs2, prob_wait="bolch"
    )
    return edge - cloud


def delta_n_threshold_gg_limit(
    rho_edge: float, mu: float, ca2_edge: float, cs2: float
) -> float:
    """Corollary 3.2.1: the :math:`k\\to\\infty` limit of Lemma 3.2.

    Only the edge term survives: the threshold becomes a function of the
    edge workload's burstiness alone.
    """
    _check_rho(rho_edge, "rho_edge")
    if mu <= 0:
        raise ValueError(f"mu must be > 0, got {mu}")
    return allen_cunneen_wait(rho_edge * mu, mu, 1, ca2_edge, cs2, prob_wait="bolch")


# ---------------------------------------------------------------------------
# Lemma 3.3 (spatial skew)
# ---------------------------------------------------------------------------

def delta_n_threshold_skewed(
    weights: Sequence[float],
    lam: float,
    mu: float,
    k: int,
    *,
    time_unit: float = 1.0,
) -> float:
    """Lemma 3.3: inversion threshold under spatially skewed load.

    Site ``i`` receives fraction ``weights[i]`` of the total ``lam``
    req/s; the edge-side wait is the load-weighted average of per-site
    Whitt conditional waits:

    .. math::
       \\Delta n < \\sqrt2\\left(\\sum_i \\frac{w_i}{1-\\rho_i}
           - \\frac{1}{\\sqrt k (1-\\rho_{cloud})}\\right)

    Raises
    ------
    ValueError
        If any single site is overloaded (:math:`\\rho_i \\ge 1`) — the
        threshold is then infinite (that site's queue diverges, so the
        edge always loses).
    """
    w = [float(x) for x in weights]
    if not w or any(x < 0 for x in w):
        raise ValueError(f"weights must be non-empty and non-negative, got {w}")
    total = sum(w)
    if not math.isclose(total, 1.0, rel_tol=1e-6):
        raise ValueError(f"weights must sum to 1, got {total}")
    _check_k(k)
    if lam <= 0 or mu <= 0:
        raise ValueError("lam and mu must be > 0")
    rho_cloud = _check_rho(lam / (k * mu), "rho_cloud")
    edge_sum = 0.0
    for i, wi in enumerate(w):
        rho_i = wi * lam / mu
        if rho_i >= 1.0:
            raise ValueError(
                f"site {i} is overloaded (rho={rho_i:.3f}); threshold diverges"
            )
        edge_sum += wi / (1.0 - rho_i)
    return time_unit * math.sqrt(2.0) * (edge_sum - 1.0 / (math.sqrt(k) * (1.0 - rho_cloud)))


# ---------------------------------------------------------------------------
# Exact (unit-consistent) engine
# ---------------------------------------------------------------------------

def mean_wait_difference(
    rho: float,
    mu: float,
    edge_servers: int,
    cloud_servers: int,
    *,
    ca2: float = 1.0,
    cs2: float = 1.0,
) -> float:
    """Exact/AC mean-wait gap ``Wq_edge(ρ) − Wq_cloud(ρ)`` in seconds.

    Both deployments run at the same utilization ``rho`` (the balanced
    case of Corollary 3.1.1) with per-server rate ``mu``; the edge site
    has ``edge_servers`` servers and the cloud pools ``cloud_servers``.
    For ``ca2 = cs2 = 1`` exact Erlang-C values are used; otherwise the
    Allen–Cunneen approximation with exact Erlang-C :math:`P_s`.
    """
    _check_rho(rho)
    if mu <= 0:
        raise ValueError(f"mu must be > 0, got {mu}")
    _check_k(edge_servers, "edge_servers")
    _check_k(cloud_servers, "cloud_servers")
    if rho == 0.0:
        return 0.0
    if ca2 == 1.0 and cs2 == 1.0:
        edge = MMk(rho * edge_servers * mu, mu, edge_servers).mean_wait()
        cloud = MMk(rho * cloud_servers * mu, mu, cloud_servers).mean_wait()
    else:
        edge = allen_cunneen_wait(
            rho * edge_servers * mu, mu, edge_servers, ca2, cs2, prob_wait="erlang"
        )
        cloud = allen_cunneen_wait(
            rho * cloud_servers * mu, mu, cloud_servers, ca2, cs2, prob_wait="erlang"
        )
    return edge - cloud


def cutoff_utilization_exact(
    delta_n: float,
    mu: float,
    edge_servers: int,
    cloud_servers: int,
    *,
    ca2: float = 1.0,
    cs2: float = 1.0,
) -> float:
    """Unit-consistent cutoff utilization for mean-latency inversion.

    Solves ``Wq_edge(ρ) − Wq_cloud(ρ) = Δn`` for ρ using exact queueing
    formulas (no Whitt/units ambiguity).  Returns 1.0 if the edge never
    loses below saturation (e.g. ``edge_servers == cloud_servers``).

    Parameters
    ----------
    delta_n:
        RTT difference :math:`n_{cloud} - n_{edge}` in **seconds**.
    mu:
        Per-server service rate (req/s), identical at edge and cloud.
    edge_servers / cloud_servers:
        Pool sizes of one edge site and of the cloud.
    """
    if delta_n <= 0:
        raise ValueError(f"delta_n must be > 0, got {delta_n}")

    def gap(rho: float) -> float:
        return mean_wait_difference(
            rho, mu, edge_servers, cloud_servers, ca2=ca2, cs2=cs2
        ) - delta_n

    lo, hi = 1e-6, 1.0 - 1e-9
    if gap(hi) <= 0.0:
        return 1.0  # even near saturation the edge's extra wait < delta_n
    if gap(lo) >= 0.0:
        return 0.0  # the edge loses at any utilization
    return float(brentq(gap, lo, hi, xtol=1e-10))


def response_difference_heterogeneous(
    rate_per_site: float,
    mu_edge: float,
    mu_cloud: float,
    edge_servers: int,
    cloud_servers: int,
    sites: int,
    *,
    ca2: float = 1.0,
    cs2: float = 1.0,
) -> float:
    """Edge minus cloud mean *server response* with unequal hardware.

    The paper's §3.1.1 discussion: when the edge runs slower servers
    (:math:`s_{edge} > s_{cloud}`) the same-execution-time cancellation
    in Lemma 3.1 no longer applies — the inversion condition becomes
    :math:`\\Delta n < (w_e - w_c) + (s_e - s_c)`, and inversion is
    possible even at k = 1.  This computes the full right-hand side
    (waits plus service gap) in seconds.

    Parameters
    ----------
    rate_per_site:
        Per-site arrival rate λ/k (the cloud sees ``sites ×`` this).
    mu_edge / mu_cloud:
        Per-server service rates at each tier (edge ≤ cloud for
        resource-constrained edges).
    edge_servers / cloud_servers:
        Pool sizes of one edge site and of the cloud.
    """
    if rate_per_site <= 0:
        raise ValueError(f"rate_per_site must be > 0, got {rate_per_site}")
    if mu_edge <= 0 or mu_cloud <= 0:
        raise ValueError("service rates must be > 0")
    _check_k(edge_servers, "edge_servers")
    _check_k(cloud_servers, "cloud_servers")
    _check_k(sites, "sites")
    if ca2 == 1.0 and cs2 == 1.0:
        edge = MMk(rate_per_site, mu_edge, edge_servers).mean_response()
        cloud = MMk(sites * rate_per_site, mu_cloud, cloud_servers).mean_response()
    else:
        edge = (
            allen_cunneen_wait(
                rate_per_site, mu_edge, edge_servers, ca2, cs2, prob_wait="erlang"
            )
            + 1.0 / mu_edge
        )
        cloud = (
            allen_cunneen_wait(
                sites * rate_per_site, mu_cloud, cloud_servers, ca2, cs2,
                prob_wait="erlang",
            )
            + 1.0 / mu_cloud
        )
    return edge - cloud


def inversion_rate_heterogeneous(
    delta_n: float,
    mu_edge: float,
    mu_cloud: float,
    edge_servers: int,
    cloud_servers: int,
    sites: int,
    *,
    ca2: float = 1.0,
    cs2: float = 1.0,
) -> float | None:
    """Per-site rate above which a slower edge loses to the cloud.

    Solves ``(w_e + s_e) − (w_c + s_c) = Δn`` for the per-site rate.
    Returns ``None`` when the edge never loses below saturation, and
    0.0 when it *always* loses (e.g. the service-time gap alone exceeds
    Δn — the regime where slow edge hardware forfeits the network
    advantage before any queueing happens).
    """
    if delta_n <= 0:
        raise ValueError(f"delta_n must be > 0, got {delta_n}")
    cap = min(edge_servers * mu_edge, cloud_servers * mu_cloud / sites)

    def gap(rate: float) -> float:
        return (
            response_difference_heterogeneous(
                rate, mu_edge, mu_cloud, edge_servers, cloud_servers, sites,
                ca2=ca2, cs2=cs2,
            )
            - delta_n
        )

    lo, hi = cap * 1e-6, cap * (1.0 - 1e-9)
    if gap(lo) >= 0.0:
        return 0.0
    if gap(hi) <= 0.0:
        return None
    return float(brentq(gap, lo, hi, xtol=1e-10))


def is_inverted_mm(
    delta_n: float,
    rho: float,
    mu: float,
    edge_servers: int,
    cloud_servers: int,
    *,
    ca2: float = 1.0,
    cs2: float = 1.0,
) -> bool:
    """True if the edge's mean end-to-end latency exceeds the cloud's.

    The unit-consistent predicate behind Lemma 3.1: inversion iff the
    mean-wait gap exceeds the RTT advantage (all in seconds).
    """
    if delta_n < 0:
        raise ValueError(f"delta_n must be >= 0, got {delta_n}")
    return mean_wait_difference(
        rho, mu, edge_servers, cloud_servers, ca2=ca2, cs2=cs2
    ) > delta_n
