"""Placement advisor: choose edge / cloud / hybrid per region.

The paper's design-implications section tells application developers to
*estimate* their inversion risk; this module closes the loop and makes
the decision.  For each region (demand, edge RTT, cloud RTT) it
evaluates both placements with the analytic models —

* **edge** — a dedicated per-region site (M/M/c at the region's rate);
* **cloud** — serve from the shared pool (M/M/kc at the aggregate rate);

— and recommends the cheaper placement meeting the latency objective,
or the lower-latency placement when neither meets it.  (Per-request
hybrids are available in :class:`repro.mitigation.offload.HybridDeployment`;
this advisor answers the coarser per-region question.)
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Sequence

from repro.core.cost import CostModel
from repro.queueing.mmk import MMk
from repro.sim.geo import Region

__all__ = ["PlacementDecision", "recommend_placements"]


@dataclass(frozen=True)
class PlacementDecision:
    """Recommendation for one region."""

    region: str
    placement: str  # "edge" | "cloud"
    edge_latency: float  # q-quantile end-to-end if served at the edge
    cloud_latency: float  # q-quantile end-to-end if served from the cloud
    meets_objective: bool
    monthly_cost_delta: float  # edge cost minus cloud cost, $/month

    @property
    def latency(self) -> float:
        """The q-latency of the chosen placement."""
        return self.edge_latency if self.placement == "edge" else self.cloud_latency


def _edge_quantile(
    rate: float, mu: float, servers: int, q: float
) -> float:
    if rate <= 0:
        return MMk(1e-9, mu, servers).response_time_percentile(q)
    return MMk(rate, mu, servers).response_time_percentile(q)


def recommend_placements(
    regions: Sequence[Region],
    total_rate: float,
    mu: float,
    servers_per_site: int,
    *,
    latency_objective: float = 0.5,
    q: float = 0.95,
    cost_model: CostModel | None = None,
) -> list[PlacementDecision]:
    """Recommend a placement per region.

    The cloud pool serves every region routed to it; to keep the
    analysis tractable (and conservative for the cloud) the pool is
    sized at ``len(regions) × servers_per_site`` and evaluated at the
    aggregate demand — the paper's like-for-like fleet comparison.

    Parameters
    ----------
    latency_objective:
        End-to-end q-quantile target in seconds.
    cost_model:
        Prices for the cost delta (defaults to :class:`CostModel`).

    Returns
    -------
    list of PlacementDecision
        One per region, in input order.
    """
    regions = list(regions)
    if not regions:
        raise ValueError("need at least one region")
    if total_rate <= 0 or mu <= 0:
        raise ValueError("total_rate and mu must be > 0")
    if servers_per_site < 1:
        raise ValueError(f"servers_per_site must be >= 1, got {servers_per_site}")
    if latency_objective <= 0:
        raise ValueError(f"latency_objective must be > 0, got {latency_objective}")
    cm = CostModel() if cost_model is None else cost_model
    weights = [r.weight for r in regions]
    wsum = sum(weights)
    if wsum <= 0:
        raise ValueError("region weights must have positive sum")

    cloud_pool = len(regions) * servers_per_site
    if total_rate >= cloud_pool * mu:
        raise ValueError(
            f"aggregate demand {total_rate} req/s saturates the {cloud_pool}-server pool"
        )
    cloud_server_q = MMk(total_rate, mu, cloud_pool).response_time_percentile(q)

    hours_per_month = 730.0
    edge_monthly = (
        servers_per_site * cm.edge_server_hourly + cm.site_overhead_hourly
    ) * hours_per_month
    cloud_monthly = servers_per_site * cm.cloud_server_hourly * hours_per_month

    decisions = []
    for region in regions:
        rate = total_rate * region.weight / wsum
        if rate >= servers_per_site * mu:
            raise ValueError(
                f"region {region.name!r} demand {rate:.1f} req/s saturates its "
                f"{servers_per_site}-server edge site"
            )
        edge_latency = region.edge_rtt + _edge_quantile(rate, mu, servers_per_site, q)
        cloud_latency = region.cloud_rtt + cloud_server_q
        edge_ok = edge_latency <= latency_objective
        cloud_ok = cloud_latency <= latency_objective
        if cloud_ok:
            # Cloud meets the objective: it is always the cheaper option.
            placement = "cloud"
            meets = True
        elif edge_ok:
            placement = "edge"
            meets = True
        else:
            placement = "edge" if edge_latency < cloud_latency else "cloud"
            meets = False
        decisions.append(
            PlacementDecision(
                region=region.name,
                placement=placement,
                edge_latency=edge_latency,
                cloud_latency=cloud_latency,
                meets_objective=meets,
                monthly_cost_delta=edge_monthly - cloud_monthly,
            )
        )
    return decisions
