"""The paper's experimental scenarios (Section 4.1).

Every experiment pairs a 1 ms edge with one of four cloud locations;
:class:`Scenario` bundles the RTTs, fleet shape (k sites ×
machines/site) and the application model, and knows how to build the
simulator inputs.  The four named scenario constants correspond to the
paper's deployments:

========================  ==========================  =========
constant                  paper placement             cloud RTT
========================  ==========================  =========
``NEARBY_CLOUD``          us-east-2 → us-east-1       15 ms
``TYPICAL_CLOUD``         Ireland → Frankfurt         24 ms
``DISTANT_CLOUD``         us-east-2 → us-west-1       54 ms
``TRANSCONTINENTAL_CLOUD``us-east-1 → Ireland         80 ms
========================  ==========================  =========
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.queueing.distributions import Distribution
from repro.sim.network import ConstantLatency, LatencyModel
from repro.workload.service import DNNInferenceModel

__all__ = [
    "Scenario",
    "NEARBY_CLOUD",
    "TYPICAL_CLOUD",
    "DISTANT_CLOUD",
    "TRANSCONTINENTAL_CLOUD",
    "PAPER_SCENARIOS",
]


@dataclass(frozen=True)
class Scenario:
    """One edge-vs-cloud comparison setup.

    Attributes
    ----------
    name:
        Human-readable label.
    edge_rtt_ms / cloud_rtt_ms:
        Mean round-trip times to the edge site and the cloud.
    sites:
        Number of edge sites k (the cloud pools ``sites ×
        machines_per_site`` machines).
    machines_per_site:
        Machines at each edge site (1 or 2 in the paper).
    service:
        The application model (saturation rate, cores, service CoV).
    """

    name: str
    cloud_rtt_ms: float
    edge_rtt_ms: float = 1.0
    sites: int = 5
    machines_per_site: int = 1
    service: DNNInferenceModel = field(default_factory=DNNInferenceModel)

    def __post_init__(self):
        if self.cloud_rtt_ms <= self.edge_rtt_ms:
            raise ValueError(
                f"cloud RTT ({self.cloud_rtt_ms} ms) must exceed edge RTT "
                f"({self.edge_rtt_ms} ms)"
            )
        if self.edge_rtt_ms < 0:
            raise ValueError(f"edge_rtt_ms must be >= 0, got {self.edge_rtt_ms}")
        if self.sites < 1 or self.machines_per_site < 1:
            raise ValueError("sites and machines_per_site must be >= 1")

    # -- derived quantities ------------------------------------------------
    @property
    def delta_n(self) -> float:
        """RTT advantage of the edge, :math:`\\Delta n`, in seconds."""
        return (self.cloud_rtt_ms - self.edge_rtt_ms) * 1e-3

    @property
    def edge_servers_per_site(self) -> int:
        """Queueing servers per edge site (machines × cores)."""
        return self.service.servers_for_machines(self.machines_per_site)

    @property
    def cloud_servers(self) -> int:
        """Queueing servers pooled at the cloud."""
        return self.sites * self.edge_servers_per_site

    @property
    def cloud_machines(self) -> int:
        """Cloud machine count (the paper's k = 5 or 10)."""
        return self.sites * self.machines_per_site

    @property
    def saturation_rate_per_site(self) -> float:
        """Request rate at which one edge site saturates (req/s)."""
        return self.machines_per_site * self.service.saturation_rate

    def utilization(self, rate_per_site: float) -> float:
        """Utilization implied by a per-site request rate."""
        return self.service.utilization(rate_per_site, self.machines_per_site)

    def rate_for_utilization(self, rho: float) -> float:
        """Per-site request rate achieving utilization ``rho``."""
        if not 0.0 <= rho < 1.0:
            raise ValueError(f"rho must be in [0, 1), got {rho}")
        return rho * self.saturation_rate_per_site

    # -- simulator inputs ----------------------------------------------------
    def edge_latency(self) -> LatencyModel:
        """Client ↔ edge network model."""
        return ConstantLatency.from_ms(self.edge_rtt_ms)

    def cloud_latency(self) -> LatencyModel:
        """Client ↔ cloud network model."""
        return ConstantLatency.from_ms(self.cloud_rtt_ms)

    def service_dist(self) -> Distribution:
        """Per-request service-time distribution."""
        return self.service.service_dist()

    def with_machines(self, machines_per_site: int) -> "Scenario":
        """Variant with a different per-site machine count (k=10 runs)."""
        return replace(
            self,
            machines_per_site=machines_per_site,
            name=f"{self.name} ({machines_per_site} srv/site)",
        )

    def with_sites(self, sites: int) -> "Scenario":
        """Variant with a different site count."""
        return replace(self, sites=sites)


NEARBY_CLOUD = Scenario(name="nearby cloud (us-east-1, 15 ms)", cloud_rtt_ms=15.0)
TYPICAL_CLOUD = Scenario(name="typical cloud (Frankfurt, 24 ms)", cloud_rtt_ms=24.0)
DISTANT_CLOUD = Scenario(name="distant cloud (N. California, 54 ms)", cloud_rtt_ms=54.0)
TRANSCONTINENTAL_CLOUD = Scenario(
    name="transcontinental cloud (Ireland, 80 ms)", cloud_rtt_ms=80.0
)

#: The paper's four cloud placements, nearest first (Figure 7's x-axis).
PAPER_SCENARIOS = (
    NEARBY_CLOUD,
    TYPICAL_CLOUD,
    DISTANT_CLOUD,
    TRANSCONTINENTAL_CLOUD,
)
