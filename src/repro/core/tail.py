"""Analytic *tail*-latency inversion bounds (extension beyond the paper).

Section 4.3 of the paper notes that "our analytical results only permit
a comparison of mean latencies", and measures tail inversion empirically
(Figure 5).  But for the M/M family the full response-time distribution
is closed-form (:meth:`repro.queueing.mmk.MMk.response_time_cdf`), so
the tail analogue of Lemma 3.1 is computable exactly:

    the q-quantile of edge end-to-end latency exceeds the cloud's iff

    .. math::
       \\Delta n < t_q^{edge}(\\rho) - t_q^{cloud}(\\rho)

    where :math:`t_q` are the response-time q-quantiles of the M/M/k_e
    site and the M/M/k cloud.

Because the edge quantile inflates with utilization much faster than the
pooled cloud's, the tail cutoff sits *below* the mean cutoff — the
empirically observed Figure 5 effect, now predicted analytically.
"""

from __future__ import annotations

from scipy.optimize import brentq

from repro.queueing.mmk import MMk
from repro.queueing.tails import gg_response_percentile

__all__ = [
    "tail_response_difference",
    "delta_n_threshold_tail",
    "cutoff_utilization_tail",
]


def _check_inputs(rho: float, mu: float, edge_servers: int, cloud_servers: int, q: float):
    if not 0.0 <= rho < 1.0:
        raise ValueError(f"rho must be in [0, 1), got {rho}")
    if mu <= 0:
        raise ValueError(f"mu must be > 0, got {mu}")
    if edge_servers < 1 or cloud_servers < 1:
        raise ValueError("server counts must be >= 1")
    if not 0.0 < q < 1.0:
        raise ValueError(f"q must be in (0, 1), got {q}")


def tail_response_difference(
    rho: float,
    mu: float,
    edge_servers: int,
    cloud_servers: int,
    q: float = 0.95,
    *,
    ca2: float = 1.0,
    cs2: float = 1.0,
) -> float:
    """Edge minus cloud response-time q-quantile at utilization ``rho``.

    Both systems run at the same utilization with per-server rate ``mu``
    (the balanced case).  For ``ca2 = cs2 = 1`` the exact M/M/c response
    quantiles are used; otherwise the heavy-traffic GI/G/k tail
    approximation (:func:`repro.queueing.tails.gg_response_percentile`),
    in seconds either way.
    """
    _check_inputs(rho, mu, edge_servers, cloud_servers, q)
    if ca2 < 0 or cs2 < 0:
        raise ValueError(f"squared CoVs must be >= 0, got ca2={ca2}, cs2={cs2}")
    if rho == 0.0:
        return 0.0  # identical service-time response in both systems
    if ca2 == 1.0 and cs2 == 1.0:
        edge = MMk(rho * edge_servers * mu, mu, edge_servers).response_time_percentile(q)
        cloud = MMk(rho * cloud_servers * mu, mu, cloud_servers).response_time_percentile(q)
    else:
        edge = gg_response_percentile(
            q, rho * edge_servers * mu, mu, edge_servers, ca2, cs2
        )
        cloud = gg_response_percentile(
            q, rho * cloud_servers * mu, mu, cloud_servers, ca2, cs2
        )
    return edge - cloud


def delta_n_threshold_tail(
    rho: float,
    mu: float,
    edge_servers: int,
    cloud_servers: int,
    q: float = 0.95,
    *,
    ca2: float = 1.0,
    cs2: float = 1.0,
) -> float:
    """The Δn (seconds) below which the edge's q-tail is worse.

    The tail analogue of Lemma 3.1: inversion of the q-quantile occurs
    iff :math:`\\Delta n` is below this threshold.
    """
    return tail_response_difference(
        rho, mu, edge_servers, cloud_servers, q, ca2=ca2, cs2=cs2
    )


def cutoff_utilization_tail(
    delta_n: float,
    mu: float,
    edge_servers: int,
    cloud_servers: int,
    q: float = 0.95,
    *,
    ca2: float = 1.0,
    cs2: float = 1.0,
) -> float:
    """Utilization above which the edge's q-tail inverts.

    Solves ``t_q_edge(ρ) − t_q_cloud(ρ) = Δn`` for ρ.  Returns 1.0 when
    the tail never inverts below saturation and 0.0 when it is always
    inverted.  The companion of
    :func:`repro.core.inversion.cutoff_utilization_exact`, which solves
    the same equation for the mean.
    """
    if delta_n <= 0:
        raise ValueError(f"delta_n must be > 0, got {delta_n}")
    _check_inputs(0.0, mu, edge_servers, cloud_servers, q)

    def gap(rho: float) -> float:
        return (
            tail_response_difference(
                rho, mu, edge_servers, cloud_servers, q, ca2=ca2, cs2=cs2
            )
            - delta_n
        )

    lo, hi = 1e-4, 1.0 - 1e-9
    if gap(hi) <= 0.0:
        return 1.0
    if gap(lo) >= 0.0:
        return 0.0
    return float(brentq(gap, lo, hi, xtol=1e-9))
