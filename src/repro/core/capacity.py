"""Capacity planning (Section 5 of the paper).

Implements the provider- and application-side provisioning math:

* the **two-sigma peak rule** comparison
  :math:`C_{cloud} = \\lambda + 2\\sqrt\\lambda` versus
  :math:`C_{edge} = \\lambda + 2\\sqrt{k\\lambda}` (Section 5.2) — the
  statistical-smoothing penalty of splitting one pool into k sites;
* the **per-site server lower bound** from Equation 22: the smallest
  :math:`k_i` at site i (receiving :math:`\\lambda_i`) for which the
  inversion condition no longer holds;
* skew-aware provisioning helpers used by
  :mod:`repro.mitigation.provisioning`.
"""

from __future__ import annotations

import math
from collections.abc import Sequence

from repro.core.inversion import delta_n_threshold_mm

__all__ = [
    "cloud_peak_capacity",
    "edge_peak_capacity",
    "provisioning_penalty",
    "min_edge_servers",
    "proportional_allocation",
    "square_root_staffing",
]


def cloud_peak_capacity(lam: float) -> float:
    """Two-sigma peak capacity of a centralized cloud: :math:`\\lambda + 2\\sqrt\\lambda`.

    For Poisson arrivals the workload's standard deviation is
    :math:`\\sqrt\\lambda`, so this approximates the 95th percentile of
    demand (in units of server-equivalent request rate).
    """
    if lam < 0:
        raise ValueError(f"lam must be >= 0, got {lam}")
    return lam + 2.0 * math.sqrt(lam)


def edge_peak_capacity(lam: float, k: int) -> float:
    """Aggregate two-sigma capacity of k balanced edge sites.

    Each site provisions for its own peak
    :math:`\\lambda/k + 2\\sqrt{\\lambda/k}`; summing over k sites gives
    :math:`\\lambda + 2\\sqrt{k\\lambda}` — strictly more than the cloud
    for k > 1 (no cross-site statistical smoothing).
    """
    if lam < 0:
        raise ValueError(f"lam must be >= 0, got {lam}")
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    return lam + 2.0 * math.sqrt(k * lam)


def provisioning_penalty(lam: float, k: int) -> float:
    """Extra capacity the edge needs versus the cloud, as a ratio ≥ 1.

    :math:`C_{edge}/C_{cloud}`; the paper's Section 5.2 argues this is
    why serving N customers at the edge costs providers more.
    """
    cloud = cloud_peak_capacity(lam)
    if cloud == 0.0:
        return 1.0
    return edge_peak_capacity(lam, k) / cloud


def square_root_staffing(lam: float, mu: float, beta: float = 1.0) -> int:
    """Halfin–Whitt square-root staffing: :math:`c = \\lceil a + \\beta\\sqrt{a} \\rceil`.

    With offered load :math:`a = \\lambda/\\mu`, staffing
    :math:`\\beta\\sqrt a` servers above the load keeps the probability
    of waiting roughly constant as the system scales — the rigorous
    version of the paper's two-sigma rule (β = 2 recovers it for
    per-second capacity).  This is why the cloud's pooled capacity is
    so efficient: the same β buys k pooled sites the service quality
    that k separate sites each need their own :math:`\\beta\\sqrt{a/k}`
    for, totalling :math:`\\beta\\sqrt{ka}`.

    Parameters
    ----------
    lam / mu:
        Arrival and per-server service rates (req/s).
    beta:
        Quality-of-service parameter (≥ 0); higher = less waiting.
    """
    if lam < 0 or mu <= 0:
        raise ValueError("need lam >= 0 and mu > 0")
    if beta < 0:
        raise ValueError(f"beta must be >= 0, got {beta}")
    a = lam / mu
    if a == 0.0:
        return 1
    return max(1, math.ceil(a + beta * math.sqrt(a)))


def min_edge_servers(
    delta_n: float,
    lam_i: float,
    mu: float,
    k: int,
    lam: float,
    *,
    time_unit: float = 1.0,
    max_servers: int = 10_000,
) -> int:
    """Equation 22: smallest server count at a site to avoid inversion.

    Finds the smallest :math:`k_i` such that

    .. math::
       \\Delta n \\ge \\sqrt2\\left(
           \\frac{1}{\\sqrt{k_i}(1 - \\lambda_i/(\\mu k_i))}
         - \\frac{1}{\\sqrt{k}(1 - \\lambda/(\\mu k))}\\right)

    Parameters
    ----------
    delta_n:
        RTT advantage of the edge, in the same units ``time_unit``
        converts to.
    lam_i:
        Request rate arriving at this site (req/s).
    mu:
        Per-server service rate (req/s).
    k / lam:
        Cloud pool size and the aggregate rate it would serve.
    time_unit:
        Seconds per formula unit (see :mod:`repro.core.inversion`).
    max_servers:
        Search cap; a :class:`RuntimeError` past it indicates
        inconsistent inputs.

    Notes
    -----
    The search starts at the stability floor
    :math:`k_i > \\lambda_i/\\mu` and increases; the threshold is
    monotonically decreasing in :math:`k_i` (more local pooling → less
    extra wait), so the first satisfying value is minimal.
    """
    if delta_n <= 0:
        raise ValueError(f"delta_n must be > 0, got {delta_n}")
    if lam_i < 0 or lam <= 0 or mu <= 0:
        raise ValueError("rates must be positive (lam_i may be 0)")
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    rho_cloud = lam / (k * mu)
    if rho_cloud >= 1.0:
        raise ValueError(f"cloud itself is unstable (rho={rho_cloud:.3f})")
    if lam_i == 0.0:
        return 1
    k_i = max(1, math.floor(lam_i / mu) + 1)
    while k_i <= max_servers:
        rho_i = lam_i / (k_i * mu)
        if rho_i < 1.0:
            threshold = delta_n_threshold_mm(
                rho_i, rho_cloud, k, edge_servers=k_i, time_unit=time_unit
            )
            if delta_n >= threshold:
                return k_i
        k_i += 1
    raise RuntimeError(
        f"no k_i <= {max_servers} avoids inversion (delta_n={delta_n}, lam_i={lam_i})"
    )


def proportional_allocation(weights: Sequence[float], total_servers: int) -> list[int]:
    """Allocate ``total_servers`` across sites proportionally to load.

    The paper's skew prescription (after Lemma 3.3): capacity at each
    site proportional to the workload it sees.  Uses largest-remainder
    rounding and guarantees every site with positive weight gets ≥ 1
    server (a site with load but no server would be unstable).
    """
    w = [float(x) for x in weights]
    if not w or any(x < 0 for x in w) or sum(w) <= 0:
        raise ValueError(f"weights must be non-negative with positive sum, got {w}")
    positive = sum(1 for x in w if x > 0)
    if total_servers < positive:
        raise ValueError(
            f"need at least {positive} servers for {positive} loaded sites, got {total_servers}"
        )
    total_w = sum(w)
    ideal = [total_servers * x / total_w for x in w]
    alloc = [max(1, math.floor(v)) if w[i] > 0 else 0 for i, v in enumerate(ideal)]
    # Largest-remainder distribution of the leftovers (or trim overshoot).
    while sum(alloc) < total_servers:
        remainders = [(ideal[i] - alloc[i], i) for i in range(len(w)) if w[i] > 0]
        alloc[max(remainders)[1]] += 1
    while sum(alloc) > total_servers:
        surplus = [(alloc[i] - ideal[i], i) for i in range(len(w)) if alloc[i] > 1]
        if not surplus:
            raise ValueError("cannot honor one-server floor within total_servers")
        alloc[max(surplus)[1]] -= 1
    return alloc
