"""The paper's contribution: inversion analysis, capacity planning, comparator."""

from repro.core.capacity import (
    cloud_peak_capacity,
    edge_peak_capacity,
    min_edge_servers,
    provisioning_penalty,
    square_root_staffing,
)
from repro.core.comparator import ComparisonResult, EdgeCloudComparator, SweepPoint
from repro.core.cost import CostModel, DeploymentCost, compare_slo_costs, min_servers_for_slo
from repro.core.placement import PlacementDecision, recommend_placements
from repro.core.transient import predict_windowed_series, quasi_stationary_latency
from repro.core.tail import (
    cutoff_utilization_tail,
    delta_n_threshold_tail,
    tail_response_difference,
)
from repro.core.inversion import (
    calibrate_time_unit,
    cutoff_utilization_exact,
    cutoff_utilization_paper,
    delta_n_threshold_gg,
    delta_n_threshold_mm,
    delta_n_threshold_skewed,
    inversion_rate_heterogeneous,
    is_inverted_mm,
    mean_wait_difference,
    response_difference_heterogeneous,
)
from repro.core.scenarios import (
    DISTANT_CLOUD,
    NEARBY_CLOUD,
    PAPER_SCENARIOS,
    TRANSCONTINENTAL_CLOUD,
    TYPICAL_CLOUD,
    Scenario,
)

__all__ = [
    "delta_n_threshold_mm",
    "delta_n_threshold_gg",
    "delta_n_threshold_skewed",
    "cutoff_utilization_paper",
    "cutoff_utilization_exact",
    "calibrate_time_unit",
    "is_inverted_mm",
    "mean_wait_difference",
    "response_difference_heterogeneous",
    "inversion_rate_heterogeneous",
    "cloud_peak_capacity",
    "edge_peak_capacity",
    "provisioning_penalty",
    "min_edge_servers",
    "square_root_staffing",
    "Scenario",
    "NEARBY_CLOUD",
    "TYPICAL_CLOUD",
    "DISTANT_CLOUD",
    "TRANSCONTINENTAL_CLOUD",
    "PAPER_SCENARIOS",
    "EdgeCloudComparator",
    "ComparisonResult",
    "SweepPoint",
    "CostModel",
    "DeploymentCost",
    "compare_slo_costs",
    "min_servers_for_slo",
    "cutoff_utilization_tail",
    "delta_n_threshold_tail",
    "tail_response_difference",
    "PlacementDecision",
    "recommend_placements",
    "quasi_stationary_latency",
    "predict_windowed_series",
]
