"""Quasi-stationary prediction of time-varying latency (Figure 9, analytically).

The Azure-trace experiments show edge latency oscillating with the
workload.  When the workload changes slowly relative to the queue's
relaxation time, each window is approximately in the steady state of
its own instantaneous rate — the **quasi-stationary approximation**.
This module predicts a deployment's windowed mean latency directly from
a trace's windowed rates and exact M/M/c theory (saturated windows fall
back to the finite-capacity M/M/c/K model so predictions stay finite),
giving an analytic counterpart to the simulated Figure 9 series.
"""

from __future__ import annotations

import numpy as np

from repro.queueing.mmck import MMcK
from repro.queueing.mmk import MMk
from repro.workload.trace import RequestTrace

__all__ = ["quasi_stationary_latency", "predict_windowed_series"]


def quasi_stationary_latency(
    rate: float,
    mu: float,
    servers: int,
    *,
    rtt: float = 0.0,
    overload_capacity: int | None = None,
) -> float:
    """Steady-state mean end-to-end latency at one instantaneous rate.

    Evaluated on the finite-capacity M/M/c/K model with a large default
    capacity (``max(50, 10 × servers)``): far below saturation this is
    numerically indistinguishable from M/M/c, while saturated windows
    stay finite and the response remains *monotone in the rate* — a
    threshold switch between unbounded and bounded models would jump
    discontinuously at the saturation boundary (the unbounded response
    diverges there).
    """
    if rate < 0 or mu <= 0 or servers < 1:
        raise ValueError("need rate >= 0, mu > 0, servers >= 1")
    if rtt < 0:
        raise ValueError(f"rtt must be >= 0, got {rtt}")
    if rate == 0.0:
        return rtt + 1.0 / mu
    cap = max(50, 10 * servers) if overload_capacity is None else int(overload_capacity)
    return rtt + MMcK(rate, mu, servers, cap).mean_response()


def predict_windowed_series(
    trace: RequestTrace,
    mu: float,
    servers: int,
    window: float,
    *,
    rtt: float = 0.0,
    horizon: float | None = None,
    overload_capacity: int | None = None,
):
    """Predicted mean latency per window from a trace's windowed rates.

    Returns ``(window_starts, predicted_latency)`` — the analytic
    Figure 9 series for one site (or, fed the merged trace and the
    pooled server count, for the cloud).
    """
    starts, rates = trace.windowed_rates(window, horizon=horizon)
    out = np.empty_like(rates)
    for i, r in enumerate(rates):
        out[i] = quasi_stationary_latency(
            float(r), mu, servers, rtt=rtt, overload_capacity=overload_capacity
        )
    return starts, out
